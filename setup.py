"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on offline boxes.
"""

from setuptools import setup

setup()
