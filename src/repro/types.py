"""Shared light-weight types and aliases used across subsystems."""

from __future__ import annotations

import enum
from typing import NewType

#: Autonomous System Number.  Plain ``int`` at runtime; the NewType makes
#: signatures self-documenting and lets type checkers catch swapped args.
ASN = NewType("ASN", int)

#: Seconds since the (simulated) campaign epoch.
SimTime = NewType("SimTime", float)


class PeeringPolicy(enum.Enum):
    """Peering policy of a network as advertised in PeeringDB.

    The paper (Section 4.2) groups potential peers by these policies to
    build its four peer groups.
    """

    OPEN = "open"
    SELECTIVE = "selective"
    RESTRICTIVE = "restrictive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class NetworkKind(enum.Enum):
    """Business type of a network, mirroring Section 3.2's examples."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    ACCESS = "access"
    CONTENT = "content"
    CDN = "cdn"
    HOSTING = "hosting"
    NREN = "nren"
    ENTERPRISE = "enterprise"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PortKind(enum.Enum):
    """How a member's port attaches to an IXP peering LAN."""

    DIRECT = "direct"
    REMOTE = "remote"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class TrafficDirection(enum.Enum):
    """Direction of transit traffic relative to the studied network."""

    INBOUND = "inbound"
    OUTBOUND = "outbound"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class TrafficRole(enum.Enum):
    """Role of a network in a traffic flow (Section 4.1)."""

    ORIGIN = "origin"
    DESTINATION = "destination"
    TRANSIENT = "transient"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
