"""IPv4 addresses, prefixes, and deterministic allocators.

The simulator hands every IXP peering LAN its own prefix and every member
interface an address inside it, exactly as a real IXP assigns addresses out
of its peering-LAN subnet.  Stale registry entries are modeled by addresses
*outside* the LAN prefix, which is what the paper's TTL-match filter ends up
discarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import AddressError


def _check_octets(value: int) -> None:
    if not 0 <= value <= 0xFFFFFFFF:
        raise AddressError(f"IPv4 value {value:#x} out of range")


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """An IPv4 address stored as a 32-bit integer.

    The dotted-quad text is precomputed at construction: campaign code
    stringifies addresses on every materialized reply, and formatting on
    demand burned ~1 s per full campaign before the cache.
    """

    value: int
    _text: str = field(init=False, repr=False, compare=False, default="")

    def __post_init__(self) -> None:
        _check_octets(self.value)
        v = self.value
        object.__setattr__(
            self,
            "_text",
            f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}",
        )

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad text like ``"193.0.2.17"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"octet {octet} out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return self._text

    def offset(self, delta: int) -> "IPv4Address":
        """The address ``delta`` positions away (may raise AddressError)."""
        return IPv4Address(self.value + delta)


@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``193.203.0.0/22``."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length {self.length} out of range")
        if self.network.value & (self.host_mask()) != 0:
            raise AddressError(
                f"{self.network}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse CIDR text like ``"193.203.0.0/22"``."""
        try:
            addr_text, len_text = text.strip().split("/")
        except ValueError:
            raise AddressError(f"malformed prefix {text!r}") from None
        if not len_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        return cls(IPv4Address.parse(addr_text), int(len_text))

    def host_mask(self) -> int:
        """Integer mask of the host bits."""
        return (1 << (32 - self.length)) - 1

    def netmask(self) -> int:
        """Integer mask of the network bits."""
        return 0xFFFFFFFF ^ self.host_mask()

    def size(self) -> int:
        """Total number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def usable_hosts(self) -> int:
        """Assignable host addresses (network/broadcast excluded for <31)."""
        if self.length >= 31:
            return self.size()
        return self.size() - 2

    def __contains__(self, address: IPv4Address) -> bool:
        return (address.value & self.netmask()) == self.network.value

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th usable host address (1-based within the subnet)."""
        if index < 1 or index > self.usable_hosts():
            raise AddressError(f"host index {index} out of range for {self}")
        return IPv4Address(self.network.value + index)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over all usable host addresses."""
        for index in range(1, self.usable_hosts() + 1):
            yield self.host(index)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Iterate over the sub-prefixes of ``new_length``."""
        if new_length < self.length or new_length > 32:
            raise AddressError(
                f"cannot split /{self.length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for base in range(self.network.value, self.network.value + self.size(), step):
            yield IPv4Prefix(IPv4Address(base), new_length)


class SubnetAllocator:
    """Hands out consecutive subnets of a fixed size from a parent prefix."""

    def __init__(self, parent: IPv4Prefix, subnet_length: int) -> None:
        if subnet_length < parent.length:
            raise AddressError(
                f"subnet /{subnet_length} larger than parent /{parent.length}"
            )
        self._parent = parent
        self._subnet_length = subnet_length
        self._iter = parent.subnets(subnet_length)
        self._handed_out = 0

    @property
    def capacity(self) -> int:
        """How many subnets the parent prefix can provide in total."""
        return 1 << (self._subnet_length - self._parent.length)

    @property
    def allocated(self) -> int:
        """How many subnets have been handed out so far."""
        return self._handed_out

    def allocate(self) -> IPv4Prefix:
        """Return the next free subnet, raising AddressError when exhausted."""
        try:
            subnet = next(self._iter)
        except StopIteration:
            raise AddressError(
                f"subnet pool {self._parent} exhausted after {self._handed_out}"
            ) from None
        self._handed_out += 1
        return subnet


class HostAllocator:
    """Hands out consecutive host addresses inside one prefix."""

    def __init__(self, prefix: IPv4Prefix) -> None:
        self._prefix = prefix
        self._next_index = 1

    @property
    def prefix(self) -> IPv4Prefix:
        """The prefix addresses are drawn from."""
        return self._prefix

    @property
    def remaining(self) -> int:
        """How many host addresses are still free."""
        return self._prefix.usable_hosts() - self._next_index + 1

    def allocate(self) -> IPv4Address:
        """Return the next free host address."""
        address = self._prefix.host(self._next_index)
        self._next_index += 1
        return address
