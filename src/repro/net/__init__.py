"""Layer-3 primitives: IPv4 addressing, devices/interfaces, ICMP echo.

These primitives exist to reproduce the observables the paper's detector
consumes: the round-trip time and the TTL of ping replies sent by member
routers on an IXP peering LAN.
"""

from repro.net.addr import IPv4Address, IPv4Prefix, SubnetAllocator, HostAllocator
from repro.net.device import Device, Interface, TTL_LINUX, TTL_NETWORK_OS, TTL_RARE
from repro.net.icmp import EchoReply, PingObservation, reply_for_probe

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "SubnetAllocator",
    "HostAllocator",
    "Device",
    "Interface",
    "TTL_LINUX",
    "TTL_NETWORK_OS",
    "TTL_RARE",
    "EchoReply",
    "PingObservation",
    "reply_for_probe",
]
