"""Routers and interfaces attached to IXP peering LANs.

A :class:`Device` models the member router that answers the detector's
pings.  The behaviours that matter to the paper's filters are all here:

* the initial TTL the OS stamps on ping replies (64 for Unix-like stacks,
  255 for most network OSes, rarely 32/128) — consumed by the TTL-match
  filter;
* an optional mid-campaign OS change that flips the initial TTL — the
  TTL-switch filter exists because of these;
* ICMP blackholing / rate limiting — the sample-size filter exists because
  of these;
* replying from a *different* interface so the reply takes extra IP hops —
  discarded by the TTL-match filter (Section 3.1, "adherence to straight
  routes").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.addr import IPv4Address

#: Typical initial-TTL values (Section 3.1 accepts exactly these two).
TTL_LINUX = 64
TTL_NETWORK_OS = 255
#: Rare initial TTLs that the TTL-match filter rejects.
TTL_RARE = (32, 128)

_VALID_TTLS = frozenset({TTL_LINUX, TTL_NETWORK_OS, *TTL_RARE})

_device_ids = itertools.count(1)


@dataclass(slots=True)
class Interface:
    """One IP interface of a device."""

    address: IPv4Address
    device: "Device"
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.device.name}:{self.address}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(slots=True)
class Device:
    """A member router with ICMP-answering behaviour.

    Parameters
    ----------
    name:
        Human-readable identifier (usually derived from the owning network).
    ttl_init:
        Initial TTL stamped on replies at campaign start.
    ttl_after_change:
        Initial TTL after ``os_change_time``; ``None`` means no OS change.
    os_change_time:
        Simulated time (seconds from campaign epoch) at which the device's
        software is replaced, flipping the initial TTL.
    respond_probability:
        Per-probe probability of answering at all.  1.0 is a healthy router;
        0.0 blackholes ICMP entirely.
    processing_ms:
        Mean slow-path processing time added to every reply, round trip.
    reply_extra_hops:
        Number of additional IP hops the *reply* traverses.  0 means the
        reply stays inside the layer-2 subnet; >0 models devices that answer
        from another interface or registry addresses that actually sit
        behind a router.
    """

    name: str
    ttl_init: int = TTL_NETWORK_OS
    ttl_after_change: int | None = None
    os_change_time: float | None = None
    respond_probability: float = 1.0
    processing_ms: float = 0.1
    reply_extra_hops: int = 0
    interfaces: list[Interface] = field(default_factory=list)
    device_id: int = field(default_factory=lambda: next(_device_ids))

    def __post_init__(self) -> None:
        if self.ttl_init not in _VALID_TTLS:
            raise ConfigurationError(f"unrealistic initial TTL {self.ttl_init}")
        if self.ttl_after_change is not None:
            if self.ttl_after_change not in _VALID_TTLS:
                raise ConfigurationError(
                    f"unrealistic post-change TTL {self.ttl_after_change}"
                )
            if self.os_change_time is None:
                raise ConfigurationError(
                    "ttl_after_change given without os_change_time"
                )
        if not 0.0 <= self.respond_probability <= 1.0:
            raise ConfigurationError("respond_probability must be in [0, 1]")
        if self.processing_ms < 0:
            raise ConfigurationError("processing_ms cannot be negative")
        if self.reply_extra_hops < 0:
            raise ConfigurationError("reply_extra_hops cannot be negative")

    def add_interface(self, address: IPv4Address, name: str = "") -> Interface:
        """Attach a new interface with ``address`` and return it."""
        iface = Interface(address=address, device=self, name=name)
        self.interfaces.append(iface)
        return iface

    def ttl_init_at(self, time_s: float) -> int:
        """Initial TTL the device stamps on a reply sent at ``time_s``."""
        changed = (
            self.ttl_after_change is not None
            and self.os_change_time is not None
            and time_s >= self.os_change_time
        )
        if changed:
            assert self.ttl_after_change is not None
            return self.ttl_after_change
        return self.ttl_init

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
