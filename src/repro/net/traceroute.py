"""A traceroute model over economic-entity paths.

Section 3.1 opens with the reason the detector exists: "traceroute and BGP
data do not reveal IP addresses or ASNs of remote-peering providers".
This module makes that limitation executable: a traceroute across a
layer-2-aware :class:`~repro.core.structure.entities.EntityPath` shows a
hop for every *router* on the path — and the remote-peering provider's
pseudowire contributes delay but no hop, because layer-2 devices do not
decrement TTL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.structure.entities import EntityKind, EntityPath
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One hop as a traceroute would report it."""

    index: int            # 1-based hop number
    organization: str     # whose router answered
    rtt_ms: float         # cumulative RTT at this hop


@dataclass(frozen=True, slots=True)
class TracerouteResult:
    """The hops plus what the measurement *missed*."""

    hops: tuple[TracerouteHop, ...]
    hidden_organizations: tuple[str, ...]

    def visible_organizations(self) -> tuple[str, ...]:
        """Organizations a layer-3 analyst would infer from the output."""
        seen: list[str] = []
        for hop in self.hops:
            if not seen or seen[-1] != hop.organization:
                seen.append(hop.organization)
        return tuple(seen)


#: Per-hop forwarding delay of a router, round trip.
_ROUTER_HOP_MS = 0.1


def traceroute(
    path: EntityPath,
    l2_segment_rtts_ms: dict[str, float] | None = None,
) -> TracerouteResult:
    """Simulate traceroute along an entity path.

    ``l2_segment_rtts_ms`` maps a layer-2 entity's key (e.g.
    ``l2:reachix``) to the round-trip delay its segment adds.  Those
    segments inflate the RTT of the *next* layer-3 hop but never produce a
    hop of their own — the signature that makes remote peering invisible
    and RTT-based detection possible.
    """
    l2_segment_rtts_ms = l2_segment_rtts_ms or {}
    hops: list[TracerouteHop] = []
    hidden: list[str] = []
    cumulative = 0.0
    index = 0
    for entity in path.entities[1:]:  # the source does not answer itself
        if entity.kind is EntityKind.NETWORK:
            cumulative += _ROUTER_HOP_MS
            index += 1
            hops.append(
                TracerouteHop(
                    index=index,
                    organization=entity.name,
                    rtt_ms=round(cumulative, 3),
                )
            )
        else:
            segment = l2_segment_rtts_ms.get(entity.key, 0.0)
            if segment < 0:
                raise ConfigurationError("segment RTT cannot be negative")
            cumulative += segment
            hidden.append(entity.name)
    return TracerouteResult(hops=tuple(hops), hidden_organizations=tuple(hidden))
