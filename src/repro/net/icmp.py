"""ICMP echo semantics: what a ping against a peering-LAN interface yields.

The paper's method sends echo requests from a looking glass inside the IXP
to a member interface in the IXP subnet and records two observables per
reply: the round-trip time and the received TTL.  :func:`reply_for_probe`
produces exactly those observables given the device's behaviour and the
path's delay, so every filter in Section 3.1 has a faithful signal to work
on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.device import Device


@dataclass(frozen=True, slots=True)
class EchoReply:
    """A single ping reply as seen by the probing vantage point."""

    rtt_ms: float
    ttl: int
    target_address: str
    sent_at_s: float


@dataclass(eq=False, slots=True)
class ReplyBatch:
    """A struct-of-arrays reply set: one row per *answered* probe.

    The batch probe engine produces these instead of ~300k individual
    :class:`EchoReply` objects.  All three arrays share one length; row ``i``
    holds the RTT, received TTL, and send time of the ``i``-th answered
    probe, in probe order.
    """

    rtt_ms: np.ndarray
    ttl: np.ndarray
    sent_at_s: np.ndarray

    def __len__(self) -> int:
        return int(self.rtt_ms.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplyBatch):
            return NotImplemented
        return (
            np.array_equal(self.rtt_ms, other.rtt_ms)
            and np.array_equal(self.ttl, other.ttl)
            and np.array_equal(self.sent_at_s, other.sent_at_s)
        )

    def select(self, mask: np.ndarray) -> "ReplyBatch":
        """A new batch keeping only the rows where ``mask`` is True."""
        return ReplyBatch(
            rtt_ms=self.rtt_ms[mask],
            ttl=self.ttl[mask],
            sent_at_s=self.sent_at_s[mask],
        )

    def concat(self, other: "ReplyBatch") -> "ReplyBatch":
        """This batch followed by ``other`` (row-wise concatenation)."""
        return ReplyBatch(
            rtt_ms=np.concatenate([self.rtt_ms, other.rtt_ms]),
            ttl=np.concatenate([self.ttl, other.ttl]),
            sent_at_s=np.concatenate([self.sent_at_s, other.sent_at_s]),
        )

    def to_replies(self, target_address: str) -> list[EchoReply]:
        """Materialize per-reply objects (compat / reference path)."""
        return [
            EchoReply(
                rtt_ms=float(self.rtt_ms[i]),
                ttl=int(self.ttl[i]),
                target_address=target_address,
                sent_at_s=float(self.sent_at_s[i]),
            )
            for i in range(len(self))
        ]

    @classmethod
    def from_replies(cls, replies: "list[EchoReply]") -> "ReplyBatch":
        """Pack per-reply objects into a struct-of-arrays batch."""
        return cls(
            rtt_ms=np.array([r.rtt_ms for r in replies], dtype=float),
            ttl=np.array([r.ttl for r in replies], dtype=np.int64),
            sent_at_s=np.array([r.sent_at_s for r in replies], dtype=float),
        )


@dataclass(frozen=True, slots=True)
class PingObservation:
    """The outcome of one echo request: a reply or a timeout."""

    reply: EchoReply | None

    @property
    def answered(self) -> bool:
        """Whether the probe got any reply back."""
        return self.reply is not None


def reply_for_probe(
    device: Device,
    target_address: str,
    path_rtt_ms: float,
    sent_at_s: float,
    rng: np.random.Generator,
    reply_extra_hops: int | None = None,
    respond_probability: float | None = None,
) -> PingObservation:
    """Simulate one echo request against ``device``.

    ``path_rtt_ms`` is the round-trip delay contributed by the network path
    (propagation + queueing), excluding the device's own processing time.
    ``reply_extra_hops`` overrides the device's default when the *request*
    itself took an indirect route (e.g. a stale registry address that lives
    behind a router outside the LAN).  ``respond_probability`` overrides
    the device's own when the probe path degrades it (e.g. a fault
    schedule's loss burst); the loss draw is consumed either way, so
    overriding never shifts later draws.
    """
    p = device.respond_probability if respond_probability is None else respond_probability
    if rng.random() > p:
        return PingObservation(reply=None)
    hops = device.reply_extra_hops if reply_extra_hops is None else reply_extra_hops
    ttl = device.ttl_init_at(sent_at_s) - hops
    if ttl <= 0:
        # Reply died in transit; observable only as a timeout.
        return PingObservation(reply=None)
    # Slow-path ICMP processing: exponential tail around the device mean.
    processing = float(rng.exponential(device.processing_ms)) if device.processing_ms else 0.0
    rtt = path_rtt_ms + processing
    reply = EchoReply(
        rtt_ms=rtt,
        ttl=ttl,
        target_address=target_address,
        sent_at_s=sent_at_s,
    )
    return PingObservation(reply=reply)
