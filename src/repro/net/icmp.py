"""ICMP echo semantics: what a ping against a peering-LAN interface yields.

The paper's method sends echo requests from a looking glass inside the IXP
to a member interface in the IXP subnet and records two observables per
reply: the round-trip time and the received TTL.  :func:`reply_for_probe`
produces exactly those observables given the device's behaviour and the
path's delay, so every filter in Section 3.1 has a faithful signal to work
on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.device import Device


@dataclass(frozen=True, slots=True)
class EchoReply:
    """A single ping reply as seen by the probing vantage point."""

    rtt_ms: float
    ttl: int
    target_address: str
    sent_at_s: float


@dataclass(frozen=True, slots=True)
class PingObservation:
    """The outcome of one echo request: a reply or a timeout."""

    reply: EchoReply | None

    @property
    def answered(self) -> bool:
        """Whether the probe got any reply back."""
        return self.reply is not None


def reply_for_probe(
    device: Device,
    target_address: str,
    path_rtt_ms: float,
    sent_at_s: float,
    rng: np.random.Generator,
    reply_extra_hops: int | None = None,
) -> PingObservation:
    """Simulate one echo request against ``device``.

    ``path_rtt_ms`` is the round-trip delay contributed by the network path
    (propagation + queueing), excluding the device's own processing time.
    ``reply_extra_hops`` overrides the device's default when the *request*
    itself took an indirect route (e.g. a stale registry address that lives
    behind a router outside the LAN).
    """
    if rng.random() > device.respond_probability:
        return PingObservation(reply=None)
    hops = device.reply_extra_hops if reply_extra_hops is None else reply_extra_hops
    ttl = device.ttl_init_at(sent_at_s) - hops
    if ttl <= 0:
        # Reply died in transit; observable only as a timeout.
        return PingObservation(reply=None)
    # Slow-path ICMP processing: exponential tail around the device mean.
    processing = float(rng.exponential(device.processing_ms)) if device.processing_ms else 0.0
    rtt = path_rtt_ms + processing
    reply = EchoReply(
        rtt_ms=rtt,
        ttl=ttl,
        target_address=target_address,
        sent_at_s=sent_at_s,
    )
    return PingObservation(reply=reply)
