"""Unit helpers: traffic rates, time, and distance.

All internal computation uses SI base units (bits per second, seconds,
kilometres, milliseconds for RTTs where stated).  These helpers make
conversions explicit at module boundaries so magic constants never leak
into formulas.
"""

from __future__ import annotations

# --- traffic rate -----------------------------------------------------------

KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0
TBPS = 1_000_000_000_000.0


def bps_to_gbps(rate_bps: float) -> float:
    """Convert bits/second to gigabits/second."""
    return rate_bps / GBPS


def gbps_to_bps(rate_gbps: float) -> float:
    """Convert gigabits/second to bits/second."""
    return rate_gbps * GBPS


def mbps_to_bps(rate_mbps: float) -> float:
    """Convert megabits/second to bits/second."""
    return rate_mbps * MBPS


def format_rate(rate_bps: float) -> str:
    """Render a traffic rate with an adaptive unit, e.g. ``1.60 Gbps``."""
    if rate_bps >= TBPS:
        return f"{rate_bps / TBPS:.2f} Tbps"
    if rate_bps >= GBPS:
        return f"{rate_bps / GBPS:.2f} Gbps"
    if rate_bps >= MBPS:
        return f"{rate_bps / MBPS:.2f} Mbps"
    if rate_bps >= KBPS:
        return f"{rate_bps / KBPS:.2f} Kbps"
    return f"{rate_bps:.0f} bps"


# --- time -------------------------------------------------------------------

SECOND = 1.0
MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0
WEEK = 7 * DAY

#: NetFlow metering granularity used by the paper (Section 2.1, 4.1).
FIVE_MINUTES = 5 * MINUTE


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1_000.0


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1_000.0


# --- distance / propagation -------------------------------------------------

#: Speed of light in vacuum, km/s.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: Effective signal speed in optical fiber (~2/3 c), km/s.
FIBER_SPEED_KM_S = SPEED_OF_LIGHT_KM_S * 2.0 / 3.0

#: Typical ratio of fiber-route length to great-circle distance.  Empirical
#: studies place circuity between 1.2 and 2; 1.52 reproduces common
#: "RTT ~ 1 ms per 100 km" engineering rules of thumb.
FIBER_PATH_STRETCH = 1.52


def propagation_rtt_ms(distance_km: float, stretch: float = FIBER_PATH_STRETCH) -> float:
    """Round-trip propagation delay in milliseconds over fiber.

    ``distance_km`` is the great-circle distance; ``stretch`` inflates it to
    an estimated fiber-route length.
    """
    one_way_s = distance_km * stretch / FIBER_SPEED_KM_S
    return s_to_ms(2.0 * one_way_s)
