"""Small statistics helpers (CDFs, quantiles, rank series)."""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative fractions (Figure 2).

    Returns ``(x, f)`` with ``f[i]`` the fraction of samples ≤ ``x[i]``.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot build a CDF from an empty sample")
    x = np.sort(values)
    f = np.arange(1, x.size + 1, dtype=float) / x.size
    return x, f


def cdf_at(values: np.ndarray, points: np.ndarray) -> np.ndarray:
    """CDF evaluated at arbitrary points (fraction of samples ≤ point)."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise AnalysisError("cannot evaluate a CDF on an empty sample")
    points = np.asarray(points, dtype=float)
    return np.searchsorted(values, points, side="right") / values.size


def quantiles(values: np.ndarray, qs: list[float]) -> list[float]:
    """Selected quantiles of a sample (qs in [0, 100])."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot take quantiles of an empty sample")
    return [float(v) for v in np.percentile(values, qs)]


def rank_series(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rank plot data (Figure 5a): 1-based ranks and descending values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("cannot rank an empty sample")
    ordered = np.sort(values)[::-1]
    ranks = np.arange(1, ordered.size + 1)
    return ranks, ordered
