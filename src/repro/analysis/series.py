"""Time-series helpers for the Figure 5b style analyses."""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centered-ish moving average (trailing window), same length."""
    series = np.asarray(series, dtype=float)
    if window <= 0:
        raise AnalysisError("window must be positive")
    if series.size == 0:
        raise AnalysisError("empty series")
    if window == 1:
        return series.copy()
    kernel = np.ones(window) / window
    padded = np.concatenate([np.full(window - 1, series[0]), series])
    return np.convolve(padded, kernel, mode="valid")


def daily_peaks(series: np.ndarray, bins_per_day: int = 288) -> np.ndarray:
    """Index of the peak bin within each full day of a 5-minute series."""
    series = np.asarray(series, dtype=float)
    if bins_per_day <= 0:
        raise AnalysisError("bins_per_day must be positive")
    days = series.size // bins_per_day
    if days == 0:
        raise AnalysisError("series shorter than one day")
    trimmed = series[: days * bins_per_day].reshape(days, bins_per_day)
    return np.argmax(trimmed, axis=1)


def peak_coincidence(
    a: np.ndarray, b: np.ndarray, bins_per_day: int = 288,
    tolerance_bins: int = 12,
) -> float:
    """Fraction of days on which two series peak within a tolerance.

    Figure 5b's observation — "the peaks of the transit-provider traffic
    and offload potential consistently coincide" — as a number.  The
    default tolerance is one hour of 5-minute bins.
    """
    peaks_a = daily_peaks(a, bins_per_day)
    peaks_b = daily_peaks(b, bins_per_day)
    if peaks_a.size != peaks_b.size:
        raise AnalysisError("series must cover the same number of days")
    hits = np.abs(peaks_a - peaks_b) <= tolerance_bins
    return float(hits.mean())


def relative_reduction(series: np.ndarray) -> np.ndarray:
    """Remaining fraction relative to the first element (Figure 9 y-axis)."""
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        raise AnalysisError("empty series")
    if series[0] <= 0:
        raise AnalysisError("baseline must be positive")
    return series / series[0]


def marginal_gains(series: np.ndarray) -> np.ndarray:
    """Per-step decrease of a remaining-quantity series."""
    series = np.asarray(series, dtype=float)
    if series.size < 2:
        raise AnalysisError("need at least two points")
    return -np.diff(series)
