"""Statistical helpers and report rendering used by benches and examples."""

from repro.analysis.stats import ecdf, quantiles, rank_series
from repro.analysis.tables import render_table

__all__ = ["ecdf", "quantiles", "rank_series", "render_table"]
