"""Plain-text table rendering for benches, examples and the CLI."""

from __future__ import annotations

from repro.errors import AnalysisError


def render_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; column widths adapt to
    content.  Raises on ragged rows, so malformed reports fail loudly.
    """
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[_format(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_number(row[i]) for row in rows) if rows else False
        for i in range(len(headers))
    ]

    def fmt_row(row: list[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
