"""``python -m repro`` — the same entry point as the ``repro`` script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
