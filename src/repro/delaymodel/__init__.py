"""Stochastic delay components layered on top of baseline propagation.

The paper's filters exist because real RTT samples are noisy: transient
congestion inflates some probes, persistent congestion inflates most probes
of an unlucky interface, and queueing adds jitter everywhere.  These
processes generate that noise deterministically from seeds.
"""

from repro.delaymodel.jitter import JitterModel
from repro.delaymodel.congestion import (
    CongestionProcess,
    NoCongestion,
    PersistentCongestion,
    TransientCongestion,
)

__all__ = [
    "JitterModel",
    "CongestionProcess",
    "NoCongestion",
    "PersistentCongestion",
    "TransientCongestion",
]
