"""Congestion processes that inflate probe RTTs.

Two regimes matter to the paper's methodology (Section 3.1):

* *Transient* congestion — busy-hour queueing that repeats daily.  The
  method defeats it by probing at different times of day and keeping the
  minimum, so the simulator must make single-time-of-day probing visibly
  wrong while leaving the across-day minimum clean.
* *Persistent* congestion — an interface whose path is congested during
  essentially every probe.  The minimum never stabilises; the
  RTT-consistent filter discards such interfaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import DAY


class CongestionProcess:
    """Interface for additive congestion delay at a given simulated time."""

    def delay_ms(self, time_s: float, rng: np.random.Generator) -> float:
        """Extra round-trip delay (ms) for a probe sent at ``time_s``."""
        raise NotImplementedError

    def delay_batch_ms(
        self, times_s: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Extra delay for many probes at once (same law as :meth:`delay_ms`).

        Subclasses override with a vectorized implementation; this fallback
        loops, so arbitrary third-party processes stay usable in batch mode
        (including the multi-dimensional time grids the probe engine passes).
        """
        flat = np.ravel(np.asarray(times_s, dtype=float))
        delays = np.array([self.delay_ms(float(t), rng) for t in flat])
        return delays.reshape(np.shape(times_s))


@dataclass(frozen=True, slots=True)
class NoCongestion(CongestionProcess):
    """The common case: no congestion beyond ordinary jitter."""

    def delay_ms(self, time_s: float, rng: np.random.Generator) -> float:
        return 0.0

    def delay_batch_ms(
        self, times_s: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.zeros(np.shape(times_s))


@dataclass(frozen=True, slots=True)
class TransientCongestion(CongestionProcess):
    """Diurnal busy-hour congestion.

    The intensity follows a raised cosine over the day, peaking at
    ``peak_hour_utc``; probes during the peak draw exponential extra delay
    with mean ``peak_amplitude_ms``, probes at the trough draw (almost)
    none.
    """

    peak_amplitude_ms: float = 3.0
    peak_hour_utc: float = 20.0
    sharpness: float = 2.0

    def __post_init__(self) -> None:
        if self.peak_amplitude_ms < 0:
            raise ConfigurationError("amplitude cannot be negative")
        if not 0 <= self.peak_hour_utc < 24:
            raise ConfigurationError("peak hour must be in [0, 24)")
        if self.sharpness <= 0:
            raise ConfigurationError("sharpness must be positive")

    def intensity(self, time_s: float) -> float:
        """Congestion intensity in [0, 1] at ``time_s``."""
        hour = (time_s % DAY) / 3600.0
        phase = (hour - self.peak_hour_utc) / 24.0 * 2.0 * math.pi
        base = (1.0 + math.cos(phase)) / 2.0
        return base ** self.sharpness

    def intensity_batch(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`intensity` over an array of probe times."""
        hours = np.mod(times_s, DAY) / 3600.0
        phases = (hours - self.peak_hour_utc) / 24.0 * 2.0 * np.pi
        base = (1.0 + np.cos(phases)) / 2.0
        return base ** self.sharpness

    def delay_ms(self, time_s: float, rng: np.random.Generator) -> float:
        mean = self.peak_amplitude_ms * self.intensity(time_s)
        if mean <= 0:
            return 0.0
        return float(rng.exponential(mean))

    def delay_batch_ms(
        self, times_s: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # Exponential with a per-probe mean == unit exponential scaled by
        # each probe's diurnal mean; one vectorized draw for the whole batch.
        means = self.peak_amplitude_ms * self.intensity_batch(times_s)
        return rng.exponential(1.0, size=np.shape(times_s)) * means


@dataclass(frozen=True, slots=True)
class PersistentCongestion(CongestionProcess):
    """A chronically congested path.

    Every probe sees at least ``floor_ms`` of standing-queue delay plus a
    broad uniform component, so the observed minimum RTT never settles: the
    spread between the minimum and typical samples exceeds the paper's
    max(5 ms, 10%) consistency envelope and the interface gets discarded.
    """

    floor_ms: float = 4.0
    spread_ms: float = 45.0

    def __post_init__(self) -> None:
        if self.floor_ms < 0 or self.spread_ms <= 0:
            raise ConfigurationError("invalid persistent congestion parameters")

    def delay_ms(self, time_s: float, rng: np.random.Generator) -> float:
        return self.floor_ms + float(rng.uniform(0.0, self.spread_ms))

    def delay_batch_ms(
        self, times_s: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return self.floor_ms + rng.uniform(
            0.0, self.spread_ms, size=np.shape(times_s)
        )
