"""Per-probe queueing jitter."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class JitterModel:
    """Additive per-probe queueing delay.

    Queueing delay in lightly loaded switched networks is well approximated
    by an exponential with a small mean: most probes see almost none, a few
    see a burst.  ``scale_ms`` is the mean of that exponential; ``floor_ms``
    is serialization delay present on every probe.
    """

    scale_ms: float = 0.08
    floor_ms: float = 0.02

    def __post_init__(self) -> None:
        if self.scale_ms < 0 or self.floor_ms < 0:
            raise ConfigurationError("jitter parameters cannot be negative")

    def sample_ms(self, rng: np.random.Generator) -> float:
        """One round trip's worth of queueing jitter in milliseconds."""
        if self.scale_ms == 0:
            return self.floor_ms
        return self.floor_ms + float(rng.exponential(self.scale_ms))

    def sample_batch_ms(
        self, rng: np.random.Generator, size: int | tuple[int, ...]
    ) -> np.ndarray:
        """Jitter for ``size`` probes at once (one exponential draw each)."""
        if self.scale_ms == 0:
            return np.full(size, self.floor_ms)
        return self.floor_ms + rng.exponential(self.scale_ms, size=size)
