"""The IXP object: peering LAN, address plan, members, route server."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.asys import AutonomousSystem
from repro.bgp.routeserver import RouteServer
from repro.delaymodel.congestion import CongestionProcess, NoCongestion
from repro.errors import ConfigurationError, TopologyError
from repro.geo.cities import City
from repro.layer2.fabric import PeeringFabric
from repro.layer2.port import Port, PortProfile
from repro.layer2.pseudowire import Pseudowire
from repro.net.addr import HostAllocator, IPv4Address, IPv4Prefix
from repro.net.device import Device
from repro.types import ASN, PortKind


@dataclass(slots=True)
class MemberInterface:
    """One member interface on the peering LAN (the detector's probe unit)."""

    address: IPv4Address
    device: Device
    port: Port
    member: "IXPMember"

    @property
    def is_remote(self) -> bool:
        """Ground truth: whether this interface peers remotely."""
        return self.port.is_remote

    @property
    def asn(self) -> ASN:
        """ASN of the owning network (ground truth, not the registry view)."""
        return self.member.network.asn


@dataclass(slots=True)
class IXPMember:
    """A network's membership at one IXP."""

    network: AutonomousSystem
    ixp: "IXP"
    interfaces: list[MemberInterface] = field(default_factory=list)

    @property
    def is_remote(self) -> bool:
        """Whether *all* of the member's interfaces are remote ports."""
        return bool(self.interfaces) and all(
            i.is_remote for i in self.interfaces
        )

    @property
    def has_remote_interface(self) -> bool:
        """Whether any of the member's interfaces is a remote port."""
        return any(i.is_remote for i in self.interfaces)


@dataclass
class IXP:
    """An Internet eXchange Point."""

    acronym: str
    full_name: str
    city: City
    country: str
    lan: IPv4Prefix
    peak_traffic_tbps: float | None = None
    fabric: PeeringFabric = None  # type: ignore[assignment]
    route_server: RouteServer | None = None
    members: list[IXPMember] = field(default_factory=list)
    _member_by_asn: dict[ASN, IXPMember] = field(default_factory=dict)
    _host_alloc: HostAllocator = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.fabric is None:
            self.fabric = PeeringFabric(name=self.acronym)
        if self._host_alloc is None:
            self._host_alloc = HostAllocator(self.lan)

    # --- membership -----------------------------------------------------------

    def register(self, network: AutonomousSystem) -> IXPMember:
        """Create (or return the existing) membership for ``network``."""
        existing = self._member_by_asn.get(network.asn)
        if existing is not None:
            return existing
        member = IXPMember(network=network, ixp=self)
        self.members.append(member)
        self._member_by_asn[network.asn] = member
        return member

    def member_of(self, asn: ASN) -> IXPMember:
        """The membership of ``asn``; unknown members are topology errors."""
        try:
            return self._member_by_asn[asn]
        except KeyError:
            raise TopologyError(f"AS{asn} is not a member of {self.acronym}") from None

    def is_member(self, asn: ASN) -> bool:
        """Whether ``asn`` holds a membership here."""
        return asn in self._member_by_asn

    def member_asns(self) -> set[ASN]:
        """ASNs of all members."""
        return set(self._member_by_asn)

    # --- interfaces ---------------------------------------------------------------

    def allocate_address(self) -> IPv4Address:
        """Hand out the next free peering-LAN address."""
        return self._host_alloc.allocate()

    def add_interface(
        self,
        member: IXPMember,
        device: Device,
        kind: PortKind,
        tail_rtt_ms: float | None = None,
        pseudowire: Pseudowire | None = None,
        congestion: CongestionProcess | None = None,
        site: str = "main",
        address: IPv4Address | None = None,
    ) -> MemberInterface:
        """Attach one interface of ``member`` to the peering LAN.

        Direct interfaces need ``tail_rtt_ms`` (the metro cross-connect
        RTT); remote interfaces need a ``pseudowire`` whose base RTT becomes
        the tail.
        """
        if member.ixp is not self:
            raise ConfigurationError("member belongs to a different IXP")
        if kind is PortKind.REMOTE:
            if pseudowire is None:
                raise ConfigurationError("remote interface requires a pseudowire")
            tail = pseudowire.base_rtt_ms()
        else:
            if tail_rtt_ms is None:
                raise ConfigurationError("direct interface requires tail_rtt_ms")
            tail = tail_rtt_ms
        if address is None:
            address = self.allocate_address()
        iface = device.add_interface(address)
        profile = PortProfile(
            tail_rtt_ms=tail,
            congestion=congestion if congestion is not None else NoCongestion(),
        )
        port = Port(
            interface=iface,
            kind=kind,
            profile=profile,
            pseudowire=pseudowire,
        )
        self.fabric.attach(port, site=site)
        member_iface = MemberInterface(
            address=address, device=device, port=port, member=member
        )
        member.interfaces.append(member_iface)
        return member_iface

    def interfaces(self) -> list[MemberInterface]:
        """Every member interface on the LAN, in attachment order."""
        return [i for m in self.members for i in m.interfaces]

    def remote_interfaces(self) -> list[MemberInterface]:
        """Ground-truth remote interfaces (for validation/ablation)."""
        return [i for i in self.interfaces() if i.is_remote]

    def interface_at(self, address: IPv4Address) -> MemberInterface:
        """The member interface holding ``address``."""
        for iface in self.interfaces():
            if iface.address == address:
                return iface
        raise TopologyError(f"{self.acronym}: no member interface at {address}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.acronym
