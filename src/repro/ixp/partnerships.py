"""IXP partnership programs and inter-IXP layer-2 interconnections.

Section 2.3/3.1: IXPs incentivise remote peering through partner programs,
and pairs of IXPs (AMS-IX ⇄ AMS-IX Hong Kong, TOP-IX ⇄ VSIX/LyonIX) buy
layer-2 connectivity from a third party to merge peering opportunities.
The paper's method classifies members reached over such interconnects as
remote peers — which it considers correct behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.cities import City
from repro.geo.latency import LatencyModel


@dataclass(frozen=True, slots=True)
class Partnership:
    """A layer-2 interconnection between two IXPs.

    ``membership_discount`` models partner programs that reduce fees for
    remotely peering networks (an input to the economics model's ``h``).
    """

    ixp_a: str
    ixp_b: str
    city_a: City
    city_b: City
    carrier: str
    membership_discount: float = 0.25
    overhead_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.ixp_a == self.ixp_b:
            raise ConfigurationError("partnership needs two distinct IXPs")
        if not 0.0 <= self.membership_discount < 1.0:
            raise ConfigurationError("discount must be in [0, 1)")
        if self.overhead_ms < 0:
            raise ConfigurationError("overhead cannot be negative")

    def interconnect_rtt_ms(self, model: LatencyModel | None = None) -> float:
        """Round-trip delay of the inter-IXP circuit."""
        model = model or LatencyModel()
        distance = self.city_a.distance_km(self.city_b)
        return model.baseline_rtt_ms(distance) + self.overhead_ms
