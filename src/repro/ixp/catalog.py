"""The 22-IXP catalog of the paper's measurement study (Table 1).

Identity fields (acronym, name, city, country, peak traffic, member count)
are the published values from Table 1.  The calibration fields
(``remote_fraction``, ``band_weights``, LG presence) are *our* knobs: they
shape the synthetic membership so the generated world reproduces the
qualitative structure of Figures 2–4 (remote peering at >90% of IXPs, up to
~20% remote members, intercontinental remotes at a majority of IXPs, none
at DIX-IE and CABASE).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class IXPSpec:
    """Static description + calibration knobs for one studied IXP.

    ``band_weights`` are the relative odds that a remote member's circuit is
    intercity / intercountry / intercontinental.  ``analyzed_interfaces`` is
    Table 1's published count — the generator sizes the candidate set so
    the filter pipeline lands near it.
    """

    acronym: str
    full_name: str
    city_name: str
    country: str
    peak_traffic_tbps: float | None
    member_count: int
    analyzed_interfaces: int
    remote_fraction: float
    band_weights: tuple[float, float, float]
    has_pch_lg: bool = True
    has_ripe_lg: bool = False
    sites: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ConfigurationError("remote_fraction must be in [0, 1]")
        if self.member_count <= 0 or self.analyzed_interfaces <= 0:
            raise ConfigurationError("counts must be positive")
        if len(self.band_weights) != 3 or any(w < 0 for w in self.band_weights):
            raise ConfigurationError("band_weights must be 3 non-negative values")
        # All-zero band_weights are allowed (a direct-only IXP, or "no
        # preference"): the world builder falls back to a uniform band draw
        # for any remote members.
        if not (self.has_pch_lg or self.has_ripe_lg):
            raise ConfigurationError(
                f"{self.acronym}: study requires at least one LG server"
            )


_CATALOG: tuple[IXPSpec, ...] = (
    IXPSpec("AMS-IX", "Amsterdam Internet Exchange", "Amsterdam", "Netherlands",
            5.48, 638, 665, 0.20, (0.35, 0.40, 0.25), True, True, 2),
    IXPSpec("DE-CIX", "German Commercial Internet Exchange", "Frankfurt", "Germany",
            3.21, 463, 535, 0.18, (0.35, 0.40, 0.25), True, True, 2),
    IXPSpec("LINX", "London Internet Exchange", "London", "UK",
            2.60, 497, 521, 0.17, (0.30, 0.40, 0.30), True, True, 2),
    IXPSpec("HKIX", "Hong Kong Internet Exchange", "Hong Kong", "China",
            0.48, 213, 278, 0.12, (0.20, 0.40, 0.40), True, False),
    IXPSpec("NYIIX", "New York International Internet Exchange", "New York", "USA",
            0.46, 132, 239, 0.12, (0.35, 0.35, 0.30), True, False),
    IXPSpec("MSK-IX", "Moscow Internet eXchange", "Moscow", "Russia",
            1.32, 367, 218, 0.08, (0.45, 0.40, 0.15), True, True),
    IXPSpec("PLIX", "Polish Internet Exchange", "Warsaw", "Poland",
            0.63, 235, 207, 0.10, (0.50, 0.35, 0.15), True, False),
    IXPSpec("France-IX", "France-IX", "Paris", "France",
            0.23, 230, 201, 0.16, (0.40, 0.40, 0.20), True, True),
    IXPSpec("PTT", "PTTMetro Sao Paolo", "Sao Paulo", "Brazil",
            0.30, 482, 180, 0.15, (0.55, 0.35, 0.10), True, False),
    IXPSpec("SIX", "Seattle Internet Exchange", "Seattle", "USA",
            0.53, 177, 175, 0.07, (0.40, 0.35, 0.25), True, False),
    IXPSpec("LoNAP", "London Network Access Point", "London", "UK",
            0.10, 142, 166, 0.12, (0.35, 0.40, 0.25), True, False),
    IXPSpec("JPIX", "Japan Internet Exchange", "Tokyo", "Japan",
            0.43, 131, 163, 0.15, (0.30, 0.30, 0.40), True, False),
    IXPSpec("TorIX", "Toronto Internet Exchange", "Toronto", "Canada",
            0.28, 177, 161, 0.08, (0.35, 0.35, 0.30), True, False),
    IXPSpec("VIX", "Vienna Internet Exchange", "Vienna", "Austria",
            0.19, 121, 134, 0.10, (0.50, 0.40, 0.10), True, True),
    IXPSpec("MIX", "Milan Internet Exchange", "Milan", "Italy",
            0.16, 133, 131, 0.10, (0.50, 0.35, 0.15), True, False),
    IXPSpec("TOP-IX", "Torino Piemonte Internet Exchange", "Turin", "Italy",
            0.05, 80, 91, 0.25, (0.70, 0.25, 0.05), True, False),
    IXPSpec("Netnod", "Netnod Internet Exchange", "Stockholm", "Sweden",
            1.34, 89, 71, 0.08, (0.40, 0.45, 0.15), True, True),
    IXPSpec("KINX", "Korea Internet Neutral Exchange", "Seoul", "South Korea",
            0.15, 46, 71, 0.06, (0.30, 0.30, 0.40), True, False),
    IXPSpec("CABASE", "Argentine Chamber of Internet", "Buenos Aires", "Argentina",
            0.02, 101, 68, 0.00, (1.0, 0.0, 0.0), True, False),
    IXPSpec("INEX", "Internet Neutral Exchange", "Dublin", "Ireland",
            0.13, 63, 66, 0.09, (0.40, 0.40, 0.20), True, False),
    IXPSpec("DIX-IE", "Distributed Internet Exchange in Edo", "Tokyo", "Japan",
            None, 36, 56, 0.00, (1.0, 0.0, 0.0), True, False),
    IXPSpec("TIE", "Telx Internet Exchange", "New York", "USA",
            0.02, 149, 54, 0.12, (0.30, 0.35, 0.35), True, False),
)


def paper_catalog() -> tuple[IXPSpec, ...]:
    """The 22 IXPs of the measurement study, in Table 1 order."""
    return _CATALOG


def spec_by_acronym(acronym: str) -> IXPSpec:
    """Look one spec up by acronym; unknown acronyms raise."""
    for spec in _CATALOG:
        if spec.acronym == acronym:
            return spec
    raise ConfigurationError(f"no IXP spec with acronym {acronym!r}")


def total_analyzed_interfaces() -> int:
    """Table 1's total analyzed-interface count (4,451 in the paper)."""
    return sum(spec.analyzed_interfaces for spec in _CATALOG)
