"""IXP substrate: exchanges, members, the paper's IXP datasets.

An IXP here is a layer-2 peering LAN (:class:`repro.layer2.PeeringFabric`)
plus an address plan, a membership list, an optional route server, and the
looking glasses the detector probes from.
"""

from repro.ixp.ixp import IXP, IXPMember, MemberInterface
from repro.ixp.catalog import IXPSpec, paper_catalog, spec_by_acronym
from repro.ixp.euroix import EuroIXSpec, euroix_catalog
from repro.ixp.partnerships import Partnership

__all__ = [
    "IXP",
    "IXPMember",
    "MemberInterface",
    "IXPSpec",
    "paper_catalog",
    "spec_by_acronym",
    "EuroIXSpec",
    "euroix_catalog",
    "Partnership",
]
