"""The 65-IXP set used by the offload study (Section 4.2).

The paper takes the Euro-IX association membership as of February 2013 —
65 IXPs, a superset of the 22 studied in Section 3 (the LG-server
constraint is dropped).  The association's actual member list is not in the
paper, so beyond the IXPs it names (the 22, Terremark, SFINX, CoreSite,
NL-ix, and RedIRIS's own CATNIX and ESpanix) we fill the set with
synthetic exchanges whose sizes follow the real-world IXP size
distribution.  ``region`` controls which membership pool an IXP draws from,
which in turn controls the membership overlap that drives Figures 7–9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ixp.catalog import paper_catalog


@dataclass(frozen=True, slots=True)
class EuroIXSpec:
    """One IXP in the offload study's reachable set."""

    acronym: str
    city_name: str
    country: str
    member_count: int
    region: str  # europe | north_america | latin_america | asia | africa

    def __post_init__(self) -> None:
        if self.member_count <= 0:
            raise ConfigurationError("member_count must be positive")
        valid = {"europe", "north_america", "latin_america", "asia", "africa"}
        if self.region not in valid:
            raise ConfigurationError(f"unknown region {self.region!r}")


_REGION_OF_COUNTRY = {
    "Netherlands": "europe", "Germany": "europe", "UK": "europe",
    "Russia": "europe", "Poland": "europe", "France": "europe",
    "Austria": "europe", "Italy": "europe", "Sweden": "europe",
    "Ireland": "europe", "Spain": "europe", "Switzerland": "europe",
    "Belgium": "europe", "Czechia": "europe", "Hungary": "europe",
    "Portugal": "europe", "Norway": "europe", "Denmark": "europe",
    "Finland": "europe", "Ukraine": "europe", "Turkey": "europe",
    "Greece": "europe", "Romania": "europe", "Bulgaria": "europe",
    "Luxembourg": "europe",
    "USA": "north_america", "Canada": "north_america",
    "Brazil": "latin_america", "Argentina": "latin_america",
    "Chile": "latin_america", "Colombia": "latin_america",
    "Mexico": "latin_america", "Peru": "latin_america",
    "China": "asia", "Japan": "asia", "South Korea": "asia",
    "Singapore": "asia", "UAE": "asia", "India": "asia",
    "South Africa": "africa", "Kenya": "africa", "Nigeria": "africa",
    "Egypt": "africa",
}

#: Extra IXPs the paper names in the offload study, plus RedIRIS's two.
_NAMED_EXTRAS: tuple[EuroIXSpec, ...] = (
    EuroIXSpec("Terremark", "Miami", "USA", 267, "north_america"),
    EuroIXSpec("SFINX", "Paris", "France", 84, "europe"),
    EuroIXSpec("CoreSite", "Los Angeles", "USA", 124, "north_america"),
    EuroIXSpec("NL-ix", "Rotterdam", "Netherlands", 212, "europe"),
    EuroIXSpec("CATNIX", "Barcelona", "Spain", 28, "europe"),
    EuroIXSpec("ESpanix", "Madrid", "Spain", 42, "europe"),
)

#: Synthetic fill: (acronym, city, country, member_count).
_SYNTHETIC: tuple[tuple[str, str, str, int], ...] = (
    ("ECIX-BER", "Berlin", "Germany", 96),
    ("ECIX-DUS", "Dusseldorf", "Germany", 72),
    ("ALP-IX", "Munich", "Germany", 58),
    ("SwissIX", "Zurich", "Switzerland", 118),
    ("CERN-IX", "Geneva", "Switzerland", 34),
    ("BNIX", "Brussels", "Belgium", 54),
    ("NIX-CZ", "Prague", "Czechia", 102),
    ("BIX-HU", "Budapest", "Hungary", 66),
    ("GigaPIX", "Lisbon", "Portugal", 40),
    ("NIX-NO", "Oslo", "Norway", 48),
    ("DIX-DK", "Copenhagen", "Denmark", 44),
    ("FICIX", "Helsinki", "Finland", 30),
    ("UA-IX", "Kyiv", "Ukraine", 88),
    ("TR-IX", "Istanbul", "Turkey", 52),
    ("GR-IX", "Athens", "Greece", 36),
    ("RoNIX", "Bucharest", "Romania", 62),
    ("B-IX", "Sofia", "Bulgaria", 46),
    ("LU-CIX", "Luxembourg", "Luxembourg", 38),
    ("IXManchester", "Manchester", "UK", 56),
    ("MarIX", "Marseille", "France", 42),
    ("RhoneIX", "Lyon", "France", 26),
    ("VSIX", "Padua", "Italy", 32),
    ("NaMeX", "Rome", "Italy", 58),
    ("SPB-IX", "Saint Petersburg", "Russia", 74),
    ("Any2-CHI", "Chicago", "USA", 98),
    ("DFW-IX", "Dallas", "USA", 64),
    ("Digital-ATL", "Atlanta", "USA", 72),
    ("WDC-IX", "Washington", "USA", 110),
    ("SFMIX", "San Francisco", "USA", 60),
    ("QIX-MTL", "Montreal", "Canada", 46),
    ("MEX-IX", "Mexico City", "Mexico", 38),
    ("PTT-RJ", "Rio de Janeiro", "Brazil", 124),
    ("NAP-CL", "Santiago", "Chile", 44),
    ("NAP-CO", "Bogota", "Colombia", 36),
    ("Equinix-SG", "Singapore", "Singapore", 142),
    ("UAE-IX", "Dubai", "UAE", 40),
    ("JINX", "Johannesburg", "South Africa", 54),
)


#: Pool size the catalog's absolute ``member_count`` figures assume — the
#: default :class:`~repro.sim.netpool.NetworkPoolConfig` population the
#: paper-scale worlds draw members from.
REFERENCE_POOL_SIZE = 5600


def scaled_member_count(
    spec: EuroIXSpec, pool_size: int, floor: int = 8
) -> int:
    """``spec.member_count`` rescaled to a ``pool_size``-network world.

    The catalog's absolute counts describe a :data:`REFERENCE_POOL_SIZE`
    pool; the mega tier keeps each IXP's *share* of the pool constant as
    the world grows to 10⁵–10⁶ networks, so AMS-IX stays ~11% of the
    population rather than freezing at 2013's absolute membership.
    ``floor`` keeps the smallest exchanges statistically meaningful.
    """
    if pool_size <= 0:
        raise ConfigurationError("pool_size must be positive")
    scaled = round(spec.member_count * pool_size / REFERENCE_POOL_SIZE)
    return max(floor, scaled)


def euroix_catalog() -> tuple[EuroIXSpec, ...]:
    """The 65-IXP reachable set: 22 studied + named extras + synthetic fill."""
    specs: list[EuroIXSpec] = []
    for spec in paper_catalog():
        region = _REGION_OF_COUNTRY.get(spec.country)
        if region is None:
            raise ConfigurationError(
                f"no region mapping for country {spec.country!r}"
            )
        specs.append(
            EuroIXSpec(
                acronym=spec.acronym,
                city_name=spec.city_name,
                country=spec.country,
                member_count=spec.member_count,
                region=region,
            )
        )
    specs.extend(_NAMED_EXTRAS)
    for acronym, city, country, count in _SYNTHETIC:
        region = _REGION_OF_COUNTRY.get(country)
        if region is None:
            raise ConfigurationError(f"no region mapping for {country!r}")
        specs.append(EuroIXSpec(acronym, city, country, count, region))
    if len(specs) != 65:  # 22 + 6 + 37 — keep the paper's count honest
        raise ConfigurationError(
            f"euroix catalog has {len(specs)} IXPs, expected 65"
        )
    return tuple(specs)
