"""95th-percentile transit billing (paper Section 2.1).

Transit is "metered at 5-minute intervals and billed on a monthly basis,
with the charge computed by multiplying a per-Mbps price and the 95th
percentile of the 5-minute traffic rates".  The offload study's punchline
— peaks of offload potential coincide with transit peaks — matters
precisely because of this billing scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.units import MBPS


def percentile_rate(series_bps: np.ndarray, percentile: float = 95.0) -> float:
    """The billing rate: the given percentile of 5-minute rates."""
    if series_bps.size == 0:
        raise AnalysisError("cannot bill an empty series")
    if np.any(series_bps < 0):
        raise AnalysisError("negative rates in billing series")
    return float(np.percentile(series_bps, percentile))


def percentile_bill(
    series_bps: np.ndarray,
    price_per_mbps: float,
    percentile: float = 95.0,
) -> float:
    """Monthly charge for a traffic series under percentile billing."""
    if price_per_mbps < 0:
        raise AnalysisError("price cannot be negative")
    return percentile_rate(series_bps, percentile) / MBPS * price_per_mbps


@dataclass(frozen=True, slots=True)
class BillingReport:
    """Before/after comparison of a transit bill under traffic offload."""

    before_rate_bps: float
    after_rate_bps: float
    price_per_mbps: float

    @property
    def before_bill(self) -> float:
        """Monthly bill without offload."""
        return self.before_rate_bps / MBPS * self.price_per_mbps

    @property
    def after_bill(self) -> float:
        """Monthly bill with the offloaded traffic removed."""
        return self.after_rate_bps / MBPS * self.price_per_mbps

    @property
    def savings_fraction(self) -> float:
        """Relative reduction of the transit bill.

        A zero baseline (an all-quiet traffic series — possible for a
        sparsely-drawn ensemble world) yields 0.0 rather than an error:
        there was no bill, so nothing was saved, and one silent seed must
        not abort a whole ensemble trial.
        """
        if self.before_bill == 0:
            return 0.0
        return 1.0 - self.after_bill / self.before_bill


def offload_billing_report(
    transit_series_bps: np.ndarray,
    offload_series_bps: np.ndarray,
    price_per_mbps: float = 1.0,
    percentile: float = 95.0,
) -> BillingReport:
    """Billing impact of shifting ``offload_series`` off the transit link."""
    if transit_series_bps.shape != offload_series_bps.shape:
        raise AnalysisError("series must align bin-for-bin")
    remaining = transit_series_bps - offload_series_bps
    if np.any(remaining < -1e-6):
        raise AnalysisError("offload exceeds transit traffic in some bins")
    remaining = np.clip(remaining, 0.0, None)
    return BillingReport(
        before_rate_bps=percentile_rate(transit_series_bps, percentile),
        after_rate_bps=percentile_rate(remaining, percentile),
        price_per_mbps=price_per_mbps,
    )


@dataclass(frozen=True, slots=True)
class FailoverBillingReport:
    """Percentile billing of offload savings eroded by failover bursts.

    ``ideal`` is the after-offload rate a fault-free month would bill;
    ``realized`` re-adds the traffic that returned to transit while
    pseudowires were dark.  The 95th-percentile rule is exactly what makes
    short bursts expensive: a few dark 5-minute bins can move the billed
    percentile even when the average barely shifts (Section 5's risk).
    """

    before_rate_bps: float
    ideal_after_rate_bps: float
    realized_after_rate_bps: float
    price_per_mbps: float

    @property
    def before_bill(self) -> float:
        return self.before_rate_bps / MBPS * self.price_per_mbps

    @property
    def ideal_after_bill(self) -> float:
        return self.ideal_after_rate_bps / MBPS * self.price_per_mbps

    @property
    def realized_after_bill(self) -> float:
        return self.realized_after_rate_bps / MBPS * self.price_per_mbps

    @property
    def ideal_savings_fraction(self) -> float:
        """Savings a fault-free month would deliver (zero-baseline -> 0)."""
        if self.before_bill == 0:
            return 0.0
        return 1.0 - self.ideal_after_bill / self.before_bill

    @property
    def realized_savings_fraction(self) -> float:
        """Savings actually billed after failover bursts (zero-baseline -> 0)."""
        if self.before_bill == 0:
            return 0.0
        return 1.0 - self.realized_after_bill / self.before_bill

    @property
    def burst_penalty(self) -> float:
        """Extra monthly charge the failover bursts caused."""
        return self.realized_after_bill - self.ideal_after_bill

    @property
    def penalty_fraction(self) -> float:
        """Burst penalty as a fraction of the fault-free bill."""
        if self.before_bill == 0:
            return 0.0
        return self.burst_penalty / self.before_bill


def failover_billing_report(
    transit_series_bps: np.ndarray,
    offload_series_bps: np.ndarray,
    fallback_series_bps: np.ndarray,
    price_per_mbps: float = 1.0,
    percentile: float = 95.0,
) -> FailoverBillingReport:
    """Billing impact of offload whose circuits intermittently fail over.

    ``fallback_series`` is the slice of the offloaded traffic that fell
    back to transit (per 5-minute bin); it can never exceed what was
    offloaded in that bin.
    """
    if not (
        transit_series_bps.shape
        == offload_series_bps.shape
        == fallback_series_bps.shape
    ):
        raise AnalysisError("series must align bin-for-bin")
    if np.any(fallback_series_bps < -1e-6):
        raise AnalysisError("negative fallback traffic")
    if np.any(fallback_series_bps > offload_series_bps + 1e-6):
        raise AnalysisError("fallback exceeds offloaded traffic in some bins")
    ideal = transit_series_bps - offload_series_bps
    if np.any(ideal < -1e-6):
        raise AnalysisError("offload exceeds transit traffic in some bins")
    ideal = np.clip(ideal, 0.0, None)
    realized = np.clip(
        transit_series_bps - offload_series_bps + fallback_series_bps,
        0.0, None,
    )
    return FailoverBillingReport(
        before_rate_bps=percentile_rate(transit_series_bps, percentile),
        ideal_after_rate_bps=percentile_rate(ideal, percentile),
        realized_after_rate_bps=percentile_rate(realized, percentile),
        price_per_mbps=price_per_mbps,
    )
