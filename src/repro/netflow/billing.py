"""95th-percentile transit billing (paper Section 2.1).

Transit is "metered at 5-minute intervals and billed on a monthly basis,
with the charge computed by multiplying a per-Mbps price and the 95th
percentile of the 5-minute traffic rates".  The offload study's punchline
— peaks of offload potential coincide with transit peaks — matters
precisely because of this billing scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.units import MBPS


def percentile_rate(series_bps: np.ndarray, percentile: float = 95.0) -> float:
    """The billing rate: the given percentile of 5-minute rates."""
    if series_bps.size == 0:
        raise AnalysisError("cannot bill an empty series")
    if np.any(series_bps < 0):
        raise AnalysisError("negative rates in billing series")
    return float(np.percentile(series_bps, percentile))


def percentile_bill(
    series_bps: np.ndarray,
    price_per_mbps: float,
    percentile: float = 95.0,
) -> float:
    """Monthly charge for a traffic series under percentile billing."""
    if price_per_mbps < 0:
        raise AnalysisError("price cannot be negative")
    return percentile_rate(series_bps, percentile) / MBPS * price_per_mbps


@dataclass(frozen=True, slots=True)
class BillingReport:
    """Before/after comparison of a transit bill under traffic offload."""

    before_rate_bps: float
    after_rate_bps: float
    price_per_mbps: float

    @property
    def before_bill(self) -> float:
        """Monthly bill without offload."""
        return self.before_rate_bps / MBPS * self.price_per_mbps

    @property
    def after_bill(self) -> float:
        """Monthly bill with the offloaded traffic removed."""
        return self.after_rate_bps / MBPS * self.price_per_mbps

    @property
    def savings_fraction(self) -> float:
        """Relative reduction of the transit bill.

        A zero baseline (an all-quiet traffic series — possible for a
        sparsely-drawn ensemble world) yields 0.0 rather than an error:
        there was no bill, so nothing was saved, and one silent seed must
        not abort a whole ensemble trial.
        """
        if self.before_bill == 0:
            return 0.0
        return 1.0 - self.after_bill / self.before_bill


def offload_billing_report(
    transit_series_bps: np.ndarray,
    offload_series_bps: np.ndarray,
    price_per_mbps: float = 1.0,
    percentile: float = 95.0,
) -> BillingReport:
    """Billing impact of shifting ``offload_series`` off the transit link."""
    if transit_series_bps.shape != offload_series_bps.shape:
        raise AnalysisError("series must align bin-for-bin")
    remaining = transit_series_bps - offload_series_bps
    if np.any(remaining < -1e-6):
        raise AnalysisError("offload exceeds transit traffic in some bins")
    remaining = np.clip(remaining, 0.0, None)
    return BillingReport(
        before_rate_bps=percentile_rate(transit_series_bps, percentile),
        after_rate_bps=percentile_rate(remaining, percentile),
        price_per_mbps=price_per_mbps,
    )
