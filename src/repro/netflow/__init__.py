"""NetFlow-style traffic substrate (paper Section 4.1).

The offload study consumes one month of 5-minute traffic data collected at
the studied network's border routers.  This package provides the flow
records, the per-network rate generator calibrated to Figure 5a's
double-Pareto rank profile, the diurnal/weekly time-series profiles of
Figure 5b, and the 95th-percentile billing arithmetic of Section 2.1.
"""

from repro.netflow.flow import FlowRecord
from repro.netflow.collector import FlowCollector
from repro.netflow.traffic import TrafficMatrix, TrafficMatrixConfig, generate_traffic
from repro.netflow.timeseries import DiurnalProfile, month_of_bins
from repro.netflow.billing import percentile_bill, BillingReport

__all__ = [
    "FlowRecord",
    "FlowCollector",
    "TrafficMatrix",
    "TrafficMatrixConfig",
    "generate_traffic",
    "DiurnalProfile",
    "month_of_bins",
    "percentile_bill",
    "BillingReport",
]
