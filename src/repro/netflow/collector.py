"""NetFlow collection at the studied network's border routers.

The paper "used NetFlow to collect one month of traffic data at the
5-minute granularity in the ASBRs of RedIRIS" and joined it with BGP
tables to label each flow with its AS path.  :class:`FlowCollector`
synthesises exactly that joined dataset from a traffic matrix, a routing
table, and time-series profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.table import RoutingTable
from repro.errors import AnalysisError
from repro.netflow.flow import FlowRecord
from repro.netflow.timeseries import DiurnalProfile, month_of_bins
from repro.netflow.traffic import TrafficMatrix
from repro.types import ASN, TrafficDirection


@dataclass
class FlowCollector:
    """Produces flow records and aggregate series for the studied network.

    ``table`` may be None for collectors built by the trial-batch world
    views, which never materialize a routing table: the aggregate-series
    arithmetic (what the economics study consumes) only needs the traffic
    matrix, while per-flow records require the BGP join and raise without
    a table.
    """

    table: RoutingTable | None
    matrix: TrafficMatrix
    counterparties: list[ASN]
    days: int = 28

    def __post_init__(self) -> None:
        if len(self.counterparties) != self.matrix.count:
            raise AnalysisError(
                "counterparty list must align with the traffic matrix"
            )

    def flow_records(
        self, bin_index: int, top_n: int | None = None
    ) -> list[FlowRecord]:
        """Flow records for one 5-minute bin (optionally only top talkers).

        Rates in a single bin equal the network's average rate — the
        aggregate time variation is applied at series level, which is what
        the offload arithmetic consumes.  Emitting all ~30k counterparties
        per bin is possible but rarely useful; ``top_n`` keeps it sane.
        """
        if self.table is None:
            raise AnalysisError(
                "flow records need a routing table for the BGP join; this "
                "collector was built without one (trial-batch world view)"
            )
        order = np.argsort(self.matrix.total_bps)[::-1]
        if top_n is not None:
            order = order[:top_n]
        records: list[FlowRecord] = []
        for idx in order:
            counterparty = self.counterparties[int(idx)]
            entry = self.table.lookup(counterparty)
            for direction, rate in (
                (TrafficDirection.INBOUND, float(self.matrix.inbound_bps[idx])),
                (TrafficDirection.OUTBOUND, float(self.matrix.outbound_bps[idx])),
            ):
                if rate <= 0:
                    continue
                records.append(
                    FlowRecord(
                        bin_index=bin_index,
                        counterparty=counterparty,
                        direction=direction,
                        rate_bps=rate,
                        border_next_hop=entry.next_hop,
                    )
                )
        return records

    def aggregate_series(
        self,
        direction: TrafficDirection,
        mask: np.ndarray | None = None,
        profile: DiurnalProfile | None = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Aggregate 5-minute series for a subset of counterparties.

        ``mask`` selects the networks to sum (None = all).  The aggregate
        average is modulated by the diurnal/weekly profile, matching how
        Figure 5b plots transit vs offload-potential series.
        """
        rates = (
            self.matrix.inbound_bps
            if direction is TrafficDirection.INBOUND
            else self.matrix.outbound_bps
        )
        if mask is not None:
            if mask.shape != rates.shape:
                raise AnalysisError("mask must align with the traffic matrix")
            rates = rates[mask]
        average = float(rates.sum())
        profile = profile or DiurnalProfile()
        return average * profile.series(self.days, seed=seed)

    def bins(self) -> int:
        """Number of 5-minute bins in the collection window."""
        return month_of_bins(self.days)
