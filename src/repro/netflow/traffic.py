"""Per-network transit-traffic rates calibrated to Figure 5a.

The RedIRIS dataset ranks 29,570 networks by their average contribution to
the transit-provider traffic; contributions span ~1 Gbps down to a few bps
with a visible bend toward faster decline near rank 20,000.  The
generator reproduces exactly that rank profile (double-Pareto with a bend)
and splits each network's traffic into inbound and outbound by business
type: content networks are origin-heavy (traffic flows *into* RedIRIS),
access networks are destination-heavy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rand import double_pareto_rates, make_rng
from repro.types import NetworkKind
from repro.units import GBPS

#: Fraction of a network's RedIRIS traffic that is inbound (origin side),
#: by business type.
_INBOUND_SHARE = {
    NetworkKind.CONTENT: 0.85,
    NetworkKind.CDN: 0.85,
    NetworkKind.HOSTING: 0.70,
    NetworkKind.TRANSIT: 0.60,
    NetworkKind.NREN: 0.55,
    NetworkKind.ENTERPRISE: 0.55,
    NetworkKind.ACCESS: 0.30,
    NetworkKind.TIER1: 0.60,
}


@dataclass(frozen=True, slots=True)
class TrafficMatrixConfig:
    """Calibration for the per-network rate generator."""

    seed: int = 0
    inbound_total_bps: float = 5.6 * GBPS
    outbound_total_bps: float = 2.7 * GBPS
    bend_rank: int = 20_000
    head_exponent: float = 1.08
    tail_exponent: float = 2.8
    noise_sigma: float = 0.30

    def __post_init__(self) -> None:
        if self.inbound_total_bps <= 0 or self.outbound_total_bps <= 0:
            raise ConfigurationError("traffic totals must be positive")
        if self.bend_rank <= 0:
            raise ConfigurationError("bend rank must be positive")


@dataclass(slots=True)
class TrafficMatrix:
    """Average inbound/outbound rates for every contributing network.

    Arrays are aligned: index ``i`` is the ``i``-th contributing network in
    the owner world's contributing list.
    """

    inbound_bps: np.ndarray
    outbound_bps: np.ndarray

    def __post_init__(self) -> None:
        if self.inbound_bps.shape != self.outbound_bps.shape:
            raise ConfigurationError("inbound/outbound arrays must align")
        if np.any(self.inbound_bps < 0) or np.any(self.outbound_bps < 0):
            raise ConfigurationError("rates cannot be negative")

    @property
    def count(self) -> int:
        """Number of contributing networks."""
        return int(self.inbound_bps.shape[0])

    @property
    def total_bps(self) -> np.ndarray:
        """Combined per-network rate (inbound + outbound)."""
        return self.inbound_bps + self.outbound_bps

    def ranked(self, direction: str) -> np.ndarray:
        """Rates sorted descending — Figure 5a's rank-ordered series."""
        if direction == "inbound":
            values = self.inbound_bps
        elif direction == "outbound":
            values = self.outbound_bps
        else:
            raise ConfigurationError(f"unknown direction {direction!r}")
        return np.sort(values)[::-1]


def rank_profile_totals(
    count: int, config: TrafficMatrixConfig, rng: np.random.Generator
) -> np.ndarray:
    """Rank-ordered per-network totals (largest first), unnormalised."""
    if count <= 0:
        raise ConfigurationError("need at least one contributing network")
    return double_pareto_rates(
        count=count,
        rng=rng,
        top_rate=1.0,
        bend_rank=min(config.bend_rank, count),
        head_exponent=config.head_exponent,
        tail_exponent=config.tail_exponent,
        noise_sigma=config.noise_sigma,
    )


def split_totals_by_kind(
    totals: np.ndarray,
    kinds: list[NetworkKind] | None,
    config: TrafficMatrixConfig,
    rng: np.random.Generator,
    base_share: np.ndarray | None = None,
) -> TrafficMatrix:
    """Split per-network totals into in/out by business type and normalise.

    Content networks originate (inbound to the studied NREN), access
    networks sink (outbound); totals are scaled so each direction matches
    the configured aggregate exactly.

    Callers that already hold the per-network inbound shares as an array
    (the trial-batch world builder assembles them by kind *code*, skipping
    ~30k enum-keyed lookups) pass ``base_share`` instead of ``kinds``; the
    values must equal the ``_INBOUND_SHARE`` gather bit-for-bit, which a
    table built from the same dict guarantees.
    """
    if totals.ndim != 1:
        raise ConfigurationError("totals must be one-dimensional")
    count = int(totals.shape[0])
    if base_share is None:
        if kinds is None or len(kinds) != count:
            raise ConfigurationError("totals must align with kinds")
        base_share = np.array(
            [_INBOUND_SHARE[kind] for kind in kinds], dtype=float
        )
    elif base_share.shape != totals.shape:
        raise ConfigurationError("totals must align with base_share")
    share = np.clip(base_share + rng.normal(0.0, 0.08, size=count), 0.05, 0.95)
    inbound = totals * share
    outbound = totals * (1.0 - share)
    inbound *= config.inbound_total_bps / inbound.sum()
    outbound *= config.outbound_total_bps / outbound.sum()
    return TrafficMatrix(inbound_bps=inbound, outbound_bps=outbound)


def generate_traffic(
    kinds: list[NetworkKind], config: TrafficMatrixConfig | None = None
) -> TrafficMatrix:
    """Generate the traffic matrix for networks of the given kinds.

    ``kinds[i]`` is the business type of contributing network ``i``; it
    decides the in/out split.  Totals are normalised exactly to the
    configured aggregates, so campaign-level percentages are stable across
    seeds.
    """
    config = config or TrafficMatrixConfig()
    rng = make_rng(config.seed)
    totals = rank_profile_totals(len(kinds), config, rng)
    # Rates are generated by rank; shuffle assignment so network index
    # carries no rank information.
    totals = totals[rng.permutation(len(kinds))]
    return split_totals_by_kind(totals, kinds, config, rng)
