"""Flow records as exported by border routers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.types import ASN, TrafficDirection


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One aggregated 5-minute flow record at an ASBR.

    ``counterparty`` is the far-end network (origin of inbound traffic or
    destination of outbound traffic); ``border_next_hop`` is the neighbour
    AS the traffic crossed the border through (a transit provider, peer, or
    GÉANT-like club).
    """

    bin_index: int
    counterparty: ASN
    direction: TrafficDirection
    rate_bps: float
    border_next_hop: ASN

    def __post_init__(self) -> None:
        if self.bin_index < 0:
            raise ConfigurationError("bin index cannot be negative")
        if self.rate_bps < 0:
            raise ConfigurationError("flow rate cannot be negative")
