"""Diurnal/weekly traffic profiles for the month-long time series.

Figure 5b shows RedIRIS transit traffic over ~8,000 five-minute bins with
pronounced daily cycles, a weekly dip, and offload-potential peaks that
coincide with transit peaks.  :class:`DiurnalProfile` generates a
normalised (mean 1.0) profile with exactly that structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rand import make_rng
from repro.units import DAY, FIVE_MINUTES


def month_of_bins(days: int = 28) -> int:
    """Number of 5-minute bins in ``days`` days (paper: one month)."""
    if days <= 0:
        raise ConfigurationError("days must be positive")
    return int(days * DAY / FIVE_MINUTES)


@dataclass(frozen=True, slots=True)
class DiurnalProfile:
    """A normalised day/week activity shape.

    Parameters
    ----------
    peak_hour:
        Local hour of the daily maximum (research traffic peaks mid-day;
        residential content peaks in the evening).
    day_night_swing:
        Peak-to-trough amplitude of the daily cycle, as a fraction of the
        mean (0.6 means the peak sits ~60% above the trough midpoint).
    weekend_dip:
        Multiplicative attenuation on Saturdays/Sundays (NREN traffic drops
        hard on weekends).
    noise_sigma:
        Log-normal per-bin measurement noise.
    """

    peak_hour: float = 13.0
    day_night_swing: float = 0.6
    weekend_dip: float = 0.55
    noise_sigma: float = 0.06

    def __post_init__(self) -> None:
        if not 0 <= self.peak_hour < 24:
            raise ConfigurationError("peak_hour must be in [0, 24)")
        if not 0 <= self.day_night_swing < 2:
            raise ConfigurationError("swing must be in [0, 2)")
        if not 0 < self.weekend_dip <= 1:
            raise ConfigurationError("weekend_dip must be in (0, 1]")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma cannot be negative")

    def series(self, days: int, seed: int | None = 0) -> np.ndarray:
        """A mean-1.0 profile over ``days`` days of 5-minute bins."""
        bins = month_of_bins(days)
        t = np.arange(bins) * FIVE_MINUTES
        hour = (t % DAY) / 3600.0
        daily = 1.0 + 0.5 * self.day_night_swing * np.cos(
            (hour - self.peak_hour) / 24.0 * 2.0 * np.pi
        )
        day_index = (t // DAY).astype(int)
        weekday = day_index % 7
        weekly = np.where(weekday >= 5, self.weekend_dip, 1.0)
        shape = daily * weekly
        if self.noise_sigma > 0:
            rng = make_rng(seed)
            shape = shape * rng.lognormal(0.0, self.noise_sigma, size=bins)
        return shape / shape.mean()
