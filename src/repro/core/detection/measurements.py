"""Raw measurement containers produced by the probing campaign.

A measurement's per-operator reply set is stored either as a list of
:class:`EchoReply` objects (the scalar reference path and hand-crafted
tests) or as a struct-of-arrays :class:`ReplyBatch` (the vectorized batch
engine).  The accessors below normalize both representations, so the
filter pipeline reads RTT/TTL statistics without caring which engine
collected the evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.addr import IPv4Address
from repro.net.icmp import EchoReply, ReplyBatch
from repro.types import ASN

def _rtt_array(replies: list[EchoReply] | ReplyBatch) -> np.ndarray:
    if isinstance(replies, ReplyBatch):
        return replies.rtt_ms
    return np.fromiter((r.rtt_ms for r in replies), dtype=float, count=len(replies))


def _ttl_array(replies: list[EchoReply] | ReplyBatch) -> np.ndarray:
    if isinstance(replies, ReplyBatch):
        return replies.ttl
    return np.fromiter((r.ttl for r in replies), dtype=np.int64, count=len(replies))


@dataclass(slots=True)
class InterfaceMeasurement:
    """Everything the campaign collected about one candidate interface."""

    ixp_acronym: str
    address: IPv4Address
    replies_by_operator: dict[str, list[EchoReply] | ReplyBatch] = field(
        default_factory=dict
    )
    asn_at_start: ASN | None = None
    asn_at_end: ASN | None = None
    identification_source: str | None = None

    def add_batch(self, operator: str, batch: ReplyBatch) -> None:
        """Attach one sweep's replies from ``operator`` (concatenating)."""
        existing = self.replies_by_operator.get(operator)
        if existing is None:
            self.replies_by_operator[operator] = batch
        elif isinstance(existing, ReplyBatch):
            self.replies_by_operator[operator] = existing.concat(batch)
        else:
            existing.extend(batch.to_replies(str(self.address)))

    def with_replies(
        self, replies_by_operator: dict[str, list[EchoReply] | ReplyBatch]
    ) -> "InterfaceMeasurement":
        """A sibling measurement holding different evidence (same identity).

        Used by non-mutating filter stages that trim reply sets: the
        original measurement keeps its raw evidence untouched.
        """
        return InterfaceMeasurement(
            ixp_acronym=self.ixp_acronym,
            address=self.address,
            replies_by_operator=replies_by_operator,
            asn_at_start=self.asn_at_start,
            asn_at_end=self.asn_at_end,
            identification_source=self.identification_source,
        )

    def all_replies(self) -> list[EchoReply]:
        """Replies across all LG operators, in probe order (materialized)."""
        merged: list[EchoReply] = []
        for operator in sorted(self.replies_by_operator):
            replies = self.replies_by_operator[operator]
            if isinstance(replies, ReplyBatch):
                merged.extend(replies.to_replies(str(self.address)))
            else:
                merged.extend(replies)
        return merged

    def reply_count(self, operator: str | None = None) -> int:
        """Total replies (optionally for one operator)."""
        if operator is not None:
            return len(self.replies_by_operator.get(operator, ()))
        return sum(len(v) for v in self.replies_by_operator.values())

    def operators(self) -> list[str]:
        """LG operators that probed this interface, sorted."""
        return sorted(self.replies_by_operator)

    def rtts(self, operator: str | None = None) -> np.ndarray:
        """Observed RTTs as an array (optionally for one operator)."""
        if operator is not None:
            replies = self.replies_by_operator.get(operator)
            if replies is None:
                return np.zeros(0)
            return _rtt_array(replies)
        arrays = [
            _rtt_array(self.replies_by_operator[op])
            for op in sorted(self.replies_by_operator)
        ]
        if not arrays:
            return np.zeros(0)
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def ttls(self, operator: str | None = None) -> np.ndarray:
        """Received TTLs as an array (optionally for one operator)."""
        if operator is not None:
            replies = self.replies_by_operator.get(operator)
            if replies is None:
                return np.zeros(0, dtype=np.int64)
            return _ttl_array(replies)
        arrays = [
            _ttl_array(self.replies_by_operator[op])
            for op in sorted(self.replies_by_operator)
        ]
        if not arrays:
            return np.zeros(0, dtype=np.int64)
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def min_rtt_ms(self, operator: str | None = None) -> float | None:
        """Minimum observed RTT (optionally per operator); None if no replies."""
        rtts = self.rtts(operator)
        if rtts.size == 0:
            return None
        return float(rtts.min())

    def distinct_ttls(self) -> set[int]:
        """The set of TTL values seen across all replies."""
        return {int(t) for t in np.unique(self.ttls())}
