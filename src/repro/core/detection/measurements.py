"""Raw measurement containers produced by the probing campaign."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IPv4Address
from repro.net.icmp import EchoReply
from repro.types import ASN


@dataclass(slots=True)
class InterfaceMeasurement:
    """Everything the campaign collected about one candidate interface."""

    ixp_acronym: str
    address: IPv4Address
    replies_by_operator: dict[str, list[EchoReply]] = field(default_factory=dict)
    asn_at_start: ASN | None = None
    asn_at_end: ASN | None = None
    identification_source: str | None = None

    def all_replies(self) -> list[EchoReply]:
        """Replies across all LG operators, in probe order."""
        merged: list[EchoReply] = []
        for operator in sorted(self.replies_by_operator):
            merged.extend(self.replies_by_operator[operator])
        return merged

    def reply_count(self, operator: str | None = None) -> int:
        """Total replies (optionally for one operator)."""
        if operator is not None:
            return len(self.replies_by_operator.get(operator, []))
        return sum(len(v) for v in self.replies_by_operator.values())

    def operators(self) -> list[str]:
        """LG operators that probed this interface, sorted."""
        return sorted(self.replies_by_operator)

    def min_rtt_ms(self, operator: str | None = None) -> float | None:
        """Minimum observed RTT (optionally per operator); None if no replies."""
        if operator is not None:
            replies = self.replies_by_operator.get(operator, [])
        else:
            replies = self.all_replies()
        if not replies:
            return None
        return min(r.rtt_ms for r in replies)

    def distinct_ttls(self) -> set[int]:
        """The set of TTL values seen across all replies."""
        return {r.ttl for r in self.all_replies()}
