"""Ping-based detection of remote peering at IXPs (paper Section 3).

Pipeline: :class:`ProbeCampaign` drives looking glasses over the four-month
window and yields raw per-interface measurements; the
:class:`FilterPipeline` applies the paper's six conservative filters in
order; :mod:`repro.core.detection.classify` turns surviving minimum RTTs
into remote/direct calls and distance bands; :class:`CampaignResult`
aggregates everything Figures 2–4 need; validation compares detector output
against ground truth the way Section 3.3 used TorIX.
"""

from repro.core.detection.campaign import CampaignConfig, ProbeCampaign
from repro.core.detection.measurements import InterfaceMeasurement
from repro.core.detection.filters import (
    FilterConfig,
    FilterPipeline,
    FILTER_ORDER,
)
from repro.core.detection.classify import (
    REMOTENESS_THRESHOLD_MS,
    RTT_BANDS,
    band_label,
    is_remote,
)
from repro.core.detection.results import AnalyzedInterface, CampaignResult
from repro.core.detection.validation import (
    GroundTruthReport,
    validate_against_truth,
    route_server_cross_check,
)
from repro.core.detection.sweep import (
    FilterDropPoint,
    ThresholdPoint,
    filter_drop_sweep,
    threshold_sweep,
)

__all__ = [
    "CampaignConfig",
    "ProbeCampaign",
    "InterfaceMeasurement",
    "FilterConfig",
    "FilterPipeline",
    "FILTER_ORDER",
    "REMOTENESS_THRESHOLD_MS",
    "RTT_BANDS",
    "band_label",
    "is_remote",
    "AnalyzedInterface",
    "CampaignResult",
    "GroundTruthReport",
    "validate_against_truth",
    "route_server_cross_check",
    "FilterDropPoint",
    "ThresholdPoint",
    "filter_drop_sweep",
    "threshold_sweep",
]
