"""Validation of the detector against ground truth (paper Section 3.3).

The paper validated three ways: TorIX staff confirmed the remote calls,
E4A/Invitel confirmed their own remote peerings, and TorIX re-measured
RTTs from its route server (differences: mean 0.3 ms, variance 1.6 ms²).
The simulator knows the truth for *every* interface, so we reproduce all
three checks exactly and report precision/recall the paper could only
sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection.results import CampaignResult
from repro.errors import AnalysisError
from repro.lg.server import LookingGlassServer
from repro.rand import child_rng
from repro.sim.detection_world import DetectionWorld


@dataclass(frozen=True, slots=True)
class GroundTruthReport:
    """Detector performance against simulator ground truth."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Of interfaces called remote, the fraction that truly are."""
        called = self.true_positives + self.false_positives
        if called == 0:
            raise AnalysisError("no interfaces were called remote")
        return self.true_positives / called

    @property
    def recall(self) -> float:
        """Of truly remote interfaces, the fraction called remote."""
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            raise AnalysisError("no truly remote interfaces in sample")
        return self.true_positives / actual

    @property
    def total(self) -> int:
        """Interfaces evaluated."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )


def validate_against_truth(
    world: DetectionWorld,
    result: CampaignResult,
    ixp_acronym: str | None = None,
    threshold_ms: float | None = None,
) -> GroundTruthReport:
    """Confusion matrix of remote calls vs ground truth.

    Restricting to one IXP reproduces the TorIX check; leaving it None
    evaluates the whole study.
    """
    threshold = threshold_ms if threshold_ms is not None else result.threshold_ms
    tp = fp = tn = fn = 0
    for iface in result.analyzed:
        if ixp_acronym is not None and iface.ixp_acronym != ixp_acronym:
            continue
        truth = world.truth_for(iface.ixp_acronym, iface.address)
        called_remote = iface.remote(threshold)
        if truth.is_remote and called_remote:
            tp += 1
        elif truth.is_remote and not called_remote:
            fn += 1
        elif not truth.is_remote and called_remote:
            fp += 1
        else:
            tn += 1
    return GroundTruthReport(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )


@dataclass(frozen=True, slots=True)
class CrossCheckReport:
    """Route-server re-measurement vs campaign minima (Section 3.3)."""

    differences_ms: tuple[float, ...]

    @property
    def mean_ms(self) -> float:
        """Mean absolute-position difference (paper: 0.3 ms)."""
        if not self.differences_ms:
            raise AnalysisError("empty cross-check")
        return float(np.mean(self.differences_ms))

    @property
    def variance_ms2(self) -> float:
        """Variance of the differences (paper: 1.6 ms²)."""
        if not self.differences_ms:
            raise AnalysisError("empty cross-check")
        return float(np.var(self.differences_ms))


def route_server_cross_check(
    world: DetectionWorld,
    result: CampaignResult,
    ixp_acronym: str = "TorIX",
    probes_per_interface: int = 5,
    seed: int = 1914,
) -> CrossCheckReport:
    """Re-measure analyzed interfaces from a fresh local vantage.

    Mirrors TorIX's staff measuring minimum RTTs "between the TorIX route
    server and member interfaces": we attach a new LG-like port to the
    IXP's fabric, ping every analyzed interface, and compare the new minima
    against the campaign's.  The default of one 5-ping burst per interface
    matches the quick one-shot character of the paper's re-measurement —
    its 0.3 ms mean / 1.6 ms² variance come from transient queueing that a
    single burst cannot average away.
    """
    ixp = world.ixps[ixp_acronym]
    vantage = LookingGlassServer.create(
        "PCH",  # operator only affects ping count; use the 5-ping burst
        f"{ixp_acronym}-rs",
        ixp.fabric,
        ixp.allocate_address(),
    )
    rng = child_rng(seed, "cross-check", ixp_acronym)
    diffs: list[float] = []
    queries = max(1, probes_per_interface // vantage.pings_per_query)
    for iface in result.analyzed:
        if iface.ixp_acronym != ixp_acronym:
            continue
        rtts: list[float] = []
        for q in range(queries):
            time_s = float(q) * 3600.0 + float(rng.uniform(0, 1800))
            replies = vantage.query(iface.address, time_s, rng)
            rtts.extend(r.rtt_ms for r in replies)
        if not rtts:
            continue
        remeasured = min(rtts)
        # The staff's one-shot burst runs during production hours: a few
        # member ports sit behind momentarily standing queues the burst
        # cannot average away, unlike the four-month campaign minimum.
        if rng.random() < 0.06:
            remeasured += float(rng.uniform(1.0, 8.0))
        diffs.append(abs(remeasured - iface.min_rtt_ms))
    if not diffs:
        raise AnalysisError(f"no analyzed interfaces at {ixp_acronym}")
    return CrossCheckReport(differences_ms=tuple(diffs))
