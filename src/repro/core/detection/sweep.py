"""Sensitivity sweeps over the detector's design choices.

Formalizes the ablations DESIGN.md calls out as library API: the
remoteness-threshold sweep (the paper justifies 10 ms qualitatively; here
the precision/recall trade-off is measured) and the drop-one-filter sweep
(what each of the six filters buys).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detection.filters import (
    FILTER_ORDER,
    FilterConfig,
    FilterPipeline,
    FilterReport,
)
from repro.core.detection.measurements import InterfaceMeasurement
from repro.core.detection.results import CampaignResult, build_result
from repro.core.detection.validation import (
    GroundTruthReport,
    validate_against_truth,
)
from repro.errors import ConfigurationError
from repro.sim.detection_world import DetectionWorld


@dataclass(frozen=True, slots=True)
class ThresholdPoint:
    """Detector quality at one remoteness threshold."""

    threshold_ms: float
    remote_calls: int
    report: GroundTruthReport

    @property
    def precision(self) -> float:
        """Precision at this threshold."""
        return self.report.precision

    @property
    def recall(self) -> float:
        """Recall at this threshold."""
        return self.report.recall


def threshold_sweep(
    world: DetectionWorld,
    result: CampaignResult,
    thresholds: tuple[float, ...] = (2.5, 5.0, 7.5, 10.0, 15.0, 20.0),
) -> list[ThresholdPoint]:
    """Evaluate remote/direct classification across thresholds.

    Uses the already-filtered result (filters are threshold-independent),
    so the sweep is cheap: one confusion matrix per point.
    """
    if not thresholds:
        raise ConfigurationError("need at least one threshold")
    points = []
    for threshold in sorted(thresholds):
        if threshold <= 0:
            raise ConfigurationError("thresholds must be positive")
        report = validate_against_truth(world, result, threshold_ms=threshold)
        remote_calls = sum(
            1 for i in result.analyzed if i.remote(threshold)
        )
        points.append(
            ThresholdPoint(
                threshold_ms=threshold,
                remote_calls=remote_calls,
                report=report,
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class FilterDropPoint:
    """Pipeline behaviour with one filter removed."""

    dropped: str | None  # None = full pipeline
    analyzed_count: int
    report: GroundTruthReport


class _PartialPipeline(FilterPipeline):
    """A pipeline that skips one named stage."""

    def __init__(self, config: FilterConfig | None, dropped: str | None):
        super().__init__(config)
        if dropped is not None and dropped not in FILTER_ORDER:
            raise ConfigurationError(f"unknown filter {dropped!r}")
        self._dropped = dropped

    def run(self, measurements: list[InterfaceMeasurement]) -> FilterReport:
        stages = (
            ("sample-size", self.sample_size),
            ("ttl-switch", self.ttl_switch),
            ("ttl-match", self.ttl_match),
            ("rtt-consistent", self.rtt_consistent),
            ("lg-consistent", self.lg_consistent),
            ("asn-change", self.asn_change),
        )
        report = FilterReport()
        for measurement in measurements:
            key = (measurement.ixp_acronym, measurement.address.value)
            survivor: InterfaceMeasurement | None = measurement
            for name, stage in stages:
                if name == self._dropped:
                    continue
                survivor = stage(survivor)  # type: ignore[arg-type]
                if survivor is None:
                    report.discard_counts[name] += 1
                    report.discard_reason[key] = name
                    break
            if survivor is not None:
                report.passed.append(survivor)
        return report


def filter_drop_sweep(
    world: DetectionWorld,
    measurements: list[InterfaceMeasurement],
    threshold_ms: float = 10.0,
    config: FilterConfig | None = None,
) -> list[FilterDropPoint]:
    """Run the pipeline with each filter removed in turn.

    ``measurements`` must be raw (pre-filter); reply lists are copied per
    variant because the TTL-match stage trims in place.
    """
    points = []
    for dropped in (None, *FILTER_ORDER):
        fresh = _copy_measurements(measurements)
        pipeline = _PartialPipeline(config, dropped)
        report = pipeline.run(fresh)
        result = build_result(fresh, report, threshold_ms=threshold_ms)
        truth = validate_against_truth(world, result)
        points.append(
            FilterDropPoint(
                dropped=dropped,
                analyzed_count=result.analyzed_count(),
                report=truth,
            )
        )
    return points


def _copy_measurements(
    measurements: list[InterfaceMeasurement],
) -> list[InterfaceMeasurement]:
    copies = []
    for m in measurements:
        copy = InterfaceMeasurement(
            ixp_acronym=m.ixp_acronym,
            address=m.address,
            replies_by_operator={
                op: list(replies) for op, replies in m.replies_by_operator.items()
            },
            asn_at_start=m.asn_at_start,
            asn_at_end=m.asn_at_end,
            identification_source=m.identification_source,
        )
        copies.append(copy)
    return copies
