"""Sensitivity sweeps over the detector's design choices.

Formalizes the ablations DESIGN.md calls out as library API: the
remoteness-threshold sweep (the paper justifies 10 ms qualitatively; here
the precision/recall trade-off is measured) and the drop-one-filter sweep
(what each of the six filters buys).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detection.filters import (
    FILTER_ORDER,
    FilterConfig,
    FilterPipeline,
)
from repro.core.detection.measurements import InterfaceMeasurement
from repro.core.detection.results import CampaignResult, build_result
from repro.core.detection.validation import (
    GroundTruthReport,
    validate_against_truth,
)
from repro.errors import ConfigurationError
from repro.sim.detection_world import DetectionWorld


@dataclass(frozen=True, slots=True)
class ThresholdPoint:
    """Detector quality at one remoteness threshold."""

    threshold_ms: float
    remote_calls: int
    report: GroundTruthReport

    @property
    def precision(self) -> float:
        """Precision at this threshold."""
        return self.report.precision

    @property
    def recall(self) -> float:
        """Recall at this threshold."""
        return self.report.recall


def threshold_sweep(
    world: DetectionWorld,
    result: CampaignResult,
    thresholds: tuple[float, ...] = (2.5, 5.0, 7.5, 10.0, 15.0, 20.0),
) -> list[ThresholdPoint]:
    """Evaluate remote/direct classification across thresholds.

    Uses the already-filtered result (filters are threshold-independent),
    so the sweep is cheap: one confusion matrix per point.
    """
    if not thresholds:
        raise ConfigurationError("need at least one threshold")
    points = []
    for threshold in sorted(thresholds):
        if threshold <= 0:
            raise ConfigurationError("thresholds must be positive")
        report = validate_against_truth(world, result, threshold_ms=threshold)
        remote_calls = sum(
            1 for i in result.analyzed if i.remote(threshold)
        )
        points.append(
            ThresholdPoint(
                threshold_ms=threshold,
                remote_calls=remote_calls,
                report=report,
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class FilterDropPoint:
    """Pipeline behaviour with one filter removed."""

    dropped: str | None  # None = full pipeline
    analyzed_count: int
    report: GroundTruthReport


def filter_drop_sweep(
    world: DetectionWorld,
    measurements: list[InterfaceMeasurement],
    threshold_ms: float = 10.0,
    config: FilterConfig | None = None,
) -> list[FilterDropPoint]:
    """Run the pipeline with each filter removed in turn.

    ``measurements`` must be raw (pre-filter).  Filter stages never mutate
    their input, so every variant re-reads the same raw measurements — no
    per-variant deep copies.
    """
    pipeline = FilterPipeline(config)
    points = []
    for dropped in (None, *FILTER_ORDER):
        report = pipeline.run(measurements, skip=dropped)
        result = build_result(measurements, report, threshold_ms=threshold_ms)
        truth = validate_against_truth(world, result)
        points.append(
            FilterDropPoint(
                dropped=dropped,
                analyzed_count=result.analyzed_count(),
                report=truth,
            )
        )
    return points
