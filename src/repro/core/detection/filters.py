"""The six conservative filters of Section 3.1, applied in the paper's order.

Order: sample-size, TTL-switch, TTL-match, RTT-consistent, LG-consistent,
ASN-change.  Each filter either passes an interface (possibly returning a
*new* measurement with a trimmed reply set — stages never mutate their
input) or discards it, and the pipeline records exactly one discard reason
per interface — mirroring how the paper reports the 20 / 82 / 20 / 100 /
28 / 5 counts.  Statistics are read off the measurements' RTT/TTL arrays,
so batch-collected (struct-of-arrays) and scalar (per-reply object)
evidence flow through the same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detection.measurements import InterfaceMeasurement
from repro.errors import ConfigurationError
from repro.net.device import TTL_LINUX, TTL_NETWORK_OS
from repro.net.icmp import EchoReply, ReplyBatch

#: Canonical filter order (Section 3.1, "Choice of IXPs" paragraph).
FILTER_ORDER = (
    "sample-size",
    "ttl-switch",
    "ttl-match",
    "rtt-consistent",
    "lg-consistent",
    "asn-change",
)


@dataclass(frozen=True, slots=True)
class FilterConfig:
    """Parameters of the filter pipeline, defaulting to the paper's values."""

    min_replies_per_lg: int = 8
    accepted_ttls: frozenset[int] = frozenset({TTL_LINUX, TTL_NETWORK_OS})
    consistency_abs_ms: float = 5.0
    consistency_frac: float = 0.10

    def __post_init__(self) -> None:
        if self.min_replies_per_lg <= 0:
            raise ConfigurationError("min_replies_per_lg must be positive")
        if self.consistency_abs_ms < 0 or self.consistency_frac < 0:
            raise ConfigurationError("consistency tolerances cannot be negative")
        if not self.accepted_ttls:
            raise ConfigurationError("need at least one accepted TTL")

    def envelope_ms(self, min_rtt_ms: float) -> float:
        """The consistency envelope above a minimum RTT: max(5 ms, 10%)."""
        return max(self.consistency_abs_ms, self.consistency_frac * min_rtt_ms)


@dataclass
class FilterReport:
    """Outcome of running the pipeline over a set of measurements."""

    passed: list[InterfaceMeasurement] = field(default_factory=list)
    discard_counts: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in FILTER_ORDER}
    )
    discard_reason: dict[tuple[str, int], str] = field(default_factory=dict)

    def total_discarded(self) -> int:
        """Interfaces removed by any filter."""
        return sum(self.discard_counts.values())


class FilterPipeline:
    """Applies the six filters in order, trimming or discarding interfaces.

    Stages are pure: they never modify the measurement they are given, so
    the same raw measurements can be re-filtered under many configurations
    (threshold/drop-one sweeps) without defensive copying.
    """

    def __init__(self, config: FilterConfig | None = None) -> None:
        self.config = config or FilterConfig()
        self._accepted_ttls = np.array(
            sorted(self.config.accepted_ttls), dtype=np.int64
        )

    # Individual filters.  Each returns None to discard, or the (possibly
    # trimmed) measurement to keep.

    def sample_size(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Require >= 8 replies from *each* probing LG server."""
        for operator in m.operators():
            if m.reply_count(operator) < self.config.min_replies_per_lg:
                return None
        if not m.operators():
            return None
        return m

    def ttl_switch(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Discard interfaces whose reply TTL changes during the campaign."""
        ttls = m.ttls()
        if ttls.size and bool((ttls != ttls[0]).any()):
            return None
        return m

    def _accepted_mask(self, ttls: np.ndarray) -> np.ndarray:
        # accepted_ttls is tiny (two values in the paper's config): an OR
        # of equality masks beats np.isin's sort-based machinery ~4x here.
        mask = ttls == self._accepted_ttls[0]
        for value in self._accepted_ttls[1:]:
            mask |= ttls == value
        return mask

    def ttl_match(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Drop replies whose TTL is not an expected maximum (64 or 255).

        If dropping leaves any probing LG below the sample-size floor the
        interface is discarded here (its usable evidence is gone).  When
        trimming removes anything, a *new* measurement is returned; the
        input is never modified.
        """
        trimmed: dict[str, list[EchoReply] | ReplyBatch] = {}
        changed = False
        for operator, replies in m.replies_by_operator.items():
            if isinstance(replies, ReplyBatch):
                keep = self._accepted_mask(replies.ttl)
                kept_count = int(keep.sum())
                if kept_count < self.config.min_replies_per_lg:
                    return None
                if kept_count == len(replies):
                    trimmed[operator] = replies
                else:
                    trimmed[operator] = replies.select(keep)
                    changed = True
            else:
                kept = [
                    r for r in replies if r.ttl in self.config.accepted_ttls
                ]
                if len(kept) < self.config.min_replies_per_lg:
                    return None
                if len(kept) == len(replies):
                    trimmed[operator] = replies
                else:
                    trimmed[operator] = kept
                    changed = True
        if not changed:
            return m
        return m.with_replies(trimmed)

    def rtt_consistent(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Require >= 4 replies within max(5 ms, 10%) of the minimum RTT."""
        rtts = m.rtts()
        if rtts.size == 0:
            return None
        floor = float(rtts.min())
        ceiling = floor + self.config.envelope_ms(floor)
        if int((rtts <= ceiling).sum()) < 4:
            return None
        return m

    def lg_consistent(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """For dual-LG IXPs, require the two per-LG minima to agree."""
        minima = [
            m.min_rtt_ms(operator)
            for operator in m.operators()
            if m.reply_count(operator) > 0
        ]
        if len(minima) < 2:
            return m
        low, high = min(minima), max(minima)  # type: ignore[type-var]
        if high > low + self.config.envelope_ms(low):
            return None
        return m

    def asn_change(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Discard interfaces whose identified ASN changed mid-campaign."""
        if (
            m.asn_at_start is not None
            and m.asn_at_end is not None
            and m.asn_at_start != m.asn_at_end
        ):
            return None
        return m

    # Pipeline.

    def stages(self) -> tuple[tuple[str, object], ...]:
        """(name, callable) pairs in the paper's order."""
        return (
            ("sample-size", self.sample_size),
            ("ttl-switch", self.ttl_switch),
            ("ttl-match", self.ttl_match),
            ("rtt-consistent", self.rtt_consistent),
            ("lg-consistent", self.lg_consistent),
            ("asn-change", self.asn_change),
        )

    def run(
        self,
        measurements: list[InterfaceMeasurement],
        skip: str | None = None,
        batched: bool | None = None,
    ) -> FilterReport:
        """Apply all six filters in the paper's order.

        ``skip`` omits one named stage — the drop-one-filter ablation.
        Because stages are non-mutating, the same raw measurements can be
        passed to many ``run`` calls without copying.

        When every reply set is a struct-of-arrays :class:`ReplyBatch`
        (what the batch campaign engine produces), the pipeline runs as
        array-stat passes over one concatenated reply table instead of a
        Python stage loop per interface; the two paths produce identical
        reports (the equivalence suite asserts it).  ``batched`` forces a
        path — ``None`` auto-detects.
        """
        if skip is not None and skip not in FILTER_ORDER:
            raise ConfigurationError(f"unknown filter {skip!r}")
        if batched is None:
            batched = all(
                isinstance(replies, ReplyBatch)
                for m in measurements
                for replies in m.replies_by_operator.values()
            )
        if batched and measurements:
            return self._run_arrays(measurements, skip)
        return self._run_scalar(measurements, skip)

    def _run_scalar(
        self, measurements: list[InterfaceMeasurement], skip: str | None
    ) -> FilterReport:
        """Reference path: the per-interface stage loop."""
        report = FilterReport()
        stages = self.stages()
        for measurement in measurements:
            key = (measurement.ixp_acronym, measurement.address.value)
            survivor: InterfaceMeasurement | None = measurement
            for name, stage in stages:
                if name == skip:
                    continue
                survivor = stage(survivor)  # type: ignore[operator]
                if survivor is None:
                    report.discard_counts[name] += 1
                    report.discard_reason[key] = name
                    break
            if survivor is not None:
                report.passed.append(survivor)
        return report

    def _run_arrays(
        self, measurements: list[InterfaceMeasurement], skip: str | None
    ) -> FilterReport:
        """Array path: every filter statistic in a handful of vector passes.

        All replies live in one concatenated table ordered by
        (measurement, operator, probe) — the same order the scalar
        accessors produce — with two index levels: *segments* (one
        (measurement, operator) reply run) and measurements.  Per-segment
        and per-measurement statistics come from ``bincount``/``reduceat``
        reductions; each stage yields a per-measurement failure flag, and
        the first failing stage in the paper's order is charged, exactly
        as the scalar loop does.
        """
        config = self.config
        meas_count = len(measurements)
        seg_meas_list: list[int] = []
        seg_batches: list[ReplyBatch] = []
        for mi, m in enumerate(measurements):
            for op in sorted(m.replies_by_operator):
                seg_meas_list.append(mi)
                seg_batches.append(m.replies_by_operator[op])  # type: ignore[arg-type]
        seg_count = len(seg_batches)
        seg_len = np.array([len(b) for b in seg_batches], dtype=np.int64)
        meas_of_seg = np.array(seg_meas_list, dtype=np.intp)
        segs_per_meas = np.bincount(meas_of_seg, minlength=meas_count)
        total = int(seg_len.sum())
        if seg_count:
            rtt = np.concatenate([b.rtt_ms for b in seg_batches])
            ttl = np.concatenate([b.ttl for b in seg_batches])
        else:
            rtt = np.zeros(0)
            ttl = np.zeros(0, dtype=np.int64)
        seg_starts = np.zeros(seg_count, dtype=np.intp)
        if seg_count:
            np.cumsum(seg_len[:-1], out=seg_starts[1:])
        seg_id = np.repeat(np.arange(seg_count, dtype=np.intp), seg_len)
        meas_id = meas_of_seg[seg_id]
        replies_per_meas = np.bincount(meas_id, minlength=meas_count)
        meas_starts = np.zeros(meas_count, dtype=np.intp)
        np.cumsum(replies_per_meas[:-1], out=meas_starts[1:])

        def any_over_segs(seg_flags: np.ndarray) -> np.ndarray:
            return np.bincount(
                meas_of_seg, weights=seg_flags, minlength=meas_count
            ) > 0

        def any_over_replies(flags: np.ndarray) -> np.ndarray:
            return np.bincount(
                meas_id, weights=flags, minlength=meas_count
            ) > 0

        def segment_min(values: np.ndarray) -> np.ndarray:
            """Per-segment minimum (``inf`` for empty segments)."""
            out = np.full(seg_count, np.inf)
            nonempty = seg_len > 0
            if total and nonempty.any():
                out[nonempty] = np.minimum.reduceat(
                    values, seg_starts[nonempty]
                )
            return out

        # sample-size: every probing LG needs >= the reply floor, and at
        # least one LG must have probed.
        fail_sample = (
            any_over_segs(seg_len < config.min_replies_per_lg)
            | (segs_per_meas == 0)
        )

        # ttl-switch: any reply TTL differing from the measurement's first.
        first_ttl = np.zeros(meas_count, dtype=ttl.dtype)
        has_replies = replies_per_meas > 0
        first_ttl[has_replies] = ttl[meas_starts[has_replies]]
        fail_switch = any_over_replies(ttl != first_ttl[meas_id])

        # ttl-match: trim replies with unexpected TTLs; an LG falling below
        # the floor discards the interface.
        if skip == "ttl-match":
            kept = np.ones(total, dtype=bool)
            kept_per_seg = seg_len.astype(float)
            fail_match = np.zeros(meas_count, dtype=bool)
        else:
            kept = self._accepted_mask(ttl)
            kept_per_seg = np.bincount(
                seg_id, weights=kept, minlength=seg_count
            )
            fail_match = any_over_segs(
                kept_per_seg < config.min_replies_per_lg
            )
        seg_trimmed = kept_per_seg < seg_len

        # rtt-consistent: >= 4 kept replies inside max(5 ms, 10%) of the
        # kept minimum.
        kept_per_meas = np.bincount(meas_id, weights=kept, minlength=meas_count)
        masked_rtt = np.where(kept, rtt, np.inf)
        floor = np.full(meas_count, np.inf)
        if total and has_replies.any():
            floor[has_replies] = np.minimum.reduceat(
                masked_rtt, meas_starts[has_replies]
            )
        with np.errstate(invalid="ignore"):
            ceiling = floor + np.maximum(
                config.consistency_abs_ms, config.consistency_frac * floor
            )
        within = kept & (rtt <= ceiling[meas_id]) if total else kept
        fail_rtt = (kept_per_meas == 0) | (
            np.bincount(meas_id, weights=within, minlength=meas_count) < 4
        )

        # lg-consistent: per-LG kept minima of dual-LG interfaces agree.
        seg_min = segment_min(masked_rtt)
        seg_has_kept = kept_per_seg > 0
        lg_count = np.bincount(
            meas_of_seg, weights=seg_has_kept, minlength=meas_count
        )
        meas_seg_starts = np.zeros(meas_count, dtype=np.intp)
        np.cumsum(segs_per_meas[:-1], out=meas_seg_starts[1:])
        has_segs = segs_per_meas > 0
        low = np.full(meas_count, np.inf)
        high = np.full(meas_count, -np.inf)
        if seg_count and has_segs.any():
            low[has_segs] = np.minimum.reduceat(
                np.where(seg_has_kept, seg_min, np.inf),
                meas_seg_starts[has_segs],
            )
            high[has_segs] = np.maximum.reduceat(
                np.where(seg_has_kept, seg_min, -np.inf),
                meas_seg_starts[has_segs],
            )
        with np.errstate(invalid="ignore"):
            fail_lg = (lg_count >= 2) & (
                high > low + np.maximum(
                    config.consistency_abs_ms, config.consistency_frac * low
                )
            )

        # asn-change: scalar metadata, cheap Python pass.
        fail_asn = np.fromiter(
            (
                m.asn_at_start is not None
                and m.asn_at_end is not None
                and m.asn_at_start != m.asn_at_end
                for m in measurements
            ),
            dtype=bool,
            count=meas_count,
        )

        stage_fails = [
            ("sample-size", fail_sample),
            ("ttl-switch", fail_switch),
            ("ttl-match", fail_match),
            ("rtt-consistent", fail_rtt),
            ("lg-consistent", fail_lg),
            ("asn-change", fail_asn),
        ]
        active = [(name, flags) for name, flags in stage_fails if name != skip]
        fail_matrix = np.stack([flags for _, flags in active])
        failed_any = fail_matrix.any(axis=0)
        first_fail = np.argmax(fail_matrix, axis=0)

        trim_ran = skip != "ttl-match"
        meas_trimmed = (
            any_over_segs(seg_trimmed)
            if trim_ran
            else np.zeros(meas_count, dtype=bool)
        )

        report = FilterReport()
        failed_list = failed_any.tolist()
        first_list = first_fail.tolist()
        trimmed_list = meas_trimmed.tolist()
        names = [name for name, _ in active]
        for mi, m in enumerate(measurements):
            if failed_list[mi]:
                name = names[first_list[mi]]
                report.discard_counts[name] += 1
                report.discard_reason[(m.ixp_acronym, m.address.value)] = name
                continue
            if not trimmed_list[mi]:
                report.passed.append(m)
                continue
            lo = int(meas_seg_starts[mi])
            hi = lo + int(segs_per_meas[mi])
            operators = sorted(m.replies_by_operator)
            trimmed: dict[str, list[EchoReply] | ReplyBatch] = {}
            for seg in range(lo, hi):
                op = operators[seg - lo]
                batch = seg_batches[seg]
                if seg_trimmed[seg]:
                    start = int(seg_starts[seg])
                    batch = batch.select(kept[start:start + int(seg_len[seg])])
                trimmed[op] = batch
            report.passed.append(m.with_replies(trimmed))
        return report
