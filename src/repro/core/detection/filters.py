"""The six conservative filters of Section 3.1, applied in the paper's order.

Order: sample-size, TTL-switch, TTL-match, RTT-consistent, LG-consistent,
ASN-change.  Each filter either passes an interface (possibly returning a
*new* measurement with a trimmed reply set — stages never mutate their
input) or discards it, and the pipeline records exactly one discard reason
per interface — mirroring how the paper reports the 20 / 82 / 20 / 100 /
28 / 5 counts.  Statistics are read off the measurements' RTT/TTL arrays,
so batch-collected (struct-of-arrays) and scalar (per-reply object)
evidence flow through the same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detection.measurements import InterfaceMeasurement
from repro.errors import ConfigurationError
from repro.net.device import TTL_LINUX, TTL_NETWORK_OS
from repro.net.icmp import EchoReply, ReplyBatch

#: Canonical filter order (Section 3.1, "Choice of IXPs" paragraph).
FILTER_ORDER = (
    "sample-size",
    "ttl-switch",
    "ttl-match",
    "rtt-consistent",
    "lg-consistent",
    "asn-change",
)


@dataclass(frozen=True, slots=True)
class FilterConfig:
    """Parameters of the filter pipeline, defaulting to the paper's values."""

    min_replies_per_lg: int = 8
    accepted_ttls: frozenset[int] = frozenset({TTL_LINUX, TTL_NETWORK_OS})
    consistency_abs_ms: float = 5.0
    consistency_frac: float = 0.10

    def __post_init__(self) -> None:
        if self.min_replies_per_lg <= 0:
            raise ConfigurationError("min_replies_per_lg must be positive")
        if self.consistency_abs_ms < 0 or self.consistency_frac < 0:
            raise ConfigurationError("consistency tolerances cannot be negative")
        if not self.accepted_ttls:
            raise ConfigurationError("need at least one accepted TTL")

    def envelope_ms(self, min_rtt_ms: float) -> float:
        """The consistency envelope above a minimum RTT: max(5 ms, 10%)."""
        return max(self.consistency_abs_ms, self.consistency_frac * min_rtt_ms)


@dataclass
class FilterReport:
    """Outcome of running the pipeline over a set of measurements."""

    passed: list[InterfaceMeasurement] = field(default_factory=list)
    discard_counts: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in FILTER_ORDER}
    )
    discard_reason: dict[tuple[str, int], str] = field(default_factory=dict)

    def total_discarded(self) -> int:
        """Interfaces removed by any filter."""
        return sum(self.discard_counts.values())


class FilterPipeline:
    """Applies the six filters in order, trimming or discarding interfaces.

    Stages are pure: they never modify the measurement they are given, so
    the same raw measurements can be re-filtered under many configurations
    (threshold/drop-one sweeps) without defensive copying.
    """

    def __init__(self, config: FilterConfig | None = None) -> None:
        self.config = config or FilterConfig()
        self._accepted_ttls = np.array(
            sorted(self.config.accepted_ttls), dtype=np.int64
        )

    # Individual filters.  Each returns None to discard, or the (possibly
    # trimmed) measurement to keep.

    def sample_size(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Require >= 8 replies from *each* probing LG server."""
        for operator in m.operators():
            if m.reply_count(operator) < self.config.min_replies_per_lg:
                return None
        if not m.operators():
            return None
        return m

    def ttl_switch(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Discard interfaces whose reply TTL changes during the campaign."""
        ttls = m.ttls()
        if ttls.size and bool((ttls != ttls[0]).any()):
            return None
        return m

    def _accepted_mask(self, ttls: np.ndarray) -> np.ndarray:
        # accepted_ttls is tiny (two values in the paper's config): an OR
        # of equality masks beats np.isin's sort-based machinery ~4x here.
        mask = ttls == self._accepted_ttls[0]
        for value in self._accepted_ttls[1:]:
            mask |= ttls == value
        return mask

    def ttl_match(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Drop replies whose TTL is not an expected maximum (64 or 255).

        If dropping leaves any probing LG below the sample-size floor the
        interface is discarded here (its usable evidence is gone).  When
        trimming removes anything, a *new* measurement is returned; the
        input is never modified.
        """
        trimmed: dict[str, list[EchoReply] | ReplyBatch] = {}
        changed = False
        for operator, replies in m.replies_by_operator.items():
            if isinstance(replies, ReplyBatch):
                keep = self._accepted_mask(replies.ttl)
                kept_count = int(keep.sum())
                if kept_count < self.config.min_replies_per_lg:
                    return None
                if kept_count == len(replies):
                    trimmed[operator] = replies
                else:
                    trimmed[operator] = replies.select(keep)
                    changed = True
            else:
                kept = [
                    r for r in replies if r.ttl in self.config.accepted_ttls
                ]
                if len(kept) < self.config.min_replies_per_lg:
                    return None
                if len(kept) == len(replies):
                    trimmed[operator] = replies
                else:
                    trimmed[operator] = kept
                    changed = True
        if not changed:
            return m
        return m.with_replies(trimmed)

    def rtt_consistent(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Require >= 4 replies within max(5 ms, 10%) of the minimum RTT."""
        rtts = m.rtts()
        if rtts.size == 0:
            return None
        floor = float(rtts.min())
        ceiling = floor + self.config.envelope_ms(floor)
        if int((rtts <= ceiling).sum()) < 4:
            return None
        return m

    def lg_consistent(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """For dual-LG IXPs, require the two per-LG minima to agree."""
        minima = [
            m.min_rtt_ms(operator)
            for operator in m.operators()
            if m.reply_count(operator) > 0
        ]
        if len(minima) < 2:
            return m
        low, high = min(minima), max(minima)  # type: ignore[type-var]
        if high > low + self.config.envelope_ms(low):
            return None
        return m

    def asn_change(self, m: InterfaceMeasurement) -> InterfaceMeasurement | None:
        """Discard interfaces whose identified ASN changed mid-campaign."""
        if (
            m.asn_at_start is not None
            and m.asn_at_end is not None
            and m.asn_at_start != m.asn_at_end
        ):
            return None
        return m

    # Pipeline.

    def stages(self) -> tuple[tuple[str, object], ...]:
        """(name, callable) pairs in the paper's order."""
        return (
            ("sample-size", self.sample_size),
            ("ttl-switch", self.ttl_switch),
            ("ttl-match", self.ttl_match),
            ("rtt-consistent", self.rtt_consistent),
            ("lg-consistent", self.lg_consistent),
            ("asn-change", self.asn_change),
        )

    def run(
        self,
        measurements: list[InterfaceMeasurement],
        skip: str | None = None,
    ) -> FilterReport:
        """Apply all six filters in the paper's order.

        ``skip`` omits one named stage — the drop-one-filter ablation.
        Because stages are non-mutating, the same raw measurements can be
        passed to many ``run`` calls without copying.
        """
        if skip is not None and skip not in FILTER_ORDER:
            raise ConfigurationError(f"unknown filter {skip!r}")
        report = FilterReport()
        stages = self.stages()
        for measurement in measurements:
            key = (measurement.ixp_acronym, measurement.address.value)
            survivor: InterfaceMeasurement | None = measurement
            for name, stage in stages:
                if name == skip:
                    continue
                survivor = stage(survivor)  # type: ignore[operator]
                if survivor is None:
                    report.discard_counts[name] += 1
                    report.discard_reason[key] = name
                    break
            if survivor is not None:
                report.passed.append(survivor)
        return report
