"""Aggregation of campaign output into the paper's reported structures.

:class:`CampaignResult` is the single object every Section 3 figure reads
from:

* Figure 2 — ``min_rtts()`` (CDF of analyzed-interface minimum RTTs);
* Figure 3 — ``band_counts_by_ixp()``;
* Figure 4a — ``ixp_count_distribution()`` for identified and for
  remotely peering networks;
* Figure 4b — ``band_fractions_by_ixp_count()``;
* Table 1's last column — ``analyzed_count_by_ixp()``;
* the filter paragraph — ``discard_counts``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.detection.classify import BAND_LABELS, band_label, is_remote
from repro.core.detection.filters import FilterReport
from repro.core.detection.measurements import InterfaceMeasurement
from repro.errors import AnalysisError
from repro.net.addr import IPv4Address
from repro.types import ASN


@dataclass(frozen=True, slots=True)
class AnalyzedInterface:
    """One interface that survived all six filters."""

    ixp_acronym: str
    address: IPv4Address
    min_rtt_ms: float
    per_operator_min_ms: tuple[tuple[str, float], ...]
    asn: ASN | None
    identification_source: str | None
    reply_count: int

    @property
    def identified(self) -> bool:
        """Whether the interface maps to a network."""
        return self.asn is not None

    @property
    def band(self) -> str:
        """The Figure 3 RTT band of this interface."""
        return band_label(self.min_rtt_ms)

    def remote(self, threshold_ms: float) -> bool:
        """Remote/direct call at a given threshold."""
        return is_remote(self.min_rtt_ms, threshold_ms)


@dataclass
class CampaignResult:
    """Filtered, classified output of one measurement campaign."""

    analyzed: list[AnalyzedInterface]
    discard_counts: dict[str, int]
    threshold_ms: float
    candidate_count: int
    _by_network: dict[ASN, list[AnalyzedInterface]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_network:
            grouped: dict[ASN, list[AnalyzedInterface]] = defaultdict(list)
            for iface in self.analyzed:
                if iface.asn is not None:
                    grouped[iface.asn].append(iface)
            self._by_network = dict(grouped)

    # -- interface-level views ----------------------------------------------------

    def analyzed_count(self) -> int:
        """Total analyzed interfaces (paper: 4,451)."""
        return len(self.analyzed)

    def analyzed_count_by_ixp(self) -> dict[str, int]:
        """Table 1's "number of analyzed interfaces" column."""
        counts: Counter[str] = Counter(i.ixp_acronym for i in self.analyzed)
        return dict(counts)

    def min_rtts(self) -> np.ndarray:
        """Minimum RTTs of all analyzed interfaces (Figure 2's sample)."""
        return np.array([i.min_rtt_ms for i in self.analyzed], dtype=float)

    def band_counts_by_ixp(self) -> dict[str, dict[str, int]]:
        """Figure 3: per-IXP interface counts in the four RTT bands."""
        table: dict[str, dict[str, int]] = defaultdict(
            lambda: {label: 0 for label in BAND_LABELS}
        )
        for iface in self.analyzed:
            table[iface.ixp_acronym][iface.band] += 1
        return dict(table)

    def remote_interfaces(self) -> list[AnalyzedInterface]:
        """Interfaces at or above the remoteness threshold."""
        return [i for i in self.analyzed if i.remote(self.threshold_ms)]

    def ixps_with_remote_peering(self) -> list[str]:
        """IXPs where at least one remote interface was detected."""
        return sorted({i.ixp_acronym for i in self.remote_interfaces()})

    def studied_ixps(self) -> list[str]:
        """All IXPs contributing analyzed interfaces."""
        return sorted({i.ixp_acronym for i in self.analyzed})

    def remote_spread_fraction(self) -> float:
        """Fraction of studied IXPs showing remote peering (paper: 91%)."""
        studied = self.studied_ixps()
        if not studied:
            raise AnalysisError("no analyzed interfaces")
        return len(self.ixps_with_remote_peering()) / len(studied)

    # -- network-level views ---------------------------------------------------------

    def identified_interface_count(self) -> int:
        """Analyzed interfaces mapped to an ASN (paper: 3,242)."""
        return sum(1 for i in self.analyzed if i.identified)

    def identified_networks(self) -> dict[ASN, list[AnalyzedInterface]]:
        """All identified networks and their analyzed interfaces."""
        return dict(self._by_network)

    def remotely_peering_networks(self) -> dict[ASN, list[AnalyzedInterface]]:
        """Networks with >= 1 interface classified remote (paper: 285)."""
        return {
            asn: ifaces
            for asn, ifaces in self._by_network.items()
            if any(i.remote(self.threshold_ms) for i in ifaces)
        }

    def ixp_count_of(self, asn: ASN) -> int:
        """Number of studied IXPs where the network has analyzed interfaces."""
        ifaces = self._by_network.get(asn)
        if not ifaces:
            return 0
        return len({i.ixp_acronym for i in ifaces})

    def ixp_count_distribution(self, remote_only: bool = False) -> dict[int, int]:
        """Figure 4a: histogram of networks over their IXP counts."""
        networks = (
            self.remotely_peering_networks() if remote_only else self._by_network
        )
        histogram: Counter[int] = Counter()
        for asn in networks:
            histogram[self.ixp_count_of(asn)] += 1
        return dict(sorted(histogram.items()))

    def band_fractions_by_ixp_count(self) -> dict[int, dict[str, float]]:
        """Figure 4b: interface band mix of remote networks per IXP count."""
        remote_nets = self.remotely_peering_networks()
        counts: dict[int, Counter[str]] = defaultdict(Counter)
        for asn, ifaces in remote_nets.items():
            k = self.ixp_count_of(asn)
            for iface in ifaces:
                counts[k][iface.band] += 1
        fractions: dict[int, dict[str, float]] = {}
        for k, counter in sorted(counts.items()):
            total = sum(counter.values())
            fractions[k] = {
                label: counter.get(label, 0) / total for label in BAND_LABELS
            }
        return fractions


def build_result(
    measurements: list[InterfaceMeasurement],
    report: FilterReport,
    threshold_ms: float,
) -> CampaignResult:
    """Assemble the result object from filtered measurements."""
    analyzed = []
    for m in report.passed:
        min_rtt = m.min_rtt_ms()
        if min_rtt is None:  # pragma: no cover - filters guarantee replies
            raise AnalysisError(f"filtered interface {m.address} has no replies")
        per_operator = tuple(
            (operator, float(m.min_rtt_ms(operator)))  # type: ignore[arg-type]
            for operator in m.operators()
            if m.reply_count(operator) > 0
        )
        analyzed.append(
            AnalyzedInterface(
                ixp_acronym=m.ixp_acronym,
                address=m.address,
                min_rtt_ms=float(min_rtt),
                per_operator_min_ms=per_operator,
                asn=m.asn_at_start if m.asn_at_start is not None else m.asn_at_end,
                identification_source=m.identification_source,
                reply_count=m.reply_count(),
            )
        )
    return CampaignResult(
        analyzed=analyzed,
        discard_counts=dict(report.discard_counts),
        threshold_ms=threshold_ms,
        candidate_count=len(measurements),
    )
