"""Remoteness classification of analyzed interfaces (Section 3.1/3.2).

The paper classifies a network as remotely peering when the minimum RTT of
its IXP interface exceeds 10 ms, and reads the 10–20 / 20–50 / 50+ ms
ranges as roughly intercity / intercountry / intercontinental circuits.
"""

from __future__ import annotations

from repro.errors import AnalysisError

#: The paper's conservative remoteness threshold.
REMOTENESS_THRESHOLD_MS = 10.0

#: The four min-RTT ranges of Figures 3/4b: (label, low inclusive, high
#: exclusive).
RTT_BANDS: tuple[tuple[str, float, float], ...] = (
    ("<10ms", 0.0, 10.0),
    ("10-20ms", 10.0, 20.0),
    ("20-50ms", 20.0, 50.0),
    (">=50ms", 50.0, float("inf")),
)

BAND_LABELS: tuple[str, ...] = tuple(band[0] for band in RTT_BANDS)


def is_remote(min_rtt_ms: float, threshold_ms: float = REMOTENESS_THRESHOLD_MS) -> bool:
    """Whether a minimum RTT classifies the interface as remotely peering."""
    if min_rtt_ms < 0:
        raise AnalysisError(f"negative RTT {min_rtt_ms}")
    return min_rtt_ms >= threshold_ms


def band_label(min_rtt_ms: float) -> str:
    """The Figure 3 band a minimum RTT falls into."""
    if min_rtt_ms < 0:
        raise AnalysisError(f"negative RTT {min_rtt_ms}")
    for label, low, high in RTT_BANDS:
        if low <= min_rtt_ms < high:
            return label
    raise AnalysisError(f"unclassifiable RTT {min_rtt_ms}")  # pragma: no cover


def band_index(min_rtt_ms: float) -> int:
    """Index of the band (0..3) for array-shaped aggregations."""
    return BAND_LABELS.index(band_label(min_rtt_ms))
