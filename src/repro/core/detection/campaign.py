"""The probing campaign: four months of LG queries across the studied IXPs.

Reproduces Section 3.1's measurement discipline:

* vantage points are the PCH / RIPE LG servers *inside* each IXP;
* one HTML query per minute per LG server, at most;
* each target is swept in multiple rounds placed at different days and
  times of day, so transient congestion cannot poison the minimum;
* PCH queries fire 5 pings, RIPE queries 3 — with 11 PCH and 7 RIPE
  rounds the per-interface reply maxima land at 55/21, matching the
  paper's reported 54/21 up to response loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detection.filters import FilterConfig, FilterPipeline, FilterReport
from repro.core.detection.measurements import InterfaceMeasurement
from repro.core.detection.results import CampaignResult, build_result
from repro.errors import ConfigurationError
from repro.lg.client import LookingGlassClient
from repro.rand import child_rng
from repro.sim.detection_world import DetectionWorld
from repro.units import MINUTE


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Campaign-level knobs (filter knobs live in :class:`FilterConfig`)."""

    seed: int = 7
    pch_rounds: int = 11
    ripe_rounds: int = 7
    remoteness_threshold_ms: float = 10.0
    filters: FilterConfig = FilterConfig()

    def __post_init__(self) -> None:
        if self.pch_rounds <= 0 or self.ripe_rounds <= 0:
            raise ConfigurationError("round counts must be positive")
        if self.remoteness_threshold_ms <= 0:
            raise ConfigurationError("threshold must be positive")

    def rounds_for(self, operator: str) -> int:
        """Probe rounds for one LG operator."""
        return self.pch_rounds if operator == "PCH" else self.ripe_rounds


class ProbeCampaign:
    """Runs the full measurement study over a detection world."""

    def __init__(self, world: DetectionWorld, config: CampaignConfig | None = None):
        self.world = world
        self.config = config or CampaignConfig()
        self.client = LookingGlassClient()

    def _reset_client(self) -> None:
        # Each collection run replays the same simulated four months, so it
        # needs a clean rate-limit ledger.
        self.client = LookingGlassClient()

    def run(self) -> CampaignResult:
        """Probe every published target at every IXP, filter, aggregate."""
        measurements = self.collect()
        pipeline = FilterPipeline(self.config.filters)
        report = pipeline.run(measurements)
        return build_result(
            measurements=measurements,
            report=report,
            threshold_ms=self.config.remoteness_threshold_ms,
        )

    # -- collection -----------------------------------------------------------

    def collect(self) -> list[InterfaceMeasurement]:
        """Raw measurements for every (IXP, published target) pair."""
        self._reset_client()
        collected: list[InterfaceMeasurement] = []
        for acronym in sorted(self.world.ixps):
            collected.extend(self._collect_ixp(acronym))
        return collected

    def collect_ixp(self, acronym: str) -> list[InterfaceMeasurement]:
        """Probe one IXP's target list from each of its LG servers."""
        self._reset_client()
        return self._collect_ixp(acronym)

    def _collect_ixp(self, acronym: str) -> list[InterfaceMeasurement]:
        targets = self.world.directory.targets_for(acronym)
        servers = self.world.lg_servers.get(acronym, [])
        if not targets or not servers:
            return []
        measurements = {
            record.address.value: InterfaceMeasurement(
                ixp_acronym=acronym, address=record.address
            )
            for record in targets
        }
        for server in servers:
            rounds = self.config.rounds_for(server.operator)
            self._sweep_server(acronym, server, targets, rounds, measurements)
        self._identify(acronym, measurements)
        return [measurements[r.address.value] for r in targets]

    def _sweep_server(self, acronym, server, targets, rounds, measurements) -> None:
        rng = child_rng(self.config.seed, "campaign", acronym, server.operator)
        # One query per target per round; queries are spaced one minute
        # apart, so a round spans len(targets) minutes plus the ping burst.
        round_span_s = len(targets) * MINUTE + server.pings_per_query + 1
        starts = self.world.window.round_start_times(rounds, rng, round_span_s)
        for start in starts:
            for index, record in enumerate(targets):
                query_time = start + index * MINUTE
                result = self.client.submit(server, record.address, query_time, rng)
                slot = measurements[record.address.value]
                slot.replies_by_operator.setdefault(server.operator, []).extend(
                    result.replies
                )

    def _identify(self, acronym: str, measurements) -> None:
        pipeline = self.world.identification
        start_s = 0.0
        end_s = self.world.window.duration_s
        for slot in measurements.values():
            first = pipeline.identify(acronym, slot.address, start_s)
            last = pipeline.identify(acronym, slot.address, end_s)
            slot.asn_at_start = first.asn
            slot.asn_at_end = last.asn
            slot.identification_source = first.source or last.source
