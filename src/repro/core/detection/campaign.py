"""The probing campaign: four months of LG queries across the studied IXPs.

Reproduces Section 3.1's measurement discipline:

* vantage points are the PCH / RIPE LG servers *inside* each IXP;
* one HTML query per minute per LG server, at most;
* each target is swept in multiple rounds placed at different days and
  times of day, so transient congestion cannot poison the minimum;
* PCH queries fire 5 pings, RIPE queries 3 — with 11 PCH and 7 RIPE
  rounds the per-interface reply maxima land at 55/21, matching the
  paper's reported 54/21 up to response loss.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass

from repro.core.detection.filters import FilterConfig, FilterPipeline, FilterReport
from repro.core.detection.measurements import InterfaceMeasurement
from repro.core.detection.results import CampaignResult, build_result
from repro.errors import ConfigurationError
from repro.faults.retry import plan_retries
from repro.faults.schedule import FaultConfig, FaultSchedule, build_fault_schedule
from repro.lg.batch import (
    compile_probe_plan,
    compile_sweep_faults,
    run_sweeps,
    sweep_query_times,
)
from repro.lg.client import LookingGlassClient
from repro.rand import child_rng
from repro.sim.detection_world import DetectionWorld
from repro.units import MINUTE


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Campaign-level knobs (filter knobs live in :class:`FilterConfig`).

    ``engine`` selects how sweeps are realized: ``"batch"`` (default)
    compiles each (LG server x target list) pair into a numpy probe plan
    and draws every stochastic component as arrays — ~10x faster and the
    path every large run should take; ``"scalar"`` replays the one-probe-
    per-call reference implementation.  Both consume the same per-(seed,
    ixp, operator) RNG streams; draw order differs, so the two engines
    agree statistically (not bit-for-bit) — see ``tests`` for the
    equivalence suite.
    """

    seed: int = 7
    pch_rounds: int = 11
    ripe_rounds: int = 7
    remoteness_threshold_ms: float = 10.0
    filters: FilterConfig = FilterConfig()
    engine: str = "batch"
    #: Optional deterministic chaos: a fault schedule is materialized per
    #: campaign from the ``(seed, "faults", ...)`` streams and threaded
    #: through both probe engines (``None`` or zero intensity: byte-
    #: identical to a fault-free campaign).
    faults: FaultConfig | None = None

    def __post_init__(self) -> None:
        if self.pch_rounds <= 0 or self.ripe_rounds <= 0:
            raise ConfigurationError("round counts must be positive")
        if self.remoteness_threshold_ms <= 0:
            raise ConfigurationError("threshold must be positive")
        if self.engine not in ("batch", "scalar"):
            raise ConfigurationError(f"unknown probe engine {self.engine!r}")

    def rounds_for(self, operator: str) -> int:
        """Probe rounds for one LG operator."""
        return self.pch_rounds if operator == "PCH" else self.ripe_rounds


class ProbeCampaign:
    """Runs the full measurement study over a detection world."""

    def __init__(self, world: DetectionWorld, config: CampaignConfig | None = None):
        self.world = world
        self.config = config or CampaignConfig()
        self.client = LookingGlassClient()
        self._fault_schedule: FaultSchedule | None = None

    def fault_schedule(self) -> FaultSchedule | None:
        """The campaign's materialized chaos, or None when faults are off.

        Built lazily once per campaign from the dedicated fault streams —
        never stored on the world, which stays shareable across trials.
        """
        if self.config.faults is None or not self.config.faults.active:
            return None
        if self._fault_schedule is None:
            self._fault_schedule = build_fault_schedule(
                self.config.faults, self.config.seed, self.world
            )
        return self._fault_schedule

    def _reset_client(self) -> None:
        # Each collection run replays the same simulated four months, so it
        # needs a clean rate-limit ledger.
        self.client = LookingGlassClient()

    def run(self) -> CampaignResult:
        """Probe every published target at every IXP, filter, aggregate."""
        measurements = self.collect()
        pipeline = FilterPipeline(self.config.filters)
        report = pipeline.run(measurements)
        return build_result(
            measurements=measurements,
            report=report,
            threshold_ms=self.config.remoteness_threshold_ms,
        )

    # -- collection -----------------------------------------------------------

    def collect(self) -> list[InterfaceMeasurement]:
        """Raw measurements for every (IXP, published target) pair."""
        self._reset_client()
        collected: list[InterfaceMeasurement] = []
        for acronym in sorted(self.world.ixps):
            collected.extend(self._collect_ixp(acronym))
        return collected

    def collect_ixp(self, acronym: str) -> list[InterfaceMeasurement]:
        """Probe one IXP's target list from each of its LG servers."""
        self._reset_client()
        return self._collect_ixp(acronym)

    def _collect_ixp(self, acronym: str) -> list[InterfaceMeasurement]:
        targets = self.world.directory.targets_for(acronym)
        servers = self.world.lg_servers.get(acronym, [])
        if not targets or not servers:
            return []
        measurements = {
            record.address.value: InterfaceMeasurement(
                ixp_acronym=acronym, address=record.address
            )
            for record in targets
        }
        sweep = (
            self._sweep_server_batch
            if self.config.engine == "batch"
            else self._sweep_server_scalar
        )
        for server in servers:
            rounds = self.config.rounds_for(server.operator)
            sweep(acronym, server, targets, rounds, measurements)
        self._identify(acronym, measurements)
        return [measurements[r.address.value] for r in targets]

    def _round_starts(self, acronym, server, targets, rounds, rng):
        # One query per target per round; queries are spaced one minute
        # apart, so a round spans len(targets) minutes plus the ping burst.
        round_span_s = len(targets) * MINUTE + server.pings_per_query + 1
        return self.world.window.round_start_times(rounds, rng, round_span_s)

    def _retry_plan(self, acronym, server, query_times, schedule):
        """Plan one sweep's retries from the dedicated backoff stream.

        Both engines call this with the *identical* planned grid and the
        same stream, so their retry plans (and therefore retry counts,
        served masks, and effective send times) agree bit-for-bit.
        """
        retry_rng = child_rng(
            self.config.seed, "faults", "backoff", acronym, server.operator
        )
        plan = plan_retries(
            query_times.ravel(),
            schedule.server_down_fn(server.name),
            schedule.config.retry,
            retry_rng,
        )
        self.client.record_retries(server.name, plan)
        shape = query_times.shape
        return plan.effective_s.reshape(shape), plan.served.reshape(shape)

    def _sweep_server_batch(self, acronym, server, targets, rounds, measurements) -> None:
        """The vectorized engine: one probe plan, all rounds as array draws."""
        rng = child_rng(self.config.seed, "campaign", acronym, server.operator)
        starts = self._round_starts(acronym, server, targets, rounds, rng)
        plan = compile_probe_plan(server, [r.address for r in targets])
        query_times = sweep_query_times(plan, np.asarray(starts))
        # Validate the whole schedule against the ledger before realizing a
        # single probe, mirroring the scalar path's per-query enforcement.
        # Politeness is enforced on the *planned* grid; retry backoff is
        # bounded to stay within each one-minute slot.
        self.client.record_sweep(server.name, query_times)
        schedule = self.fault_schedule()
        if schedule is None:
            batches = run_sweeps(plan, np.asarray(starts), rng, query_times)
        else:
            effective, served = self._retry_plan(
                acronym, server, query_times, schedule
            )
            sweep_faults = compile_sweep_faults(
                plan, schedule.probe_faults(acronym)
            )
            batches = run_sweeps(
                plan, np.asarray(starts), rng, effective,
                served=served, faults=sweep_faults,
            )
        for record, batch in zip(targets, batches):
            # Empty batches are recorded too: an operator that probed but
            # got nothing back must still appear, so the sample-size filter
            # sees the same evidence the scalar engine produces.
            measurements[record.address.value].add_batch(server.operator, batch)

    def _sweep_server_scalar(self, acronym, server, targets, rounds, measurements) -> None:
        """The reference engine: one client query per (round, target)."""
        rng = child_rng(self.config.seed, "campaign", acronym, server.operator)
        starts = self._round_starts(acronym, server, targets, rounds, rng)
        schedule = self.fault_schedule()
        effective = served = probe_faults = None
        if schedule is not None:
            # The identical planned grid the batch engine validates, so
            # the shared-stream retry plan is bit-identical across engines.
            query_times = np.asarray(starts, dtype=float)[:, None] + (
                np.arange(len(targets), dtype=float)[None, :] * MINUTE
            )
            effective, served = self._retry_plan(
                acronym, server, query_times, schedule
            )
            probe_faults = schedule.probe_faults(acronym)
        for r, start in enumerate(starts):
            for index, record in enumerate(targets):
                query_time = start + index * MINUTE
                if schedule is None:
                    result = self.client.submit(
                        server, record.address, query_time, rng
                    )
                else:
                    result = self.client.submit(
                        server, record.address, query_time, rng,
                        effective_s=float(effective[r, index]),
                        served=bool(served[r, index]),
                        faults=probe_faults,
                    )
                slot = measurements[record.address.value]
                replies = slot.replies_by_operator.setdefault(server.operator, [])
                replies.extend(result.replies)

    def _identify(self, acronym: str, measurements) -> None:
        pipeline = self.world.identification
        start_s = 0.0
        end_s = self.world.window.duration_s
        for slot in measurements.values():
            # One span query per slot: the sources resolve each registry
            # record once and reuse the (time-independent) coverage draw
            # for both endpoints — bit-identical to two identify() calls.
            first, last = pipeline.identify_span(
                acronym, slot.address, start_s, end_s
            )
            slot.asn_at_start = first.asn
            slot.asn_at_end = last.asn
            slot.identification_source = first.source or last.source
