"""The generalized reachability metric of Figure 10.

To show diminishing marginal IXP utility independently of RedIRIS's
traffic, the paper switches the metric to *the number of IP interfaces
reachable only through transit providers*: ~2.6 billion addresses sit
behind the transit hierarchy, and reaching IXPs moves the cones of their
members (per peer group) into peering reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.offload.peergroups import PeerGroups
from repro.errors import ConfigurationError
from repro.sim.offload_world import OffloadWorld
from repro.types import ASN


@dataclass(frozen=True, slots=True)
class ReachabilityStep:
    """One greedy step of the Figure 10 expansion."""

    rank: int
    ixp: str
    remaining_addresses: float

    @property
    def remaining_billions(self) -> float:
        """Remaining transit-only addresses, in billions (Figure 10 y-axis)."""
        return self.remaining_addresses / 1e9


class _AddressMasks:
    """Per-(IXP, group) address-space masks over *all* ASes."""

    def __init__(self, world: OffloadWorld, groups: PeerGroups) -> None:
        self.world = world
        self.groups = groups
        self.asns = world.graph.asns()
        self.index = {asn: i for i, asn in enumerate(self.asns)}
        self.space = np.array(
            [world.graph.get(a).address_space for a in self.asns], dtype=float
        )
        self._cone_idx: dict[ASN, np.ndarray] = {}
        self._masks: dict[tuple[str, int], np.ndarray] = {}

    def cone_indices(self, member: ASN) -> np.ndarray:
        cached = self._cone_idx.get(member)
        if cached is None:
            cached = np.array(
                sorted(self.index[a] for a in self.world.cone(member)),
                dtype=np.int32,
            )
            self._cone_idx[member] = cached
        return cached

    def mask(self, ixp_acronym: str, group: int) -> np.ndarray:
        key = (ixp_acronym, group)
        cached = self._masks.get(key)
        if cached is None:
            cached = np.zeros(len(self.asns), dtype=bool)
            for member in self.groups.ixp_group_members(ixp_acronym, group):
                cached[self.cone_indices(member)] = True
            self._masks[key] = cached
        return cached


def total_address_space(world: OffloadWorld) -> float:
    """All announced addresses: the zero-IXP baseline (~2.6 B)."""
    return world.total_address_space()


def reachable_via_peering(
    world: OffloadWorld,
    groups: PeerGroups,
    ixps: Iterable[str],
    group: int,
) -> float:
    """Addresses covered by the cones of reachable group members."""
    masks = _AddressMasks(world, groups)
    combined = np.zeros(len(masks.asns), dtype=bool)
    for acronym in ixps:
        combined |= masks.mask(acronym, group)
    return float(masks.space[combined].sum())


def greedy_reachability(
    world: OffloadWorld,
    groups: PeerGroups,
    group: int,
    max_ixps: int | None = None,
) -> list[ReachabilityStep]:
    """Greedy expansion minimising transit-only reachable addresses.

    Mirrors Figure 10: at each step add the IXP whose members' cones cover
    the most not-yet-covered address space.
    """
    masks = _AddressMasks(world, groups)
    candidates = sorted(world.memberships)
    limit = len(candidates) if max_ixps is None else min(max_ixps, len(candidates))
    if limit <= 0:
        raise ConfigurationError("max_ixps must be positive")
    total = float(masks.space.sum())
    covered = np.zeros(len(masks.asns), dtype=bool)
    steps: list[ReachabilityStep] = []
    remaining_candidates = list(candidates)
    for rank in range(1, limit + 1):
        best_ixp = None
        best_gain = -1.0
        for acronym in remaining_candidates:
            fresh = masks.mask(acronym, group) & ~covered
            gain = float(masks.space[fresh].sum())
            if gain > best_gain:
                best_gain = gain
                best_ixp = acronym
        if best_ixp is None:
            break
        covered |= masks.mask(best_ixp, group)
        remaining_candidates.remove(best_ixp)
        steps.append(
            ReachabilityStep(
                rank=rank,
                ixp=best_ixp,
                remaining_addresses=total - float(masks.space[covered].sum()),
            )
        )
        if best_gain <= 0:
            break
    return steps
