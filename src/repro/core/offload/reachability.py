"""The generalized reachability metric of Figure 10.

To show diminishing marginal IXP utility independently of RedIRIS's
traffic, the paper switches the metric to *the number of IP interfaces
reachable only through transit providers*: ~2.6 billion addresses sit
behind the transit hierarchy, and reaching IXPs moves the cones of their
members (per peer group) into peering reach.

Like the traffic-side estimator, the implementation precomputes one
boolean cone-membership matrix per peer group — here (IXP × *all* ASes),
since the metric counts every announced address, not just the contributing
networks' — and answers coverage queries with masked reductions over the
per-AS address-space vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.offload.bitsets import cached_group_bitset, greedy_cover_rows
from repro.core.offload.peergroups import ALL_GROUPS, PeerGroups
from repro.errors import ConfigurationError
from repro.sim.offload_world import OffloadWorld


@dataclass(frozen=True, slots=True)
class ReachabilityStep:
    """One greedy step of the Figure 10 expansion."""

    rank: int
    ixp: str
    remaining_addresses: float

    @property
    def remaining_billions(self) -> float:
        """Remaining transit-only addresses, in billions (Figure 10 y-axis)."""
        return self.remaining_addresses / 1e9


class _AddressMatrix:
    """Per-group (IXP × all-AS) cone bitsets plus the address-space vector."""

    def __init__(self, world: OffloadWorld, groups: PeerGroups) -> None:
        self.world = world
        self.groups = groups
        self.asns = world.graph.asns()
        self.candidates = sorted(world.memberships)
        self.space = np.array(
            [world.graph.get(a).address_space for a in self.asns], dtype=float
        )
        self._matrices: dict[int, np.ndarray] = {}

    def _member_arrays(self, acronym: str, in_group) -> list[np.ndarray]:
        world = self.world
        members = world.memberships.get(acronym)
        if members is None:
            raise ConfigurationError(f"unknown IXP {acronym!r}")
        return [world.cone_all_indices(m) for m in members & in_group]

    def matrix(self, group: int) -> np.ndarray:
        def row_arrays():
            in_group = self.groups.group_members(group)
            return (
                (row, self._member_arrays(acronym, in_group))
                for row, acronym in enumerate(self.candidates)
            )

        return cached_group_bitset(
            self._matrices, group, ALL_GROUPS,
            (len(self.candidates), len(self.asns)), row_arrays,
        )

    def combined_mask(self, ixps: Iterable[str], group: int) -> np.ndarray:
        """Coverage of just the requested IXPs (no full-matrix assembly)."""
        if group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {group}")
        in_group = self.groups.group_members(group)
        combined = np.zeros(len(self.asns), dtype=bool)
        for acronym in ixps:
            for indices in self._member_arrays(acronym, in_group):
                combined[indices] = True
        return combined


def total_address_space(world: OffloadWorld) -> float:
    """All announced addresses: the zero-IXP baseline (~2.6 B)."""
    return world.total_address_space()


def reachable_via_peering(
    world: OffloadWorld,
    groups: PeerGroups,
    ixps: Iterable[str],
    group: int,
) -> float:
    """Addresses covered by the cones of reachable group members."""
    matrices = _AddressMatrix(world, groups)
    combined = matrices.combined_mask(ixps, group)
    return float(matrices.space[combined].sum())


def greedy_reachability(
    world: OffloadWorld,
    groups: PeerGroups,
    group: int,
    max_ixps: int | None = None,
) -> list[ReachabilityStep]:
    """Greedy expansion minimising transit-only reachable addresses.

    Mirrors Figure 10: at each step add the IXP whose members' cones cover
    the most not-yet-covered address space — one matrix-vector product and
    an argmax per rank, with the chosen row zeroing the address vector.
    """
    matrices = _AddressMatrix(world, groups)
    candidates = matrices.candidates
    limit = len(candidates) if max_ixps is None else min(max_ixps, len(candidates))
    if limit <= 0:
        raise ConfigurationError("max_ixps must be positive")
    bitset = matrices.matrix(group)
    gain_matrix = bitset.astype(np.float32)
    total = float(matrices.space.sum())
    uncovered_space = matrices.space.astype(np.float32)
    steps: list[ReachabilityStep] = []
    for rank, best, covered in greedy_cover_rows(
        bitset, gain_matrix, uncovered_space, limit
    ):
        remaining = total - float(matrices.space[covered].sum())
        fresh_gain = (
            (total - remaining) if not steps
            else steps[-1].remaining_addresses - remaining
        )
        steps.append(
            ReachabilityStep(
                rank=rank,
                ixp=candidates[best],
                remaining_addresses=remaining,
            )
        )
        if fresh_gain <= 0:
            break
    return steps
