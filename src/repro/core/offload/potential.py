"""The offload-potential estimator (Figures 5–7).

The estimator answers: *if the studied network could peer at these IXPs
with this peer group, how much transit traffic would move off its
providers?*  Offloadability is customer-cone membership: a contributing
network's traffic shifts when some reachable peer carries it in its cone
(Section 4.2's "fully shifting to remote peering the traffic that the
networks of this peer group and their customer cones contribute").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.offload.bitsets import cached_group_bitset
from repro.core.offload.peergroups import ALL_GROUPS, PeerGroups
from repro.errors import ConfigurationError
from repro.sim.offload_world import OffloadWorld
from repro.types import ASN, NetworkKind


@dataclass(frozen=True, slots=True)
class ContributorShare:
    """Figure 6 row: one top contributor's traffic decomposition."""

    asn: ASN
    name: str
    kind: NetworkKind
    origin_bps: float       # inbound traffic the network itself originates
    destination_bps: float  # outbound traffic it itself terminates
    transient_in_bps: float   # inbound traffic it carries for its cone
    transient_out_bps: float  # outbound traffic it carries for its cone

    @property
    def total_bps(self) -> float:
        """Combined contribution to the offload potential."""
        return (
            self.origin_bps
            + self.destination_bps
            + self.transient_in_bps
            + self.transient_out_bps
        )

    @property
    def endpoint_dominant(self) -> bool:
        """Whether own origin/destination traffic exceeds transient."""
        own = self.origin_bps + self.destination_bps
        transient = self.transient_in_bps + self.transient_out_bps
        return own >= transient


class OffloadEstimator:
    """Offload arithmetic over a built world and its peer groups.

    All reachability queries run off one precomputed boolean
    *cone-membership matrix* per peer group: row ``k`` is the offloadable
    mask of the ``k``-th reachable IXP (sorted by acronym), column ``i``
    the ``i``-th contributing network.  Masks, unions and traffic sums are
    then row reductions instead of per-member Python loops, which is what
    makes many-seed offload ensembles and the greedy expansion cheap.
    """

    def __init__(self, world: OffloadWorld, groups: PeerGroups | None = None):
        self.world = world
        self.groups = groups or PeerGroups.build(world)
        self._ixp_row: dict[str, int] = {
            acronym: row
            for row, acronym in enumerate(sorted(world.memberships))
        }
        self._matrices: dict[int, np.ndarray] = {}
        self._matrices_float: dict[int, np.ndarray] = {}
        self._transient: dict[str, np.ndarray] | None = None

    # -- masks -------------------------------------------------------------------

    def group_matrix(self, group: int) -> np.ndarray:
        """The (IXP × contributing) cone-membership bitset for one group.

        Rows follow :meth:`reachable_ixps` order.  The array is cached and
        marked read-only — callers operate on row views.
        """
        world = self.world

        def row_arrays():
            in_group = self.groups.group_members(group)
            return (
                (
                    row,
                    [
                        world.cone_contrib_indices(member)
                        for member in world.memberships[acronym] & in_group
                    ],
                )
                for acronym, row in self._ixp_row.items()
            )

        return cached_group_bitset(
            self._matrices, group, ALL_GROUPS,
            (len(self._ixp_row), len(world.contributing)), row_arrays,
        )

    def group_matrix_float(self, group: int) -> np.ndarray:
        """Float32 view of :meth:`group_matrix` for gain products.

        Selection-grade precision only: greedy argmaxes run on it, while
        every reported traffic number comes from float64 masked sums.
        """
        cached = self._matrices_float.get(group)
        if cached is None:
            cached = self.group_matrix(group).astype(np.float32)
            cached.setflags(write=False)
            self._matrices_float[group] = cached
        return cached

    def _row_of(self, ixp_acronym: str) -> int:
        row = self._ixp_row.get(ixp_acronym)
        if row is None:
            raise ConfigurationError(f"unknown IXP {ixp_acronym!r}")
        return row

    def ixp_mask(self, ixp_acronym: str, group: int) -> np.ndarray:
        """Offloadable-contributor mask for one IXP and peer group."""
        return self.group_matrix(group)[self._row_of(ixp_acronym)]

    def mask_for(self, ixps: Iterable[str], group: int) -> np.ndarray:
        """Offloadable mask for a set of reached IXPs."""
        matrix = self.group_matrix(group)
        rows = [self._row_of(acronym) for acronym in ixps]
        if not rows:
            return np.zeros(len(self.world.contributing), dtype=bool)
        return matrix[rows].any(axis=0)

    def reachable_ixps(self) -> list[str]:
        """All IXPs in the study's reachable set, sorted."""
        return sorted(self._ixp_row)

    # -- traffic -------------------------------------------------------------------

    def offload_bps(
        self, ixps: Iterable[str], group: int
    ) -> tuple[float, float]:
        """(inbound, outbound) offloadable traffic for reached IXPs."""
        mask = self.mask_for(ixps, group)
        matrix = self.world.matrix
        return (
            float(matrix.inbound_bps[mask].sum()),
            float(matrix.outbound_bps[mask].sum()),
        )

    def offload_fractions(
        self, ixps: Iterable[str], group: int
    ) -> tuple[float, float]:
        """(inbound, outbound) offload as fractions of the transit traffic."""
        inbound, outbound = self.offload_bps(ixps, group)
        matrix = self.world.matrix
        return (
            inbound / float(matrix.inbound_bps.sum()),
            outbound / float(matrix.outbound_bps.sum()),
        )

    def offloadable_network_count(self, ixps: Iterable[str], group: int) -> int:
        """Networks whose traffic shifts (paper: 12,238 at 65 IXPs/group 4)."""
        return int(self.mask_for(ixps, group).sum())

    def single_ixp_ranking(self, group: int, top: int = 10) -> list[tuple[str, float]]:
        """IXPs ranked by single-IXP offload potential (Figure 7's x-axis)."""
        matrix = self.group_matrix(group)
        world_matrix = self.world.matrix
        totals = world_matrix.inbound_bps + world_matrix.outbound_bps
        scored = [
            (acronym, float(totals[matrix[row]].sum()))
            for acronym, row in self._ixp_row.items()
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top]

    def ranked_offload_rates(
        self, ixps: Iterable[str], group: int, direction: str
    ) -> np.ndarray:
        """Figure 5a's overlay: offloadable per-network rates, rank-sorted."""
        mask = self.mask_for(ixps, group)
        matrix = self.world.matrix
        if direction == "inbound":
            rates = matrix.inbound_bps[mask]
        elif direction == "outbound":
            rates = matrix.outbound_bps[mask]
        else:
            raise ConfigurationError(f"unknown direction {direction!r}")
        return np.sort(rates)[::-1]

    # -- figure 6: contributor decomposition -------------------------------------------

    def _transient_arrays(self) -> dict[str, np.ndarray]:
        """Per-AS transient traffic, from the AS paths of every flow.

        One pass collects (hop, contributor) pairs; the per-hop sums are
        then two weighted bincounts instead of ~100k scalar additions.
        """
        if self._transient is not None:
            return self._transient
        world = self.world
        size = len(world.graph)
        index = {asn: i for i, asn in enumerate(world.graph.asns())}
        hop_rows: list[int] = []
        contrib_rows: list[int] = []
        for contrib_idx, asn in enumerate(world.contributing):
            path = world.inbound_paths.get(asn)
            if path is None:
                continue
            intermediaries = path.intermediaries()
            hop_rows.extend(index[hop] for hop in intermediaries)
            contrib_rows.extend([contrib_idx] * len(intermediaries))
        hops = np.asarray(hop_rows, dtype=np.intp)
        contribs = np.asarray(contrib_rows, dtype=np.intp)
        transient_in = np.bincount(
            hops, weights=world.matrix.inbound_bps[contribs], minlength=size
        ).astype(float)
        transient_out = np.bincount(
            hops, weights=world.matrix.outbound_bps[contribs], minlength=size
        ).astype(float)
        self._transient = {
            "in": transient_in,
            "out": transient_out,
            "_index": index,  # type: ignore[dict-item]
        }
        return self._transient

    def contributor_share(self, asn: ASN) -> ContributorShare:
        """Traffic decomposition of one candidate peer (Figure 6 row)."""
        world = self.world
        arrays = self._transient_arrays()
        index: dict[ASN, int] = arrays["_index"]  # type: ignore[assignment]
        contrib_idx = world.contributing_index(asn)
        origin = destination = 0.0
        if contrib_idx is not None:
            origin = float(world.matrix.inbound_bps[contrib_idx])
            destination = float(world.matrix.outbound_bps[contrib_idx])
        hop_idx = index[asn]
        asys = world.graph.get(asn)
        return ContributorShare(
            asn=asn,
            name=asys.name,
            kind=asys.kind,
            origin_bps=origin,
            destination_bps=destination,
            transient_in_bps=float(arrays["in"][hop_idx]),
            transient_out_bps=float(arrays["out"][hop_idx]),
        )

    def top_contributors(
        self, group: int = 4, top: int = 30, ixps: Iterable[str] | None = None
    ) -> list[ContributorShare]:
        """The top contributors to the offload potential (Figure 6)."""
        reached = list(ixps) if ixps is not None else self.reachable_ixps()
        members: set[ASN] = set()
        for acronym in reached:
            members |= self.groups.ixp_group_members(acronym, group)
        shares = [self.contributor_share(asn) for asn in members]
        shares.sort(key=lambda s: (-s.total_bps, s.asn))
        return shares[:top]
