"""The offload-potential estimator (Figures 5–7).

The estimator answers: *if the studied network could peer at these IXPs
with this peer group, how much transit traffic would move off its
providers?*  Offloadability is customer-cone membership: a contributing
network's traffic shifts when some reachable peer carries it in its cone
(Section 4.2's "fully shifting to remote peering the traffic that the
networks of this peer group and their customer cones contribute").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.offload.peergroups import ALL_GROUPS, PeerGroups
from repro.errors import ConfigurationError
from repro.sim.offload_world import OffloadWorld
from repro.types import ASN, NetworkKind


@dataclass(frozen=True, slots=True)
class ContributorShare:
    """Figure 6 row: one top contributor's traffic decomposition."""

    asn: ASN
    name: str
    kind: NetworkKind
    origin_bps: float       # inbound traffic the network itself originates
    destination_bps: float  # outbound traffic it itself terminates
    transient_in_bps: float   # inbound traffic it carries for its cone
    transient_out_bps: float  # outbound traffic it carries for its cone

    @property
    def total_bps(self) -> float:
        """Combined contribution to the offload potential."""
        return (
            self.origin_bps
            + self.destination_bps
            + self.transient_in_bps
            + self.transient_out_bps
        )

    @property
    def endpoint_dominant(self) -> bool:
        """Whether own origin/destination traffic exceeds transient."""
        own = self.origin_bps + self.destination_bps
        transient = self.transient_in_bps + self.transient_out_bps
        return own >= transient


class OffloadEstimator:
    """Offload arithmetic over a built world and its peer groups."""

    def __init__(self, world: OffloadWorld, groups: PeerGroups | None = None):
        self.world = world
        self.groups = groups or PeerGroups.build(world)
        self._member_cone_idx: dict[ASN, np.ndarray] = {}
        self._mask_cache: dict[tuple[str, int], np.ndarray] = {}
        self._transient: dict[str, np.ndarray] | None = None

    # -- masks -------------------------------------------------------------------

    def _cone_indices(self, member: ASN) -> np.ndarray:
        """Contributing-array indices covered by one member's cone."""
        cached = self._member_cone_idx.get(member)
        if cached is not None:
            return cached
        indices = [
            idx
            for asn in self.world.cone(member)
            if (idx := self.world.contributing_index(asn)) is not None
        ]
        array = np.array(sorted(indices), dtype=np.int32)
        self._member_cone_idx[member] = array
        return array

    def ixp_mask(self, ixp_acronym: str, group: int) -> np.ndarray:
        """Offloadable-contributor mask for one IXP and peer group."""
        key = (ixp_acronym, group)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        mask = np.zeros(len(self.world.contributing), dtype=bool)
        for member in self.groups.ixp_group_members(ixp_acronym, group):
            mask[self._cone_indices(member)] = True
        self._mask_cache[key] = mask
        return mask

    def mask_for(self, ixps: Iterable[str], group: int) -> np.ndarray:
        """Offloadable mask for a set of reached IXPs."""
        if group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {group}")
        mask = np.zeros(len(self.world.contributing), dtype=bool)
        for acronym in ixps:
            mask |= self.ixp_mask(acronym, group)
        return mask

    def reachable_ixps(self) -> list[str]:
        """All IXPs in the study's reachable set, sorted."""
        return sorted(self.world.memberships)

    # -- traffic -------------------------------------------------------------------

    def offload_bps(
        self, ixps: Iterable[str], group: int
    ) -> tuple[float, float]:
        """(inbound, outbound) offloadable traffic for reached IXPs."""
        mask = self.mask_for(ixps, group)
        matrix = self.world.matrix
        return (
            float(matrix.inbound_bps[mask].sum()),
            float(matrix.outbound_bps[mask].sum()),
        )

    def offload_fractions(
        self, ixps: Iterable[str], group: int
    ) -> tuple[float, float]:
        """(inbound, outbound) offload as fractions of the transit traffic."""
        inbound, outbound = self.offload_bps(ixps, group)
        matrix = self.world.matrix
        return (
            inbound / float(matrix.inbound_bps.sum()),
            outbound / float(matrix.outbound_bps.sum()),
        )

    def offloadable_network_count(self, ixps: Iterable[str], group: int) -> int:
        """Networks whose traffic shifts (paper: 12,238 at 65 IXPs/group 4)."""
        return int(self.mask_for(ixps, group).sum())

    def single_ixp_ranking(self, group: int, top: int = 10) -> list[tuple[str, float]]:
        """IXPs ranked by single-IXP offload potential (Figure 7's x-axis)."""
        scored = []
        for acronym in self.reachable_ixps():
            inbound, outbound = self.offload_bps([acronym], group)
            scored.append((acronym, inbound + outbound))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top]

    def ranked_offload_rates(
        self, ixps: Iterable[str], group: int, direction: str
    ) -> np.ndarray:
        """Figure 5a's overlay: offloadable per-network rates, rank-sorted."""
        mask = self.mask_for(ixps, group)
        matrix = self.world.matrix
        if direction == "inbound":
            rates = matrix.inbound_bps[mask]
        elif direction == "outbound":
            rates = matrix.outbound_bps[mask]
        else:
            raise ConfigurationError(f"unknown direction {direction!r}")
        return np.sort(rates)[::-1]

    # -- figure 6: contributor decomposition -------------------------------------------

    def _transient_arrays(self) -> dict[str, np.ndarray]:
        """Per-AS transient traffic, from the AS paths of every flow."""
        if self._transient is not None:
            return self._transient
        world = self.world
        size = len(world.graph)
        index = {asn: i for i, asn in enumerate(world.graph.asns())}
        transient_in = np.zeros(size)
        transient_out = np.zeros(size)
        for contrib_idx, asn in enumerate(world.contributing):
            path = world.inbound_paths.get(asn)
            if path is None:
                continue
            inbound = float(world.matrix.inbound_bps[contrib_idx])
            outbound = float(world.matrix.outbound_bps[contrib_idx])
            for hop in path.intermediaries():
                hop_idx = index[hop]
                transient_in[hop_idx] += inbound
                transient_out[hop_idx] += outbound
        self._transient = {
            "in": transient_in,
            "out": transient_out,
            "_index": index,  # type: ignore[dict-item]
        }
        return self._transient

    def contributor_share(self, asn: ASN) -> ContributorShare:
        """Traffic decomposition of one candidate peer (Figure 6 row)."""
        world = self.world
        arrays = self._transient_arrays()
        index: dict[ASN, int] = arrays["_index"]  # type: ignore[assignment]
        contrib_idx = world.contributing_index(asn)
        origin = destination = 0.0
        if contrib_idx is not None:
            origin = float(world.matrix.inbound_bps[contrib_idx])
            destination = float(world.matrix.outbound_bps[contrib_idx])
        hop_idx = index[asn]
        asys = world.graph.get(asn)
        return ContributorShare(
            asn=asn,
            name=asys.name,
            kind=asys.kind,
            origin_bps=origin,
            destination_bps=destination,
            transient_in_bps=float(arrays["in"][hop_idx]),
            transient_out_bps=float(arrays["out"][hop_idx]),
        )

    def top_contributors(
        self, group: int = 4, top: int = 30, ixps: Iterable[str] | None = None
    ) -> list[ContributorShare]:
        """The top contributors to the offload potential (Figure 6)."""
        reached = list(ixps) if ixps is not None else self.reachable_ixps()
        members: set[ASN] = set()
        for acronym in reached:
            members |= self.groups.ixp_group_members(acronym, group)
        shares = [self.contributor_share(asn) for asn in members]
        shares.sort(key=lambda s: (-s.total_bps, s.asn))
        return shares[:top]
