"""Peer-group construction with the paper's exclusion rules (Section 4.2).

Candidates are the members of the 65 reachable IXPs minus networks highly
unlikely to peer with the studied NREN:

1. its transit providers (providers do not peer with customers — and the
   tier-1s have no providers of their own, so no transitive rule is
   needed);
2. members of the two IXPs it already belongs to (CATNIX, ESpanix) — this
   sweeps in every other tier-1;
3. fellow GÉANT members (already cheaply interconnected).

The four peer groups then slice candidates by PeeringDB policy:
group 1 = open, group 2 = open + the 10 selective networks with the
largest individual offload potential, group 3 = open + selective,
group 4 = everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.offload_world import OffloadWorld
from repro.types import ASN, PeeringPolicy

#: Group numbering follows the paper.
ALL_GROUPS = (1, 2, 3, 4)

GROUP_LABELS = {
    1: "all open policies",
    2: "all open and top 10 selective policies",
    3: "all open and selective policies",
    4: "all policies",
}

#: How many selective networks group 2 adds on top of group 1.
TOP_SELECTIVE_COUNT = 10


@dataclass
class PeerGroups:
    """Candidate peers of the studied network, sliced into the 4 groups."""

    world: OffloadWorld
    candidates: frozenset[ASN] = field(default_factory=frozenset)
    top_selective: frozenset[ASN] = field(default_factory=frozenset)

    @classmethod
    def build(
        cls,
        world: OffloadWorld,
        exclude_transit_providers: bool = True,
        exclude_home_ixp_members: bool = True,
        exclude_geant_club: bool = True,
    ) -> "PeerGroups":
        """Apply the exclusion rules and rank the selective candidates.

        The three rule switches exist for ablation: the paper argues each
        exclusion removes networks "highly unlikely to peer" — disabling
        one shows how much potential that rule conservatively forgoes.
        """
        union: set[ASN] = set()
        for members in world.memberships.values():
            union |= members
        excluded: set[ASN] = {world.rediris}
        if exclude_transit_providers:  # rule 1
            excluded |= set(world.transit_providers)
        if exclude_home_ixp_members:  # rule 2
            excluded |= set(world.memberships.get("CATNIX", frozenset()))
            excluded |= set(world.memberships.get("ESpanix", frozenset()))
        if exclude_geant_club:  # rule 3
            excluded |= {world.geant, *world.nrens}
        candidates = frozenset(union - excluded)
        groups = cls(world=world, candidates=candidates)
        groups.top_selective = groups._rank_top_selective()
        return groups

    def restrict(self, allowed: frozenset[ASN]) -> "PeerGroups":
        """The groups limited to candidates in ``allowed``.

        This is how a *measured* peer map enters the offload arithmetic:
        the joint detection→offload study passes the set of members its
        detection campaign called remote, so every downstream estimate is
        computed over what an operator would actually see rather than the
        oracle candidate set.  ``top_selective`` is intersected, not
        re-ranked — the restriction models missing knowledge of peers, not
        a different ranking rule.
        """
        return PeerGroups(
            world=self.world,
            candidates=self.candidates & allowed,
            top_selective=self.top_selective & allowed,
        )

    def _rank_top_selective(self) -> frozenset[ASN]:
        """The 10 selective candidates with the largest offload potential.

        A candidate's individual potential is the transit traffic of its
        customer cone (itself included), combined inbound + outbound.
        """
        world = self.world
        total_bps = world.matrix.total_bps
        scored: list[tuple[float, ASN]] = []
        for asn in self.candidates:
            if world.policy_of(asn) is not PeeringPolicy.SELECTIVE:
                continue
            # Cone membership comes from the world's precomputed index
            # tables: one array reduction per selective candidate instead
            # of a Python walk over its cone.
            potential = float(total_bps[world.cone_contrib_indices(asn)].sum())
            scored.append((potential, asn))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return frozenset(asn for _, asn in scored[:TOP_SELECTIVE_COUNT])

    # -- group membership ---------------------------------------------------------

    def in_group(self, asn: ASN, group: int) -> bool:
        """Whether candidate ``asn`` belongs to peer group ``group``."""
        if group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {group}")
        if asn not in self.candidates:
            return False
        policy = self.world.policy_of(asn)
        if group == 4:
            return True
        if group == 3:
            return policy in (PeeringPolicy.OPEN, PeeringPolicy.SELECTIVE)
        if group == 2:
            return policy is PeeringPolicy.OPEN or asn in self.top_selective
        return policy is PeeringPolicy.OPEN

    def group_members(self, group: int) -> frozenset[ASN]:
        """All candidates in one peer group."""
        return frozenset(a for a in self.candidates if self.in_group(a, group))

    def ixp_group_members(self, ixp_acronym: str, group: int) -> frozenset[ASN]:
        """Group members with a membership at one IXP."""
        members = self.world.memberships.get(ixp_acronym)
        if members is None:
            raise ConfigurationError(f"unknown IXP {ixp_acronym!r}")
        return frozenset(a for a in members if self.in_group(a, group))

    def candidate_count(self) -> int:
        """Total candidates after exclusions (paper: 2,192)."""
        return len(self.candidates)
