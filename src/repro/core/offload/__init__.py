"""Traffic offload potential estimation (paper Section 4).

Given the offload world, :class:`PeerGroups` applies the paper's exclusion
rules and builds the four policy-based peer groups;
:class:`OffloadEstimator` computes offloadable traffic for any set of
reached IXPs; :mod:`repro.core.offload.greedy` grows the reached set
iteratively (Figures 8/9); :mod:`repro.core.offload.reachability`
generalizes the metric to address space (Figure 10).
"""

from repro.core.offload.peergroups import (
    ALL_GROUPS,
    GROUP_LABELS,
    PeerGroups,
)
from repro.core.offload.potential import ContributorShare, OffloadEstimator
from repro.core.offload.greedy import (
    GreedyStep,
    greedy_expansion,
    remaining_traffic_series,
    second_ixp_matrix,
)
from repro.core.offload.reachability import (
    ReachabilityStep,
    greedy_reachability,
)

__all__ = [
    "ALL_GROUPS",
    "GROUP_LABELS",
    "PeerGroups",
    "ContributorShare",
    "OffloadEstimator",
    "GreedyStep",
    "greedy_expansion",
    "remaining_traffic_series",
    "second_ixp_matrix",
    "ReachabilityStep",
    "greedy_reachability",
]
