"""Shared cone-bitset machinery for the offload estimators.

Both reachability metrics — transit traffic (:mod:`.potential` /
:mod:`.greedy`) and address space (:mod:`.reachability`) — run on the
same two kernels:

* :func:`assemble_bitset` COO-assembles one boolean (row × column)
  cone-membership matrix from per-row index arrays;
* :func:`greedy_cover_rows` drives a greedy set-cover expansion over such
  a matrix: one gain matrix-vector product and one argmax per rank, with
  the chosen row zeroing the uncovered-weight vector in place.

Keeping them here means tie-break, dtype and empty-input behaviour cannot
drift between the two metrics.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError


def assemble_bitset(
    shape: tuple[int, int],
    row_arrays: Iterable[tuple[int, list[np.ndarray]]],
) -> np.ndarray:
    """COO-assemble a read-only boolean matrix from per-row index arrays.

    ``row_arrays`` yields ``(row, arrays)`` pairs where each array holds
    column indices to set in that row (duplicates are fine).  One
    concatenated scatter replaces a fancy assignment per array, which is
    what makes cold greedy expansions cheap.
    """
    matrix = np.zeros(shape, dtype=bool)
    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    for row, arrays in row_arrays:
        if not arrays:
            continue
        columns = np.concatenate(arrays)
        col_chunks.append(columns)
        row_chunks.append(np.full(len(columns), row, dtype=np.int32))
    if col_chunks:
        matrix[np.concatenate(row_chunks), np.concatenate(col_chunks)] = True
    matrix.setflags(write=False)
    return matrix


def cached_group_bitset(
    cache: dict[int, np.ndarray],
    group: int,
    valid_groups: Iterable[int],
    shape: tuple[int, int],
    row_arrays: Callable[[], Iterable[tuple[int, list[np.ndarray]]]],
) -> np.ndarray:
    """Validate-and-cache wrapper around :func:`assemble_bitset`.

    Both per-group matrix holders (the traffic estimator and the
    address-space metric) share this: unknown groups raise, hits return
    the cached read-only matrix, misses assemble and store it.
    ``row_arrays`` is called lazily so cache hits pay nothing.
    """
    cached = cache.get(group)
    if cached is not None:
        return cached
    if group not in valid_groups:
        raise ConfigurationError(f"unknown peer group {group}")
    matrix = assemble_bitset(shape, row_arrays())
    cache[group] = matrix
    return matrix


def greedy_cover_rows(
    bitset: np.ndarray,
    gain_matrix: np.ndarray,
    uncovered: np.ndarray,
    limit: int,
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Greedy set-cover order over a cone bitset.

    Yields ``(rank, row, covered)`` per step: ``row`` is the first (i.e.
    lowest-index — ties resolve to the first row, which is alphabetical
    for acronym-sorted matrices) argmax of ``gain_matrix @ uncovered``
    among the still-active rows; ``covered`` is the running column
    coverage after adding it.  ``uncovered`` is zeroed in place on the
    chosen row's columns (incremental coverage), so callers pass a
    selection-grade working copy.  Stops after ``limit`` steps or when no
    active row remains; callers ``break`` on their own no-gain condition.
    """
    covered = np.zeros(bitset.shape[1], dtype=bool)
    active = np.ones(bitset.shape[0], dtype=bool)
    for rank in range(1, limit + 1):
        if not active.any():
            return
        gains = gain_matrix @ uncovered
        gains[~active] = -np.inf
        best = int(np.argmax(gains))
        row = bitset[best]
        covered |= row
        uncovered[row] = 0
        active[best] = False
        yield rank, best, covered
