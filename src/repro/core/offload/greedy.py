"""Greedy expansion of the reached-IXP set (Figures 8 and 9).

The paper "iteratively expand[s] the set of reached IXPs by adding the IXP
with the largest remaining offload potential" and observes exponentially
diminishing marginal utility, with ~5 IXPs realizing most of the total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.offload.potential import OffloadEstimator
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class GreedyStep:
    """One iteration of the expansion."""

    rank: int  # 1-based position in the greedy order
    ixp: str
    gained_inbound_bps: float
    gained_outbound_bps: float
    remaining_inbound_bps: float
    remaining_outbound_bps: float

    @property
    def gained_total_bps(self) -> float:
        """Traffic newly offloaded by this IXP."""
        return self.gained_inbound_bps + self.gained_outbound_bps

    @property
    def remaining_total_bps(self) -> float:
        """Transit traffic left after this step (Figure 9's y-axis)."""
        return self.remaining_inbound_bps + self.remaining_outbound_bps


def greedy_expansion(
    estimator: OffloadEstimator,
    group: int,
    max_ixps: int | None = None,
) -> list[GreedyStep]:
    """Grow the reached set greedily until no IXP adds traffic.

    Ties (including the all-zero tail) resolve alphabetically, which keeps
    runs deterministic.
    """
    world = estimator.world
    matrix = world.matrix
    total_in = float(matrix.inbound_bps.sum())
    total_out = float(matrix.outbound_bps.sum())
    candidates = estimator.reachable_ixps()
    limit = len(candidates) if max_ixps is None else min(max_ixps, len(candidates))
    if limit <= 0:
        raise ConfigurationError("max_ixps must be positive")

    covered = np.zeros(len(world.contributing), dtype=bool)
    steps: list[GreedyStep] = []
    remaining_candidates = list(candidates)
    for rank in range(1, limit + 1):
        best_ixp = None
        best_gain_in = best_gain_out = 0.0
        best_gain = -1.0
        for acronym in remaining_candidates:
            mask = estimator.ixp_mask(acronym, group)
            fresh = mask & ~covered
            gain_in = float(matrix.inbound_bps[fresh].sum())
            gain_out = float(matrix.outbound_bps[fresh].sum())
            gain = gain_in + gain_out
            if gain > best_gain:
                best_gain = gain
                best_ixp = acronym
                best_gain_in, best_gain_out = gain_in, gain_out
        if best_ixp is None:
            break
        covered |= estimator.ixp_mask(best_ixp, group)
        remaining_candidates.remove(best_ixp)
        offl_in = float(matrix.inbound_bps[covered].sum())
        offl_out = float(matrix.outbound_bps[covered].sum())
        steps.append(
            GreedyStep(
                rank=rank,
                ixp=best_ixp,
                gained_inbound_bps=best_gain_in,
                gained_outbound_bps=best_gain_out,
                remaining_inbound_bps=total_in - offl_in,
                remaining_outbound_bps=total_out - offl_out,
            )
        )
        if best_gain <= 0:
            break
    return steps


def remaining_traffic_series(
    estimator: OffloadEstimator, group: int, max_ixps: int | None = None
) -> list[float]:
    """Figure 9's series: remaining transit traffic after 0..k IXPs."""
    matrix = estimator.world.matrix
    total = float(matrix.inbound_bps.sum() + matrix.outbound_bps.sum())
    series = [total]
    for step in greedy_expansion(estimator, group, max_ixps):
        series.append(step.remaining_total_bps)
    return series


def second_ixp_matrix(
    estimator: OffloadEstimator, group: int, ixps: list[str]
) -> dict[str, dict[str, float]]:
    """Figure 8: offload potential at IXP B after fully peering at IXP A.

    Returns ``matrix[second][first]`` = potential (bps) remaining at
    ``second`` once the potential at ``first`` is realized; the diagonal
    holds each IXP's full single-IXP potential (``first == second``).
    """
    world = estimator.world
    matrix = world.matrix
    out: dict[str, dict[str, float]] = {}
    for second in ixps:
        second_mask = estimator.ixp_mask(second, group)
        row: dict[str, float] = {}
        for first in ixps:
            if first == second:
                fresh = second_mask
            else:
                fresh = second_mask & ~estimator.ixp_mask(first, group)
            row[first] = float(
                matrix.inbound_bps[fresh].sum() + matrix.outbound_bps[fresh].sum()
            )
        out[second] = row
    return out
