"""Greedy expansion of the reached-IXP set (Figures 8 and 9).

The paper "iteratively expand[s] the set of reached IXPs by adding the IXP
with the largest remaining offload potential" and observes exponentially
diminishing marginal utility, with ~5 IXPs realizing most of the total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.offload.bitsets import greedy_cover_rows
from repro.core.offload.potential import OffloadEstimator
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class GreedyStep:
    """One iteration of the expansion."""

    rank: int  # 1-based position in the greedy order
    ixp: str
    gained_inbound_bps: float
    gained_outbound_bps: float
    remaining_inbound_bps: float
    remaining_outbound_bps: float

    @property
    def gained_total_bps(self) -> float:
        """Traffic newly offloaded by this IXP."""
        return self.gained_inbound_bps + self.gained_outbound_bps

    @property
    def remaining_total_bps(self) -> float:
        """Transit traffic left after this step (Figure 9's y-axis)."""
        return self.remaining_inbound_bps + self.remaining_outbound_bps


def greedy_expansion(
    estimator: OffloadEstimator,
    group: int,
    max_ixps: int | None = None,
) -> list[GreedyStep]:
    """Grow the reached set greedily until no IXP adds traffic.

    Ties (including the all-zero tail) resolve alphabetically, which keeps
    runs deterministic.

    Each rank is one matrix-vector product over the group's precomputed
    cone-membership bitset followed by an argmax: row ``k`` of the product
    is candidate ``k``'s fresh gain against the not-yet-covered traffic
    vector, which the chosen row then zeroes out (incremental coverage).
    The pre-bitset implementation recomputed every candidate's masked
    traffic sums in a Python loop per rank.
    """
    world = estimator.world
    matrix = world.matrix
    total_in = float(matrix.inbound_bps.sum())
    total_out = float(matrix.outbound_bps.sum())
    candidates = estimator.reachable_ixps()
    limit = len(candidates) if max_ixps is None else min(max_ixps, len(candidates))
    if limit <= 0:
        raise ConfigurationError("max_ixps must be positive")

    bitset = estimator.group_matrix(group)
    gain_matrix = estimator.group_matrix_float(group)
    # Same (selection-grade) dtype as the gain matrix: argmax picks the
    # winner, the step's reported numbers come from float64 masked sums.
    uncovered_total = (matrix.inbound_bps + matrix.outbound_bps).astype(
        np.float32
    )
    offl_in = offl_out = 0.0
    steps: list[GreedyStep] = []
    for rank, best, covered in greedy_cover_rows(
        bitset, gain_matrix, uncovered_total, limit
    ):
        best_ixp = candidates[best]
        previous_in, previous_out = offl_in, offl_out
        offl_in = float(matrix.inbound_bps[covered].sum())
        offl_out = float(matrix.outbound_bps[covered].sum())
        # The fresh gain is exactly the coverage delta (the row's fresh
        # indices are disjoint from the previous coverage).
        gain_in = offl_in - previous_in
        gain_out = offl_out - previous_out
        steps.append(
            GreedyStep(
                rank=rank,
                ixp=best_ixp,
                gained_inbound_bps=gain_in,
                gained_outbound_bps=gain_out,
                remaining_inbound_bps=total_in - offl_in,
                remaining_outbound_bps=total_out - offl_out,
            )
        )
        if gain_in + gain_out <= 0:
            break
    return steps


def remaining_traffic_series(
    estimator: OffloadEstimator, group: int, max_ixps: int | None = None
) -> list[float]:
    """Figure 9's series: remaining transit traffic after 0..k IXPs."""
    matrix = estimator.world.matrix
    total = float(matrix.inbound_bps.sum() + matrix.outbound_bps.sum())
    series = [total]
    for step in greedy_expansion(estimator, group, max_ixps):
        series.append(step.remaining_total_bps)
    return series


def second_ixp_matrix(
    estimator: OffloadEstimator, group: int, ixps: list[str]
) -> dict[str, dict[str, float]]:
    """Figure 8: offload potential at IXP B after fully peering at IXP A.

    Returns ``matrix[second][first]`` = potential (bps) remaining at
    ``second`` once the potential at ``first`` is realized; the diagonal
    holds each IXP's full single-IXP potential (``first == second``).
    """
    world = estimator.world
    matrix = world.matrix
    out: dict[str, dict[str, float]] = {}
    for second in ixps:
        second_mask = estimator.ixp_mask(second, group)
        row: dict[str, float] = {}
        for first in ixps:
            if first == second:
                fresh = second_mask
            else:
                fresh = second_mask & ~estimator.ixp_mask(first, group)
            row[first] = float(
                matrix.inbound_bps[fresh].sum() + matrix.outbound_bps[fresh].sum()
            )
        out[second] = row
    return out
