"""Fitting the transit-fraction decay from empirical offload curves.

Equation 3 generalizes Figure 9's measured curves as ``t = e^{-b·k}``
(k = reached IXPs).  Measured curves flatten at a floor — the transit
traffic no peer group can reach — so we fit ``t = floor + (1-floor)·decay``
with the floor chosen by grid search and the rate by least squares in log
space.  A power-law alternative ``(1+k)^{-a}`` lets the exponential-decay
modelling choice be ablated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class DecayFit:
    """A fitted decay model for the offloadable transit fraction."""

    family: str  # "exponential" | "power"
    rate: float  # b for exponential, a for power
    floor: float  # non-offloadable transit fraction (asymptote)
    sse: float  # sum of squared errors in fraction space

    def predict(self, k: np.ndarray | float) -> np.ndarray | float:
        """Predicted transit fraction after reaching ``k`` IXPs."""
        karr = np.asarray(k, dtype=float)
        span = 1.0 - self.floor
        if self.family == "exponential":
            values = self.floor + span * np.exp(-self.rate * karr)
        else:
            values = self.floor + span * (1.0 + karr) ** (-self.rate)
        return float(values) if np.isscalar(k) else values


def _normalise(remaining: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert a remaining-traffic series to fractions of the baseline."""
    remaining = np.asarray(remaining, dtype=float)
    if remaining.ndim != 1 or remaining.size < 3:
        raise AnalysisError("need a 1-D series of at least 3 points")
    if remaining[0] <= 0:
        raise AnalysisError("baseline traffic must be positive")
    fractions = remaining / remaining[0]
    if np.any(fractions < -1e-9) or np.any(fractions > 1.0 + 1e-9):
        raise AnalysisError("remaining traffic must be within [0, baseline]")
    ks = np.arange(fractions.size, dtype=float)
    return fractions, ks


def _rate_for_floor(
    family: str, fractions: np.ndarray, ks: np.ndarray, floor: float
) -> float:
    """Least-squares rate in log space for one candidate floor."""
    span = 1.0 - floor
    if span <= 0:
        return 0.0
    shifted = (fractions - floor) / span
    mask = shifted > 1e-9
    if mask.sum() < 2:
        return 0.0
    x = ks[mask] if family == "exponential" else np.log(1.0 + ks[mask])
    y = np.log(shifted[mask])
    x_centered = x - x.mean()
    denom = float(np.dot(x_centered, x_centered))
    if denom == 0:
        return 0.0
    slope = float(np.dot(x_centered, y - y.mean()) / denom)
    return max(0.0, -slope)


def _evaluate(
    family: str, fractions: np.ndarray, ks: np.ndarray, floor: float
) -> DecayFit:
    rate = _rate_for_floor(family, fractions, ks, floor)
    trial = DecayFit(family=family, rate=rate, floor=floor, sse=0.0)
    sse = float(np.sum((trial.predict(ks) - fractions) ** 2))
    return DecayFit(family=family, rate=rate, floor=floor, sse=sse)


def _fit(family: str, remaining: np.ndarray) -> DecayFit:
    fractions, ks = _normalise(remaining)
    observed_floor = float(fractions.min())
    # Stage 1 — coarse grid over [0, observed minimum]: the true asymptote
    # sits at or below the last observed point.
    best: DecayFit | None = None
    for floor in np.linspace(0.0, observed_floor, 26):
        candidate = _evaluate(family, fractions, ks, float(floor))
        if best is None or candidate.sse < best.sse:
            best = candidate
    assert best is not None
    # Stage 2 — refine around the winner: the rate estimate is sensitive to
    # the floor, so a finer local grid sharpens both.
    step = observed_floor / 25.0 if observed_floor > 0 else 0.0
    if step > 0:
        low = max(0.0, best.floor - step)
        high = min(observed_floor, best.floor + step)
        for floor in np.linspace(low, high, 41):
            candidate = _evaluate(family, fractions, ks, float(floor))
            if candidate.sse < best.sse:
                best = candidate
    return best


def fit_exponential_decay(remaining: np.ndarray) -> DecayFit:
    """Fit ``t(k) = floor + (1-floor)·e^{-b·k}`` to a remaining series."""
    return _fit("exponential", remaining)


def fit_power_decay(remaining: np.ndarray) -> DecayFit:
    """Fit ``t(k) = floor + (1-floor)·(1+k)^{-a}`` to a remaining series."""
    return _fit("power", remaining)
