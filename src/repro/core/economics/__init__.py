"""Economic viability of remote peering (paper Section 5).

The model prices three delivery options — transit, direct peering at ``n``
IXPs, remote peering at ``m`` IXPs — under the exponentially decaying
transit fraction ``t = e^{-b(n+m)}`` fitted from the offload study, and
derives the paper's closed forms: optimal direct-peering footprint ñ
(eq. 11), optimal remote-peering extension m̃ (eq. 13), and the viability
condition g(p−v)/(h(p−u)) ≥ e^b (eq. 14).
"""

from repro.core.economics.model import CostParameters, CostModel, Allocation
from repro.core.economics.fitting import (
    DecayFit,
    fit_exponential_decay,
    fit_power_decay,
)
from repro.core.economics.viability import (
    ViabilityVerdict,
    viability_condition,
    viability_threshold_b,
    viability_grid,
    african_scenario,
)

__all__ = [
    "CostParameters",
    "CostModel",
    "Allocation",
    "DecayFit",
    "fit_exponential_decay",
    "fit_power_decay",
    "ViabilityVerdict",
    "viability_condition",
    "viability_threshold_b",
    "viability_grid",
    "african_scenario",
]
