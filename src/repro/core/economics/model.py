"""The traffic-delivery cost model (paper equations 1–13).

A network delivers its global traffic through transit (fraction ``t``),
direct peering at ``n`` IXPs (fraction ``d``), and remote peering at ``m``
IXPs (fraction ``r``), with ``t + d + r = 1`` (eq. 1).  Reaching IXPs
shrinks the transit fraction exponentially, ``t = e^{-b(n+m)}`` (eq. 3),
generalizing the diminishing marginal utility measured in Section 4.  The
model follows the paper's sequential strategy: the network first optimises
a direct-peering footprint, then extends it with remote peering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EconomicsError


@dataclass(frozen=True, slots=True)
class CostParameters:
    """Prices and the decay rate (the paper's p, g, u, h, v, b).

    Constraints from Section 5.1: ``h < g`` (remote peering has the lower
    per-IXP fixed cost) and ``u < v < p`` (remote peering's per-unit cost
    sits between direct peering's and transit's).
    """

    p: float  # transit price per traffic unit
    g: float  # direct peering: per-IXP traffic-independent cost
    u: float  # direct peering: traffic-dependent cost per unit
    h: float  # remote peering: per-IXP traffic-independent cost
    v: float  # remote peering: traffic-dependent cost per unit
    b: float  # transit-fraction decay rate per reached IXP

    def __post_init__(self) -> None:
        if min(self.p, self.g, self.u, self.h, self.v) < 0:
            raise EconomicsError("prices cannot be negative")
        if not self.h < self.g:
            raise EconomicsError(
                f"remote fixed cost h={self.h} must be below direct g={self.g}"
            )
        if not self.u < self.v < self.p:
            raise EconomicsError(
                f"per-unit costs must satisfy u < v < p, got "
                f"u={self.u}, v={self.v}, p={self.p}"
            )
        if self.b < 0:
            raise EconomicsError("decay rate b cannot be negative")


@dataclass(frozen=True, slots=True)
class Allocation:
    """Traffic split for a given (n, m) under the sequential strategy."""

    n: float
    m: float
    t: float  # transit fraction
    d: float  # direct-peering fraction
    r: float  # remote-peering fraction

    def __post_init__(self) -> None:
        if self.n < 0 or self.m < 0:
            raise EconomicsError("IXP counts cannot be negative")
        total = self.t + self.d + self.r
        if abs(total - 1.0) > 1e-9:
            raise EconomicsError(f"fractions must sum to 1, got {total}")


class CostModel:
    """Total-cost arithmetic and the paper's closed-form optima."""

    def __init__(self, params: CostParameters) -> None:
        self.params = params

    # -- traffic fractions ---------------------------------------------------------

    def transit_fraction(self, n: float, m: float) -> float:
        """t = e^{-b(n+m)} (eq. 3)."""
        self._check_counts(n, m)
        return math.exp(-self.params.b * (n + m))

    def allocation(self, n: float, m: float) -> Allocation:
        """Traffic split when the first ``n`` IXPs are direct, next ``m`` remote.

        Direct peering keeps the traffic it would capture alone
        (``1 − e^{-bn}``); remote peering captures the increment — the split
        implied by the paper's equation 12.
        """
        self._check_counts(n, m)
        b = self.params.b
        t = math.exp(-b * (n + m))
        d = 1.0 - math.exp(-b * n)
        r = math.exp(-b * n) - t
        return Allocation(n=n, m=m, t=t, d=d, r=r)

    # -- costs -----------------------------------------------------------------------

    def total_cost(self, n: float, m: float) -> float:
        """C = p·t + g·n + u·d + h·m + v·r (eq. 9)."""
        a = self.allocation(n, m)
        p = self.params
        return p.p * a.t + p.g * a.n + p.u * a.d + p.h * a.m + p.v * a.r

    def transit_only_cost(self) -> float:
        """Cost of delivering everything through transit."""
        return self.params.p

    # -- closed-form optima ------------------------------------------------------------

    def optimal_direct(self) -> float:
        """ñ = ln(b(p−u)/g) / b (eq. 11), clamped at 0.

        When the expression is negative, even the first direct-peering IXP
        costs more than it saves, and the optimum is to buy transit only.
        """
        p = self.params
        if p.b == 0:
            return 0.0
        ratio = p.b * (p.p - p.u) / p.g
        if ratio <= 1.0:
            return 0.0
        return math.log(ratio) / p.b

    def optimal_direct_fraction(self) -> float:
        """d̃ = 1 − e^{-b·ñ} (eq. 11)."""
        return 1.0 - math.exp(-self.params.b * self.optimal_direct())

    def optimal_remote_extra(self) -> float:
        """m̃ = ln( g(p−v) / (h(p−u)) ) / b (eq. 13), clamped at 0.

        Equation 13 assumes equation 11's *interior* optimum ñ > 0.  When
        direct peering is not worth even one IXP (ñ clamped to 0), the
        optimal remote extension comes from minimising eq. 12 at n = 0:
        m* = ln(b(p−v)/h)/b.  Both cases are the same expression
        ``ln(b(p−v)/h)/b − ñ`` with the respective ñ.
        """
        p = self.params
        if p.b == 0:
            return 0.0
        remote_total = p.b * (p.p - p.v) / p.h
        if remote_total <= 1.0:
            return 0.0
        optimum = math.log(remote_total) / p.b - self.optimal_direct()
        return max(0.0, optimum)

    def remote_peering_viable(self) -> bool:
        """Eq. 14: remote peering pays off iff g(p−v)/(h(p−u)) ≥ e^b."""
        p = self.params
        if p.b == 0:
            return False
        return p.g * (p.p - p.v) / (p.h * (p.p - p.u)) >= math.exp(p.b)

    # -- numeric verification helpers -------------------------------------------------------

    def numeric_optimal_remote_extra(
        self, n: float | None = None, grid: int = 20_000, max_m: float = 60.0
    ) -> float:
        """Brute-force argmin over m at fixed n (tests the closed form)."""
        n = self.optimal_direct() if n is None else n
        best_m, best_cost = 0.0, self.total_cost(n, 0.0)
        for i in range(1, grid + 1):
            m = max_m * i / grid
            cost = self.total_cost(n, m)
            if cost < best_cost:
                best_m, best_cost = m, cost
        return best_m

    def _check_counts(self, n: float, m: float) -> None:
        if n < 0 or m < 0:
            raise EconomicsError("IXP counts cannot be negative")
