"""The economic-viability condition and its regional implications.

Equation 14: remote peering at one or more IXPs reduces total cost iff

    g·(p − v) / (h·(p − u))  ≥  e^b

— remote peering favours networks with *global* traffic (low ``b``) and
regions where its fixed-cost advantage ``g/h`` is large.  Section 5.2
singles out Africa: local IXPs offer little offload and transit is
expensive, so ``h ≪ g`` and remote peering to Europe wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.economics.model import CostModel, CostParameters
from repro.errors import EconomicsError


@dataclass(frozen=True, slots=True)
class ViabilityVerdict:
    """Outcome of the viability test for one parameter set."""

    params: CostParameters
    ratio: float        # g(p−v) / (h(p−u))
    threshold: float    # e^b
    viable: bool
    optimal_remote_ixps: float  # m̃ (0 when not viable)

    @property
    def margin(self) -> float:
        """log(ratio) − b: positive means viable with room to spare."""
        return math.log(self.ratio) - math.log(self.threshold)


def viability_condition(params: CostParameters) -> ViabilityVerdict:
    """Evaluate equation 14 for one parameter set."""
    ratio = params.g * (params.p - params.v) / (
        params.h * (params.p - params.u)
    )
    threshold = math.exp(params.b)
    model = CostModel(params)
    return ViabilityVerdict(
        params=params,
        ratio=ratio,
        threshold=threshold,
        viable=ratio >= threshold,
        optimal_remote_ixps=model.optimal_remote_extra(),
    )


def viability_threshold_b(params: CostParameters) -> float:
    """The largest decay rate b at which remote peering stays viable.

    From eq. 14: b* = ln( g(p−v) / (h(p−u)) ).  Networks with global
    traffic (b below b*) profit from remote peering; networks whose
    transit shrinks fast with few IXPs (b above b*) do not need it.
    """
    ratio = params.g * (params.p - params.v) / (
        params.h * (params.p - params.u)
    )
    if ratio <= 0:
        raise EconomicsError("degenerate prices: ratio must be positive")
    return math.log(ratio)


def viability_grid(
    base: CostParameters,
    g_over_h: np.ndarray,
    b_values: np.ndarray,
) -> np.ndarray:
    """Boolean viability matrix over (g/h ratio, b) — the Section 5 sweep.

    ``g`` is held at the base value and ``h`` derived from each ratio, so
    the constraint h < g stays satisfied for ratios > 1.
    """
    grid = np.zeros((len(g_over_h), len(b_values)), dtype=bool)
    for i, ratio in enumerate(g_over_h):
        if ratio <= 1.0:
            raise EconomicsError("g/h must exceed 1 (h < g by assumption)")
        h = base.g / float(ratio)
        for j, b in enumerate(b_values):
            params = CostParameters(
                p=base.p, g=base.g, u=base.u, h=h, v=base.v, b=float(b)
            )
            grid[i, j] = viability_condition(params).viable
    return grid


def african_scenario(b: float = 0.5) -> ViabilityVerdict:
    """Section 5.2's Africa case: h ≪ g because local IXPs offload little
    and transit is expensive.  Remote peering to a European hub wins for
    any realistic decay rate."""
    params = CostParameters(
        p=10.0,   # expensive transit
        g=8.0,    # extending own infrastructure to Europe: very costly
        u=1.0,
        h=0.8,    # remote-peering service: an order of magnitude cheaper
        v=3.0,
        b=b,
    )
    return viability_condition(params)
