"""The paper's contributions: detection, offload estimation, economics."""
