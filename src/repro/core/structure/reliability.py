"""Section 6's reliability warning: false multihoming redundancy.

"When a provider offers transit and remote peering, buying both might not
yield reliable multihoming" — the two services can share physical
infrastructure while looking independent on layer 3.  The report finds the
networks in exactly that position.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.structure.views import InterconnectionInventory
from repro.types import ASN


@dataclass(frozen=True, slots=True)
class ExposedNetwork:
    """One network whose transit and remote peering share an owner."""

    asn: ASN
    name: str
    carrier: str
    provider_name: str
    ixp_acronym: str


@dataclass(frozen=True, slots=True)
class FalseRedundancyReport:
    """How widespread the shared-fate multihoming pattern is."""

    remotely_peering_networks: int
    exposed: tuple[ExposedNetwork, ...]

    @property
    def exposed_count(self) -> int:
        """Networks with at least one shared-fate pairing."""
        return len({e.asn for e in self.exposed})

    @property
    def exposed_fraction(self) -> float:
        """Share of remotely peering networks that are exposed."""
        if self.remotely_peering_networks == 0:
            return 0.0
        return self.exposed_count / self.remotely_peering_networks


def false_redundancy_report(
    inventory: InterconnectionInventory,
) -> FalseRedundancyReport:
    """Find networks whose remote-peering provider is owned by a carrier
    they also buy transit from."""
    exposed: list[ExposedNetwork] = []
    remote_networks: set[ASN] = set()
    for attachment in inventory.remote_attachments():
        remote_networks.add(attachment.asn)
        assert attachment.provider_name is not None
        owner = inventory.provider_owner.get(attachment.provider_name)
        if owner is None:
            continue  # independent provider: genuinely redundant
        if owner in inventory.transit_of.get(attachment.asn, ()):
            exposed.append(
                ExposedNetwork(
                    asn=attachment.asn,
                    name=attachment.network_name,
                    carrier=owner,
                    provider_name=attachment.provider_name,
                    ixp_acronym=attachment.ixp_acronym,
                )
            )
    return FalseRedundancyReport(
        remotely_peering_networks=len(remote_networks),
        exposed=tuple(exposed),
    )
