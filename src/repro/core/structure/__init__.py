"""Structural analysis: the paper's titular claim, quantified.

Section 1/6 argue that remote peering separates two trends that layer-3
models conflate: peering relationships increase, yet the number of
*organizations* on paths does not necessarily decrease, because the
remote-peering provider is an invisible layer-2 middleman.  This package
builds both views of a measured world — the traditional AS-only layer-3
topology and the layer-2-aware economic-entity topology — and computes
the flattening and reliability metrics the paper discusses.
"""

from repro.core.structure.entities import (
    EconomicEntity,
    EntityKind,
    EntityPath,
)
from repro.core.structure.views import (
    InterconnectionInventory,
    Layer2AwareView,
    Layer3View,
    build_inventory,
)
from repro.core.structure.flattening import (
    FlatteningReport,
    flattening_report,
)
from repro.core.structure.reliability import (
    FalseRedundancyReport,
    false_redundancy_report,
)

__all__ = [
    "EconomicEntity",
    "EntityKind",
    "EntityPath",
    "InterconnectionInventory",
    "Layer2AwareView",
    "Layer3View",
    "build_inventory",
    "FlatteningReport",
    "flattening_report",
    "FalseRedundancyReport",
    "false_redundancy_report",
]
