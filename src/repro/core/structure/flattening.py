"""Quantifying "more peering without Internet flattening".

For every remote attachment in the measured world, three representations
of the same reachability exist:

* the **displaced transit path** through the network's carrier(s);
* the **layer-3 view** of the new peering path (two ASes, no middlemen —
  this is what makes the Internet look flatter);
* the **layer-2-aware path**, where the remote-peering provider and the
  IXP reappear as intermediary organizations.

The report aggregates intermediary counts across all peering pairs a
remote attachment enables, yielding the paper's headline: peering
relationships grow while the organization count on paths does not shrink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.structure.views import (
    InterconnectionInventory,
    Layer2AwareView,
    Layer3View,
)
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class FlatteningReport:
    """Aggregated structural comparison over one world."""

    peering_pairs_total: int          # all member pairs across IXPs
    peering_pairs_remote: int         # pairs with >= 1 remote side
    mean_intermediaries_transit: float
    mean_intermediaries_l3_view: float
    mean_intermediaries_l2_aware: float
    invisible_intermediary_fraction: float  # orgs layer 3 cannot see

    @property
    def peering_increased(self) -> bool:
        """Remote peering enables relationships that need no new buildout."""
        return self.peering_pairs_remote > 0

    @property
    def flattened_on_layer3(self) -> bool:
        """The layer-3 illusion: paths look shorter than transit."""
        return self.mean_intermediaries_l3_view < self.mean_intermediaries_transit

    @property
    def flattened_in_reality(self) -> bool:
        """The layer-2-aware truth (the paper: not necessarily flatter)."""
        return self.mean_intermediaries_l2_aware < self.mean_intermediaries_transit


def flattening_report(
    inventory: InterconnectionInventory,
    max_pairs_per_ixp: int = 2_000,
) -> FlatteningReport:
    """Build the structural comparison from an inventory.

    For each IXP, every (remote member, other member) pair is one enabled
    peering relationship; ``max_pairs_per_ixp`` caps the enumeration at
    large IXPs (the metric is a mean, so capping adds no bias beyond
    truncating identical terms).
    """
    l3 = Layer3View(inventory)
    l2 = Layer2AwareView(inventory)

    pairs_total = sum(
        inventory.peering_pairs_at(acronym) for acronym in inventory.ixps()
    )
    remote_pairs = 0
    transit_sum = l3_sum = l2_sum = 0.0
    invisible = 0
    organizations = 0

    for acronym in inventory.ixps():
        members = inventory.members_at(acronym)
        remote_members = [m for m in members if m.remote]
        counted = 0
        for a in remote_members:
            for b in members:
                if b.asn == a.asn:
                    continue
                if counted >= max_pairs_per_ixp:
                    break
                counted += 1
                remote_pairs += 1
                transit_sum += l3.transit_path(a, b).intermediary_count()
                l3_sum += l3.peering_path(a, b).intermediary_count()
                l2_path = l2.peering_path(a, b)
                l2_sum += l2_path.intermediary_count()
                invisible += len(l2_path.invisible_intermediaries())
                organizations += l2_path.intermediary_count()
            if counted >= max_pairs_per_ixp:
                break

    if remote_pairs == 0:
        raise AnalysisError("world contains no remote peering to analyze")
    return FlatteningReport(
        peering_pairs_total=pairs_total,
        peering_pairs_remote=remote_pairs,
        mean_intermediaries_transit=transit_sum / remote_pairs,
        mean_intermediaries_l3_view=l3_sum / remote_pairs,
        mean_intermediaries_l2_aware=l2_sum / remote_pairs,
        invisible_intermediary_fraction=(
            invisible / organizations if organizations else 0.0
        ),
    )
