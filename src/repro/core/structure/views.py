"""Layer-3 and layer-2-aware views of a measured interconnection world.

The inventory extracts, from a detection world, who attaches where and how
(direct port or remote-peering circuit), who everyone buys transit from,
and which layer-2 providers are owned by which transit carriers — the
facts Section 6's reliability/accountability discussion turns on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.structure.entities import (
    EconomicEntity,
    EntityPath,
    ixp_entity,
    network_entity,
    provider_entity,
)
from repro.errors import ConfigurationError
from repro.rand import derive_seed
from repro.sim.detection_world import DetectionWorld
from repro.types import ASN

#: Synthetic transit carriers networks buy from (the inventory's upstream
#: world).  Some of them also run a remote-peering business — the paper's
#: "traditional transit providers that leverage their traffic-delivery
#: expertise to act as remote-peering intermediaries".
_CARRIERS = (
    "carrier-0", "carrier-1", "carrier-2", "carrier-3", "carrier-4",
    "carrier-5",
)

#: Remote-peering provider -> owning transit carrier (None = independent,
#: the IX-Reach/Atrato-style pure plays).
_PROVIDER_OWNERS: dict[str, str | None] = {
    "reachix": None,
    "atrato-like": None,
    "l2carrier": "carrier-2",
    "metrowave": "carrier-0",
}


@dataclass(frozen=True, slots=True)
class Attachment:
    """One (network, IXP) membership with its physical modality."""

    asn: ASN
    network_name: str
    ixp_acronym: str
    remote: bool
    provider_name: str | None  # set iff remote

    def __post_init__(self) -> None:
        if self.remote and self.provider_name is None:
            raise ConfigurationError("remote attachment needs a provider")


@dataclass
class InterconnectionInventory:
    """Everything both structural views are built from."""

    attachments: list[Attachment]
    transit_of: dict[ASN, tuple[str, ...]]
    provider_owner: dict[str, str | None]
    network_names: dict[ASN, str]
    _by_ixp: dict[str, list[Attachment]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_ixp:
            for attachment in self.attachments:
                self._by_ixp.setdefault(attachment.ixp_acronym, []).append(
                    attachment
                )

    def ixps(self) -> list[str]:
        """IXPs with at least one attachment, sorted."""
        return sorted(self._by_ixp)

    def members_at(self, ixp_acronym: str) -> list[Attachment]:
        """Attachments at one IXP."""
        return list(self._by_ixp.get(ixp_acronym, []))

    def remote_attachments(self) -> list[Attachment]:
        """All remote-peering attachments."""
        return [a for a in self.attachments if a.remote]

    def peering_pairs_at(self, ixp_acronym: str) -> int:
        """Potential peering relationships an IXP enables: member pairs."""
        n = len(self._by_ixp.get(ixp_acronym, []))
        return n * (n - 1) // 2


def build_inventory(world: DetectionWorld, seed: int = 0) -> InterconnectionInventory:
    """Extract the inventory from a detection world.

    Transit assignments are synthesized deterministically (the detection
    world models IXP LANs, not the transit mesh): every network buys from
    one or two of the six carriers, chosen by seeded hash.
    """
    attachments: list[Attachment] = []
    names: dict[ASN, str] = {}
    transit: dict[ASN, tuple[str, ...]] = {}
    for acronym, ixp in sorted(world.ixps.items()):
        for member in ixp.members:
            asn = member.network.asn
            names[asn] = member.network.name
            if asn not in transit:
                transit[asn] = _assign_carriers(asn, seed)
            for iface in member.interfaces:
                provider = None
                if iface.is_remote:
                    assert iface.port.pseudowire is not None
                    provider = _provider_of(world, iface)
                attachments.append(
                    Attachment(
                        asn=asn,
                        network_name=member.network.name,
                        ixp_acronym=acronym,
                        remote=iface.is_remote,
                        provider_name=provider,
                    )
                )
    return InterconnectionInventory(
        attachments=attachments,
        transit_of=transit,
        provider_owner=dict(_PROVIDER_OWNERS),
        network_names=names,
    )


def _assign_carriers(asn: ASN, seed: int) -> tuple[str, ...]:
    first = _CARRIERS[derive_seed(seed, "carrier-a", asn) % len(_CARRIERS)]
    if derive_seed(seed, "multi", asn) % 100 < 45:  # ~45% multihomed
        second = _CARRIERS[
            derive_seed(seed, "carrier-b", asn) % len(_CARRIERS)
        ]
        if second != first:
            return (first, second)
    return (first,)


def _provider_of(world: DetectionWorld, iface) -> str:
    """Which provider provisioned this interface's pseudowire."""
    wire = iface.port.pseudowire
    for provider in world.providers:
        if wire in provider.circuits:
            return provider.name
    # Partnerships and hand-built wires: attribute to the first provider
    # serving the IXP city (a deterministic, conservative fallback).
    return world.providers[0].name


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------


class Layer3View:
    """The traditional AS-only topology: what BGP/traceroute can infer."""

    def __init__(self, inventory: InterconnectionInventory) -> None:
        self.inventory = inventory

    def peering_path(self, a: Attachment, b: Attachment) -> EntityPath:
        """A peering path as layer 3 sees it: the two ASes, nothing else."""
        return EntityPath(entities=(
            network_entity(a.asn, a.network_name),
            network_entity(b.asn, b.network_name),
        ))

    def transit_path(self, a: Attachment, b: Attachment) -> EntityPath:
        """A transit path: visible because carriers are ASes."""
        return _transit_path(self.inventory, a, b)


class Layer2AwareView:
    """The refined model: IXPs and L2 providers appear as organizations."""

    def __init__(self, inventory: InterconnectionInventory) -> None:
        self.inventory = inventory

    def peering_path(self, a: Attachment, b: Attachment) -> EntityPath:
        """The same peering path with the layer-2 middlemen shown."""
        if a.ixp_acronym != b.ixp_acronym:
            raise ConfigurationError("peering requires a shared IXP")
        entities: list[EconomicEntity] = [
            network_entity(a.asn, a.network_name)
        ]
        if a.remote:
            assert a.provider_name is not None
            entities.append(provider_entity(a.provider_name))
        entities.append(ixp_entity(a.ixp_acronym))
        if b.remote:
            assert b.provider_name is not None
            entities.append(provider_entity(b.provider_name))
        entities.append(network_entity(b.asn, b.network_name))
        return EntityPath(entities=tuple(entities))

    def transit_path(self, a: Attachment, b: Attachment) -> EntityPath:
        """Transit paths look the same in both views (carriers are ASes)."""
        return _transit_path(self.inventory, a, b)


def _transit_path(
    inventory: InterconnectionInventory, a: Attachment, b: Attachment
) -> EntityPath:
    carrier_a = inventory.transit_of[a.asn][0]
    carrier_b = inventory.transit_of[b.asn][0]
    entities: list[EconomicEntity] = [network_entity(a.asn, a.network_name)]
    entities.append(network_entity(_carrier_asn(carrier_a), carrier_a))
    if carrier_b != carrier_a:
        entities.append(network_entity(_carrier_asn(carrier_b), carrier_b))
    entities.append(network_entity(b.asn, b.network_name))
    return EntityPath(entities=tuple(entities))


def _carrier_asn(carrier: str) -> int:
    """Stable synthetic ASNs for the carrier organizations."""
    return 7_000 + _CARRIERS.index(carrier)
