"""Economic entities: the nodes of a layer-2-aware Internet model.

Layer-3 models know only ASes.  The paper calls for models that also
represent the layer-2 organizations — IXPs and remote-peering providers —
because they are economic intermediaries on real paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class EntityKind(enum.Enum):
    """What kind of organization an entity is."""

    NETWORK = "network"              # an AS (layer-3 visible)
    IXP = "ixp"                      # layer-2 switching organization
    L2_PROVIDER = "l2-provider"      # remote-peering provider

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class EconomicEntity:
    """One organization in the economic structure."""

    key: str            # unique: "as64600", "ixp:AMS-IX", "l2:reachix"
    kind: EntityKind
    name: str

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("entity key cannot be empty")

    @property
    def layer3_visible(self) -> bool:
        """Whether layer-3 measurements can see this organization."""
        return self.kind is EntityKind.NETWORK


def network_entity(asn: int, name: str) -> EconomicEntity:
    """Entity for an AS."""
    return EconomicEntity(key=f"as{asn}", kind=EntityKind.NETWORK, name=name)


def ixp_entity(acronym: str) -> EconomicEntity:
    """Entity for an IXP organization."""
    return EconomicEntity(
        key=f"ixp:{acronym}", kind=EntityKind.IXP, name=acronym
    )


def provider_entity(name: str) -> EconomicEntity:
    """Entity for a remote-peering (layer-2) provider."""
    return EconomicEntity(
        key=f"l2:{name}", kind=EntityKind.L2_PROVIDER, name=name
    )


@dataclass(frozen=True, slots=True)
class EntityPath:
    """An end-to-end path through economic entities.

    ``entities`` runs from the source network to the destination network;
    intermediaries are everything in between.  The same physical path has
    two representations: the layer-3 one (networks only) and the
    layer-2-aware one (IXPs and providers included).
    """

    entities: tuple[EconomicEntity, ...]

    def __post_init__(self) -> None:
        if len(self.entities) < 2:
            raise ConfigurationError("a path needs two endpoints")
        for endpoint in (self.entities[0], self.entities[-1]):
            if endpoint.kind is not EntityKind.NETWORK:
                raise ConfigurationError("path endpoints must be networks")

    def intermediaries(self) -> tuple[EconomicEntity, ...]:
        """Organizations strictly between the endpoints."""
        return self.entities[1:-1]

    def intermediary_count(self) -> int:
        """The paper's flattening metric: middlemen on the path."""
        return len(self.intermediaries())

    def layer3_projection(self) -> "EntityPath":
        """What a layer-3 measurement would report: networks only."""
        networks = tuple(e for e in self.entities if e.layer3_visible)
        return EntityPath(entities=networks)

    def invisible_intermediaries(self) -> tuple[EconomicEntity, ...]:
        """Middlemen that layer-3 models miss (IXPs, L2 providers)."""
        return tuple(e for e in self.intermediaries() if not e.layer3_visible)
