"""Registries: where the detector learns *what* to probe and *who* owns it.

The paper finds target interfaces on the websites of PeeringDB, PCH and the
IXPs themselves, and maps interfaces to ASNs "through a combination of
looking up PeeringDB, using the IXPs' websites and LG servers, and issuing
reverse DNS queries" (Section 3.1).  All of those sources are imperfect —
stale addresses, missing entries, mid-campaign reassignments — and the
filters exist precisely to survive that.  This package models the sources
*with* their imperfections.
"""

from repro.registry.records import InterfaceRecord, IXPDirectory
from repro.registry.sources import PeeringDBSource, IXPWebsiteSource, ReverseDNSSource
from repro.registry.identify import IdentificationPipeline, IdentificationResult

__all__ = [
    "InterfaceRecord",
    "IXPDirectory",
    "PeeringDBSource",
    "IXPWebsiteSource",
    "ReverseDNSSource",
    "IdentificationPipeline",
    "IdentificationResult",
]
