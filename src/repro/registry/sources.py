"""Individual identification sources with per-source coverage.

Each source answers "which ASN owns this address?" for a deterministic
subset of the directory.  Coverage membership is decided by seeded hashing,
so a given (source, address) pair always answers the same way — exactly how
a real registry's gaps behave across a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.net.addr import IPv4Address
from repro.rand import derive_seed
from repro.registry.records import IXPDirectory
from repro.types import ASN


@lru_cache(maxsize=1 << 18)
def _coverage_draw(seed: int, label: str, value: int) -> int:
    # The sha256-based draw is pure in (seed, label, address); campaigns
    # look every address up at both campaign endpoints and across sources,
    # so the memo halves identification cost.
    return derive_seed(seed, label, value) % 10_000


def _covered(seed: int, label: str, address: IPv4Address, coverage: float) -> bool:
    """Deterministic membership test: is ``address`` in this source's view?"""
    return _coverage_draw(seed, label, address.value) < coverage * 10_000


def _record_answers(
    source, label: str, ixp: str, address: IPv4Address, times: tuple[float, ...]
) -> list[ASN | None]:
    """Per-time answers with one record resolution and one coverage draw.

    Coverage membership is pure in (seed, source, address) — time never
    enters the draw — so resolving the record once and reading ``asn_at``
    per time is bit-identical to one ``lookup`` call per time.
    """
    record = source.directory.record_for(ixp, address)
    if not record.well_known and not _covered(
        source.seed, label, address, source.coverage
    ):
        return [None] * len(times)
    return [record.asn_at(t) for t in times]


@dataclass(frozen=True, slots=True)
class PeeringDBSource:
    """PeeringDB-style lookup: good ASN data, partial coverage."""

    directory: IXPDirectory
    coverage: float = 0.58
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in [0, 1]")

    def lookup(self, ixp: str, address: IPv4Address, time_s: float) -> ASN | None:
        """ASN for (ixp, address) at ``time_s``, or None if not covered."""
        record = self.directory.record_for(ixp, address)
        if not record.well_known and not _covered(
            self.seed, "peeringdb", address, self.coverage
        ):
            return None
        return record.asn_at(time_s)

    def answers(
        self, ixp: str, address: IPv4Address, times: tuple[float, ...]
    ) -> list[ASN | None]:
        """One ``lookup`` answer per time, sharing the record resolution."""
        return _record_answers(self, "peeringdb", ixp, address, times)


@dataclass(frozen=True, slots=True)
class IXPWebsiteSource:
    """IXP member-list pages: different coverage, same underlying truth."""

    directory: IXPDirectory
    coverage: float = 0.42
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in [0, 1]")

    def lookup(self, ixp: str, address: IPv4Address, time_s: float) -> ASN | None:
        """ASN for (ixp, address) at ``time_s``, or None if not covered."""
        record = self.directory.record_for(ixp, address)
        if not record.well_known and not _covered(
            self.seed, "website", address, self.coverage
        ):
            return None
        return record.asn_at(time_s)

    def answers(
        self, ixp: str, address: IPv4Address, times: tuple[float, ...]
    ) -> list[ASN | None]:
        """One ``lookup`` answer per time, sharing the record resolution."""
        return _record_answers(self, "website", ixp, address, times)


@dataclass(frozen=True, slots=True)
class ReverseDNSSource:
    """Reverse DNS: PTR names like ``as8903.ams-ix.example.net``.

    Coverage is the lowest of the three sources; when a PTR record exists
    we parse the ASN out of the hostname.
    """

    directory: IXPDirectory
    coverage: float = 0.30
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in [0, 1]")

    def hostname(self, ixp: str, address: IPv4Address, time_s: float) -> str | None:
        """The PTR record for ``address``, or None when uncovered."""
        record = self.directory.record_for(ixp, address)
        if not record.well_known and not _covered(
            self.seed, "rdns", address, self.coverage
        ):
            return None
        asn = record.asn_at(time_s)
        if asn is None:
            return None
        label = ixp.lower().replace(" ", "").replace("_", "-")
        return f"as{asn}.{label}.example.net"

    def lookup(self, ixp: str, address: IPv4Address, time_s: float) -> ASN | None:
        """ASN parsed from the PTR record, or None."""
        name = self.hostname(ixp, address, time_s)
        if name is None:
            return None
        return parse_asn_from_hostname(name)

    def answers(
        self, ixp: str, address: IPv4Address, times: tuple[float, ...]
    ) -> list[ASN | None]:
        """One ``lookup`` answer per time, sharing the record resolution.

        Answers still round-trip through the PTR hostname parse so any
        ASN the hostname grammar would mangle stays mangled.
        """
        label = ixp.lower().replace(" ", "").replace("_", "-")
        return [
            None
            if asn is None
            else parse_asn_from_hostname(f"as{asn}.{label}.example.net")
            for asn in _record_answers(self, "rdns", ixp, address, times)
        ]


def parse_asn_from_hostname(hostname: str) -> ASN | None:
    """Extract an ASN from hostnames of the form ``as<digits>.<rest>``."""
    head = hostname.split(".", 1)[0].lower()
    if not head.startswith("as"):
        return None
    digits = head[2:]
    if not digits.isdigit():
        return None
    value = int(digits)
    return ASN(value) if value > 0 else None
