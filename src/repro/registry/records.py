"""Ground-truth-adjacent registry records for IXP member interfaces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegistryError
from repro.net.addr import IPv4Address
from repro.types import ASN, PeeringPolicy


@dataclass(slots=True)
class InterfaceRecord:
    """What the registries collectively know about one target address.

    ``asn`` / ``asn_after_change`` encode mid-campaign reassignment of the
    address to a different member (the ASN-change filter's reason to
    exist).  ``stale`` marks addresses published for the IXP but no longer
    (or never) on its peering LAN.
    """

    ixp_acronym: str
    address: IPv4Address
    asn: ASN | None
    policy: PeeringPolicy | None = None
    stale: bool = False
    asn_after_change: ASN | None = None
    asn_change_time: float | None = None
    #: Well-known networks (the paper's E4A/Invitel anecdotes) are listed
    #: in every registry; coverage sampling never hides them.
    well_known: bool = False

    def asn_at(self, time_s: float) -> ASN | None:
        """The ASN the registries would report at simulated time ``time_s``."""
        changed = (
            self.asn_after_change is not None
            and self.asn_change_time is not None
            and time_s >= self.asn_change_time
        )
        return self.asn_after_change if changed else self.asn


@dataclass
class IXPDirectory:
    """All published target addresses, grouped by IXP.

    This is the union of what PeeringDB, PCH and IXP websites list — the
    probing campaign's input.  Individual *sources* (see
    :mod:`repro.registry.sources`) expose partial, noisy views of it.
    """

    _records: dict[str, dict[int, InterfaceRecord]] = field(default_factory=dict)

    def add(self, record: InterfaceRecord) -> None:
        """Publish a record; duplicate (IXP, address) pairs are errors."""
        per_ixp = self._records.setdefault(record.ixp_acronym, {})
        key = record.address.value
        if key in per_ixp:
            raise RegistryError(
                f"{record.ixp_acronym}: duplicate record for {record.address}"
            )
        per_ixp[key] = record

    def targets_for(self, ixp_acronym: str) -> list[InterfaceRecord]:
        """Published target records for one IXP, in address order."""
        per_ixp = self._records.get(ixp_acronym, {})
        return [per_ixp[k] for k in sorted(per_ixp)]

    def record_for(self, ixp_acronym: str, address: IPv4Address) -> InterfaceRecord:
        """The record for one (IXP, address) pair."""
        per_ixp = self._records.get(ixp_acronym, {})
        try:
            return per_ixp[address.value]
        except KeyError:
            raise RegistryError(
                f"{ixp_acronym}: no record for {address}"
            ) from None

    def ixps(self) -> list[str]:
        """Acronyms of all IXPs with published records, sorted."""
        return sorted(self._records)

    def __len__(self) -> int:
        return sum(len(v) for v in self._records.values())
