"""The IP → ASN identification pipeline (Section 3.1, "Identification of
networks").

The paper combines PeeringDB, IXP websites, LG servers and reverse DNS; we
chain the sources in that order and report which one answered.  The
pipeline is also queried at the start *and* end of the campaign so the
ASN-change filter can compare the two answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import IPv4Address
from repro.registry.sources import (
    IXPWebsiteSource,
    PeeringDBSource,
    ReverseDNSSource,
)
from repro.types import ASN


@dataclass(frozen=True, slots=True)
class IdentificationResult:
    """Outcome of identifying one address at one point in time."""

    address: IPv4Address
    asn: ASN | None
    source: str | None  # "peeringdb" | "website" | "rdns" | None

    @property
    def identified(self) -> bool:
        """Whether any source produced an ASN."""
        return self.asn is not None


class IdentificationPipeline:
    """Chains the identification sources in the paper's order."""

    def __init__(
        self,
        peeringdb: PeeringDBSource,
        website: IXPWebsiteSource,
        rdns: ReverseDNSSource,
    ) -> None:
        self._sources: list[tuple[str, object]] = [
            ("peeringdb", peeringdb),
            ("website", website),
            ("rdns", rdns),
        ]

    def identify(
        self, ixp: str, address: IPv4Address, time_s: float
    ) -> IdentificationResult:
        """Try each source in order; first answer wins."""
        for name, source in self._sources:
            asn = source.lookup(ixp, address, time_s)  # type: ignore[attr-defined]
            if asn is not None:
                return IdentificationResult(address=address, asn=asn, source=name)
        return IdentificationResult(address=address, asn=None, source=None)

    def identify_span(
        self,
        ixp: str,
        address: IPv4Address,
        start_s: float,
        end_s: float,
    ) -> tuple[IdentificationResult, IdentificationResult]:
        """Identify one address at both campaign endpoints in one pass.

        Bit-identical to calling :meth:`identify` at each endpoint:
        coverage draws are pure in (seed, source, address) — time never
        enters them — and each endpoint independently takes the first
        source with a non-None ASN.  Campaigns query every address at both
        endpoints, so sharing the registry resolutions between the two
        halves the identification cost of a trial.
        """
        first = last = None
        for name, source in self._sources:
            asns = source.answers(ixp, address, (start_s, end_s))  # type: ignore[attr-defined]
            if first is None and asns[0] is not None:
                first = IdentificationResult(
                    address=address, asn=asns[0], source=name
                )
            if last is None and asns[1] is not None:
                last = IdentificationResult(
                    address=address, asn=asns[1], source=name
                )
            if first is not None and last is not None:
                break
        missing = IdentificationResult(address=address, asn=None, source=None)
        return first or missing, last or missing

    def asn_changed(
        self,
        ixp: str,
        address: IPv4Address,
        start_s: float,
        end_s: float,
    ) -> bool:
        """Whether the identified ASN differs between campaign start and end.

        Only a change between two *identified* answers counts; an address
        that is identifiable at one end only is not flagged (the paper's
        filter needs a observed change, not missing data).
        """
        first, last = self.identify_span(ixp, address, start_s, end_s)
        if first.asn is None or last.asn is None:
            return False
        return first.asn != last.asn
