"""The IP → ASN identification pipeline (Section 3.1, "Identification of
networks").

The paper combines PeeringDB, IXP websites, LG servers and reverse DNS; we
chain the sources in that order and report which one answered.  The
pipeline is also queried at the start *and* end of the campaign so the
ASN-change filter can compare the two answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import IPv4Address
from repro.registry.sources import (
    IXPWebsiteSource,
    PeeringDBSource,
    ReverseDNSSource,
)
from repro.types import ASN


@dataclass(frozen=True, slots=True)
class IdentificationResult:
    """Outcome of identifying one address at one point in time."""

    address: IPv4Address
    asn: ASN | None
    source: str | None  # "peeringdb" | "website" | "rdns" | None

    @property
    def identified(self) -> bool:
        """Whether any source produced an ASN."""
        return self.asn is not None


class IdentificationPipeline:
    """Chains the identification sources in the paper's order."""

    def __init__(
        self,
        peeringdb: PeeringDBSource,
        website: IXPWebsiteSource,
        rdns: ReverseDNSSource,
    ) -> None:
        self._sources: list[tuple[str, object]] = [
            ("peeringdb", peeringdb),
            ("website", website),
            ("rdns", rdns),
        ]

    def identify(
        self, ixp: str, address: IPv4Address, time_s: float
    ) -> IdentificationResult:
        """Try each source in order; first answer wins."""
        for name, source in self._sources:
            asn = source.lookup(ixp, address, time_s)  # type: ignore[attr-defined]
            if asn is not None:
                return IdentificationResult(address=address, asn=asn, source=name)
        return IdentificationResult(address=address, asn=None, source=None)

    def asn_changed(
        self,
        ixp: str,
        address: IPv4Address,
        start_s: float,
        end_s: float,
    ) -> bool:
        """Whether the identified ASN differs between campaign start and end.

        Only a change between two *identified* answers counts; an address
        that is identifiable at one end only is not flagged (the paper's
        filter needs a observed change, not missing data).
        """
        first = self.identify(ixp, address, start_s)
        last = self.identify(ixp, address, end_s)
        if first.asn is None or last.asn is None:
            return False
        return first.asn != last.asn
