"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
grouped by subsystem: addressing, topology construction, measurement, and
analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """A scenario, model, or builder received inconsistent parameters."""


class AddressError(ReproError):
    """Invalid IPv4 address or prefix, or an exhausted address pool."""


class TopologyError(ReproError):
    """The simulated topology is malformed (unknown AS, dangling link...)."""


class RoutingError(ReproError):
    """BGP propagation or lookup failed (no route, policy conflict...)."""


class MeasurementError(ReproError):
    """A probing campaign was mis-configured or produced no usable data."""


class RateLimitError(MeasurementError):
    """A looking-glass client violated the one-query-per-minute limit."""


class RegistryError(ReproError):
    """A registry (PeeringDB/PCH/DNS-like) lookup failed irrecoverably."""


class AnalysisError(ReproError):
    """Statistical post-processing failed (empty sample, bad fit...)."""


class EconomicsError(ReproError):
    """The economic model received parameters outside its valid domain."""
