"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
grouped by subsystem: addressing, topology construction, measurement, and
analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """A scenario, model, or builder received inconsistent parameters."""


class AddressError(ReproError):
    """Invalid IPv4 address or prefix, or an exhausted address pool."""


class TopologyError(ReproError):
    """The simulated topology is malformed (unknown AS, dangling link...)."""


class RoutingError(ReproError):
    """BGP propagation or lookup failed (no route, policy conflict...)."""


class FallbackExhausted(RoutingError):
    """Transit failover found no usable provider path for a withdrawn route.

    Raised by :meth:`repro.bgp.table.RoutingTable.fallback_lookup` when a
    dark peer's route cannot be re-homed: the viewpoint has no providers,
    every provider is itself dark, or no provider has a loop-free path to
    the destination.  A typed subclass so failover consumers can treat
    "traffic is blackholed while the circuit is down" as a modeled
    outcome distinct from a malformed-topology :class:`RoutingError`."""


class MeasurementError(ReproError):
    """A probing campaign was mis-configured or produced no usable data."""


class RateLimitError(MeasurementError):
    """A looking-glass client violated the one-query-per-minute limit."""


class RegistryError(ReproError):
    """A registry (PeeringDB/PCH/DNS-like) lookup failed irrecoverably."""


class AnalysisError(ReproError):
    """Statistical post-processing failed (empty sample, bad fit...)."""


class EconomicsError(ReproError):
    """The economic model received parameters outside its valid domain."""
