"""IXP route servers: multilateral peering in one BGP session.

Open-policy members "automatically peer with any interested IXP member via
the IXP route server" (Section 4.2).  The route server therefore decides
which peerings exist without bilateral negotiation — peer group 1 in the
offload study is exactly the route-server population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.asys import AutonomousSystem
from repro.errors import TopologyError
from repro.types import ASN, PeeringPolicy


@dataclass
class RouteServer:
    """The route server of one IXP."""

    ixp_name: str
    _participants: dict[ASN, AutonomousSystem] = field(default_factory=dict)

    def connect(self, asys: AutonomousSystem) -> None:
        """Bring a member's session up on the route server."""
        if asys.asn in self._participants:
            raise TopologyError(
                f"{self.ixp_name} route server: AS{asys.asn} already connected"
            )
        self._participants[asys.asn] = asys

    def participants(self) -> list[AutonomousSystem]:
        """Connected members, sorted by ASN."""
        return [self._participants[a] for a in sorted(self._participants)]

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._participants

    def multilateral_sessions(self) -> list[tuple[ASN, ASN]]:
        """All peering pairs the route server establishes (a < b order)."""
        asns = sorted(self._participants)
        return [(a, b) for i, a in enumerate(asns) for b in asns[i + 1:]]

    def would_peer(self, a: ASN, b: ASN) -> bool:
        """Whether members ``a`` and ``b`` exchange routes via this server."""
        return a in self._participants and b in self._participants and a != b


def open_policy_route_server(
    ixp_name: str, members: list[AutonomousSystem]
) -> RouteServer:
    """Build a route server holding exactly the open-policy members."""
    server = RouteServer(ixp_name=ixp_name)
    for member in members:
        if member.policy is PeeringPolicy.OPEN:
            server.connect(member)
    return server
