"""Policy routing under the Gao–Rexford model.

For one destination AS, :class:`RouteComputation` computes every other AS's
best route following standard economic policy:

* **Preference** at each AS: routes via customers beat routes via peers beat
  routes via providers; ties broken by shortest AS path, then lowest
  next-hop ASN (a deterministic stand-in for tie-breaks BGP resolves with
  router IDs).
* **Export**: routes learned from customers are exported to everyone;
  routes learned from peers or providers are exported only to customers.

These two rules imply every used path is valley-free: an uphill
(customer→provider) segment, at most one peer edge, then a downhill
(provider→customer) segment.  The implementation exploits that shape with
three linear passes instead of simulating per-message BGP churn, so it is
exact yet O(E log V) per destination.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.bgp.relationships import ASGraph
from repro.errors import RoutingError
from repro.types import ASN


class RouteKind(enum.Enum):
    """How the route was learned, which decides its preference class."""

    ORIGIN = "origin"      # the destination itself
    CUSTOMER = "customer"  # learned from a customer
    PEER = "peer"          # learned from a settlement-free peer
    PROVIDER = "provider"  # learned from a provider

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class ASPath:
    """A loop-free AS-level path from a source to a destination."""

    asns: tuple[ASN, ...]
    kind: RouteKind

    def __post_init__(self) -> None:
        if not self.asns:
            raise RoutingError("empty AS path")
        if len(set(self.asns)) != len(self.asns):
            raise RoutingError(f"AS path contains a loop: {self.asns}")

    @property
    def source(self) -> ASN:
        """First AS on the path."""
        return self.asns[0]

    @property
    def destination(self) -> ASN:
        """Last AS on the path."""
        return self.asns[-1]

    @property
    def next_hop(self) -> ASN:
        """The neighbour the source forwards to (itself for origin routes)."""
        return self.asns[1] if len(self.asns) > 1 else self.asns[0]

    @property
    def length(self) -> int:
        """Number of AS hops (edges) on the path."""
        return len(self.asns) - 1

    def intermediaries(self) -> tuple[ASN, ...]:
        """ASes strictly between source and destination — the paper's
        "intermediary organizations on Internet paths"."""
        return self.asns[1:-1]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return " ".join(str(a) for a in self.asns)


class RouteComputation:
    """Per-destination best-path computation over an :class:`ASGraph`."""

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._cache: dict[ASN, dict[ASN, ASPath]] = {}

    def best_paths_to(self, destination: ASN) -> dict[ASN, ASPath]:
        """Best path from every AS that can reach ``destination``.

        The returned mapping includes the destination itself (an ORIGIN
        route of length 0).  ASes with no policy-compliant path are absent.
        """
        if destination in self._cache:
            return self._cache[destination]
        self._graph.get(destination)  # raise early on unknown ASN
        paths = self._compute(destination)
        self._cache[destination] = paths
        return paths

    def path(self, source: ASN, destination: ASN) -> ASPath | None:
        """Best path from ``source`` to ``destination``, or None."""
        return self.best_paths_to(destination).get(source)

    def invalidate(self) -> None:
        """Drop all cached computations (call after mutating the graph)."""
        self._cache.clear()

    # --- internals ------------------------------------------------------------

    def _compute(self, destination: ASN) -> dict[ASN, ASPath]:
        graph = self._graph
        best: dict[ASN, ASPath] = {
            destination: ASPath((destination,), RouteKind.ORIGIN)
        }

        # Pass 1 — customer routes climb provider edges from the destination.
        # An AS's providers learn the route; their providers learn it in turn.
        # Dijkstra with (length, next_hop_asn) cost gives the deterministic
        # shortest + lowest-next-hop tie-break in one sweep.
        frontier: list[tuple[int, ASN, ASN]] = []  # (path_len, via, node)
        for provider in sorted(graph.providers_of(destination)):
            heapq.heappush(frontier, (1, destination, provider))
        customer_routed: dict[ASN, ASPath] = {}
        while frontier:
            length, via, node = heapq.heappop(frontier)
            if node in customer_routed or node == destination:
                continue
            base = best[via] if via == destination else customer_routed[via]
            path = ASPath((node, *base.asns), RouteKind.CUSTOMER)
            customer_routed[node] = path
            for provider in sorted(graph.providers_of(node)):
                if provider not in customer_routed and provider != destination:
                    heapq.heappush(frontier, (length + 1, node, provider))
        best.update(customer_routed)

        # Pass 2 — peer routes: one peer edge off any customer-routed AS
        # (or the destination).  Only ASes without a customer route adopt
        # them; among candidates pick shortest, then lowest next-hop ASN.
        peer_candidates: dict[ASN, ASPath] = {}
        exporters = [destination, *customer_routed.keys()]
        for exporter in exporters:
            base = best[exporter]
            for peer in graph.peers_of(exporter):
                if peer in best or peer in base.asns:
                    continue
                candidate = ASPath((peer, *base.asns), RouteKind.PEER)
                incumbent = peer_candidates.get(peer)
                if incumbent is None or _beats(candidate, incumbent):
                    peer_candidates[peer] = candidate
        best.update(peer_candidates)

        # Pass 3 — provider routes cascade down customer edges from every
        # routed AS.  Any route is exportable to customers, so this is a
        # multi-source shortest-path over provider->customer edges.  All
        # edges weigh 1, so a level-synchronous BFS replaces the heap: a
        # node settles at 1 + the minimum length of its routed providers,
        # via the lowest-ASN provider achieving that minimum whose own path
        # does not already contain the node — exactly the (length, via)
        # pop order of the Dijkstra this replaces, at a fraction of the
        # cost on Internet-scale worlds (no per-node heap churn, no
        # re-sorting of large customer sets, no per-path loop validation —
        # construction is loop-free by the explicit containment guard).
        customer_sets = graph.customer_sets()
        no_customers: frozenset[ASN] = frozenset()
        levels: dict[int, list[ASN]] = {}
        for exporter, path in best.items():
            levels.setdefault(path.length, []).append(exporter)
        while levels:
            length = min(levels)
            exporters = levels.pop(length)
            candidates: dict[ASN, ASN] = {}  # node -> lowest-ASN via
            for via in exporters:
                for node in customer_sets.get(via, no_customers):
                    if node not in best:
                        incumbent = candidates.get(node)
                        if incumbent is None or via < incumbent:
                            candidates[node] = via
            settled_now: list[ASN] = []
            for node, via in candidates.items():
                base = best[via]
                if node in base.asns:
                    # Rare containment miss: fall back to the remaining
                    # vias in ascending-ASN order, as the heap would.
                    fallbacks = sorted(
                        v for v in exporters
                        if v != via and node in customer_sets.get(v, no_customers)
                    )
                    for fallback in fallbacks:
                        base = best[fallback]
                        if node not in base.asns:
                            break
                    else:
                        continue  # unreachable at this length
                best[node] = _unchecked_path(
                    (node, *base.asns), RouteKind.PROVIDER
                )
                settled_now.append(node)
            if settled_now:
                levels.setdefault(length + 1, []).extend(settled_now)
        return best


def _unchecked_path(asns: tuple[ASN, ...], kind: RouteKind) -> ASPath:
    """Build an :class:`ASPath` without the loop-free validation.

    Only for construction sites that guarantee loop-freedom structurally
    (the BFS passes check containment before extending a path); the
    per-path set materialization in ``__post_init__`` dominates route
    computation on ~30k-AS worlds.
    """
    path = object.__new__(ASPath)
    object.__setattr__(path, "asns", asns)
    object.__setattr__(path, "kind", kind)
    return path


def _beats(challenger: ASPath, incumbent: ASPath) -> bool:
    """Whether ``challenger`` wins the BGP tie-break against ``incumbent``.

    Both paths must be in the same preference class; shorter wins, then the
    lower next-hop ASN.
    """
    if challenger.length != incumbent.length:
        return challenger.length < incumbent.length
    return challenger.next_hop < incumbent.next_hop
