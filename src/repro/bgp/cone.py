"""Customer cones: the reach a peering relationship buys you.

Peering traffic is "commonly limited to the traffic belonging to the
peering networks and their customer cones, i.e., their direct and indirect
transit customers" (Section 2.2).  Everything in the offload study hangs
off this set.
"""

from __future__ import annotations

from collections import deque

from repro.bgp.relationships import ASGraph
from repro.types import ASN


def customer_cone(graph: ASGraph, asn: ASN) -> set[ASN]:
    """The customer cone of ``asn``: itself plus all transitive customers."""
    cone: set[ASN] = {asn}
    queue: deque[ASN] = deque([asn])
    while queue:
        node = queue.popleft()
        for customer in graph.customers_of(node):
            if customer not in cone:
                cone.add(customer)
                queue.append(customer)
    return cone


def customer_cones(graph: ASGraph, asns: list[ASN]) -> dict[ASN, set[ASN]]:
    """Customer cones for many ASes.

    Cones are computed independently; worst case is O(len(asns) * E) but in
    hierarchical graphs the cones of stub networks are tiny, so the realistic
    cost is dominated by the few large transit cones.
    """
    return {asn: customer_cone(graph, asn) for asn in asns}


def cone_address_mass(graph: ASGraph, cone: set[ASN]) -> int:
    """Total originated IPv4 address space inside a cone (Figure 10 metric)."""
    # Integer sum is order-independent, so hash-order iteration cannot
    # change the result.  # repro-lint: ok[det-set-iter]
    return sum(graph.get(asn).address_space for asn in cone)


def cone_size_ranking(graph: ASGraph) -> list[tuple[ASN, int]]:
    """All ASes ranked by customer-cone size, largest first.

    Useful for sanity checks: the provider-free (tier-1) clique must top
    this ranking in any realistic topology.
    """
    ranked = [(asn, len(customer_cone(graph, asn))) for asn in graph.asns()]
    ranked.sort(key=lambda pair: (-pair[1], pair[0]))
    return ranked
