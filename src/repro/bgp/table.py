"""Per-AS routing tables derived from policy route computation.

The offload study reads the BGP tables of RedIRIS's border routers to find
"the AS-level path and traffic rate for each of the traffic flows"
(Section 4.1).  :class:`RoutingTable` is that per-viewpoint table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.relationships import ASGraph, Relationship
from repro.bgp.routing import ASPath, RouteComputation, RouteKind
from repro.errors import FallbackExhausted, RoutingError
from repro.types import ASN


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One table entry: destination, chosen AS path, and border class."""

    destination: ASN
    path: ASPath
    next_hop: ASN
    kind: RouteKind

    @property
    def via_transit(self) -> bool:
        """Whether traffic to this destination leaves via a transit provider."""
        return self.kind is RouteKind.PROVIDER


class RoutingTable:
    """The routing view of one AS over a computed topology."""

    def __init__(self, graph: ASGraph, viewpoint: ASN) -> None:
        graph.get(viewpoint)
        self._graph = graph
        self._viewpoint = viewpoint
        self._computation = RouteComputation(graph)
        self._entries: dict[ASN, RouteEntry] = {}

    @property
    def viewpoint(self) -> ASN:
        """The AS whose view this table represents."""
        return self._viewpoint

    def lookup(self, destination: ASN) -> RouteEntry:
        """Best route from the viewpoint to ``destination``.

        Raises RoutingError when no policy-compliant route exists.
        """
        if destination in self._entries:
            return self._entries[destination]
        path = self._computation.path(self._viewpoint, destination)
        if path is None:
            raise RoutingError(
                f"AS{self._viewpoint} has no route to AS{destination}"
            )
        entry = RouteEntry(
            destination=destination,
            path=path,
            next_hop=path.next_hop,
            kind=path.kind,
        )
        self._entries[destination] = entry
        return entry

    def has_route(self, destination: ASN) -> bool:
        """Whether any policy-compliant route to ``destination`` exists."""
        try:
            self.lookup(destination)
        except RoutingError:
            return False
        return True

    def next_hop_relationship(self, destination: ASN) -> Relationship | None:
        """Relationship with the next hop used toward ``destination``."""
        entry = self.lookup(destination)
        if entry.next_hop == self._viewpoint:
            return None
        return self._graph.relationship(self._viewpoint, entry.next_hop)

    def fallback_lookup(
        self, destination: ASN, dark_peers: frozenset[ASN] | set[ASN]
    ) -> RouteEntry:
        """Best route while the peers in ``dark_peers`` are unreachable.

        Models pseudowire failover (Section 2): when a remote peering
        session's circuit is dark, routes learned from that peer withdraw
        and traffic falls back to a transit provider's path — the exact
        dynamic 95th-percentile billing punishes.  Routes whose next hop
        is unaffected are returned unchanged; withdrawn ones are re-homed
        through the viewpoint's providers (deterministically: lowest
        provider ASN with a route wins).

        The exhausted case degrades deterministically too: a viewpoint
        with no providers, with every provider itself dark, or with no
        loop-free provider path raises :class:`FallbackExhausted` (a
        :class:`RoutingError` subclass) whose message states which of
        the three it was — the failover model's "traffic is blackholed
        while the circuit is down" outcome, never an arbitrary route.
        """
        entry = self.lookup(destination)
        if entry.next_hop == self._viewpoint or entry.next_hop not in dark_peers:
            return entry
        providers = sorted(self._graph.providers_of(self._viewpoint))
        live_providers = [p for p in providers if p not in dark_peers]
        for provider in live_providers:
            path = self._computation.path(provider, destination)
            if path is None or self._viewpoint in path.asns:
                continue  # the provider's own path loops back through us
            return RouteEntry(
                destination=destination,
                path=ASPath((self._viewpoint, *path.asns), RouteKind.PROVIDER),
                next_hop=provider,
                kind=RouteKind.PROVIDER,
            )
        if not providers:
            reason = "the viewpoint has no transit providers"
        elif not live_providers:
            reason = f"all {len(providers)} provider(s) are dark"
        else:
            reason = (
                f"none of {len(live_providers)} live provider(s) has a "
                "loop-free path"
            )
        raise FallbackExhausted(
            f"AS{self._viewpoint} has no fallback route to AS{destination} "
            f"while {len(dark_peers)} peer(s) are dark: {reason}"
        )


class ReversedPathTable:
    """Outbound routing view derived from precomputed *inbound* paths.

    For Internet-scale worlds, computing one policy propagation per
    destination is wasteful: a single propagation with the studied network
    as destination yields every remote network's best path *toward* it.
    This table serves the studied network's outbound lookups by reversing
    those paths.  The approximation ignores hot-potato asymmetry, which
    affects which of two equivalent provider links carries a flow but not
    the offload arithmetic (that depends only on customer-cone membership).
    """

    def __init__(
        self, graph: ASGraph, viewpoint: ASN, inbound_paths: dict[ASN, ASPath]
    ) -> None:
        graph.get(viewpoint)
        self._graph = graph
        self._viewpoint = viewpoint
        self._inbound = inbound_paths
        self._entries: dict[ASN, RouteEntry] = {}

    @property
    def viewpoint(self) -> ASN:
        """The AS whose outbound view this table serves."""
        return self._viewpoint

    def lookup(self, destination: ASN) -> RouteEntry:
        """Best outbound route to ``destination`` (reversed inbound path)."""
        if destination in self._entries:
            return self._entries[destination]
        inbound = self._inbound.get(destination)
        if inbound is None:
            raise RoutingError(
                f"AS{destination} has no path toward AS{self._viewpoint}"
            )
        if inbound.destination != self._viewpoint:
            raise RoutingError(
                f"inbound path for AS{destination} ends at "
                f"AS{inbound.destination}, not the viewpoint"
            )
        reversed_asns = tuple(reversed(inbound.asns))
        next_hop = reversed_asns[1] if len(reversed_asns) > 1 else self._viewpoint
        kind = self._kind_for(next_hop)
        path = ASPath(reversed_asns, kind)
        entry = RouteEntry(
            destination=destination, path=path, next_hop=next_hop, kind=kind
        )
        self._entries[destination] = entry
        return entry

    def has_route(self, destination: ASN) -> bool:
        """Whether an outbound route to ``destination`` exists."""
        return destination in self._inbound or destination == self._viewpoint

    def _kind_for(self, next_hop: ASN) -> RouteKind:
        if next_hop == self._viewpoint:
            return RouteKind.ORIGIN
        relationship = self._graph.relationship(self._viewpoint, next_hop)
        if relationship is Relationship.PROVIDER:
            return RouteKind.PROVIDER
        if relationship is Relationship.PEER:
            return RouteKind.PEER
        return RouteKind.CUSTOMER
