"""BGP substrate: AS-level topology, policy routing, customer cones.

The offload study (Section 4) needs three things from BGP: AS paths for
every flow crossing the studied network's border routers, customer cones of
candidate peers, and the relationship labels (customer / provider / peer)
that decide which traffic is offloadable.  This package provides all three
— an exact Gao–Rexford propagation engine for arbitrary graphs, plus
cone computation and routing tables.
"""

from repro.bgp.asys import AutonomousSystem
from repro.bgp.relationships import ASGraph, Relationship
from repro.bgp.cone import customer_cone, cone_address_mass
from repro.bgp.routing import ASPath, RouteComputation, RouteKind
from repro.bgp.table import RoutingTable, RouteEntry
from repro.bgp.routeserver import RouteServer

__all__ = [
    "AutonomousSystem",
    "ASGraph",
    "Relationship",
    "customer_cone",
    "cone_address_mass",
    "ASPath",
    "RouteComputation",
    "RouteKind",
    "RoutingTable",
    "RouteEntry",
    "RouteServer",
]
