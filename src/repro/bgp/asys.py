"""Autonomous systems as economic entities."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.cities import City
from repro.types import ASN, NetworkKind, PeeringPolicy


@dataclass(slots=True)
class AutonomousSystem:
    """One AS: the unit of layer-3 economic modeling the paper critiques.

    Parameters
    ----------
    asn:
        AS number.
    name:
        Operator name (synthetic names in generated worlds).
    kind:
        Business type (tier-1, transit, access, content, CDN, ...).
    home_city:
        Where the network's infrastructure is centred; drives remote-peering
        RTTs and which IXPs it can reach directly.
    policy:
        Peering policy as it would appear in PeeringDB.
    address_space:
        Number of IPv4 addresses the AS originates.  Figure 10's
        "reachable IP interfaces" metric sums these over customer cones.
    """

    asn: ASN
    name: str
    kind: NetworkKind = NetworkKind.ENTERPRISE
    home_city: City | None = None
    policy: PeeringPolicy = PeeringPolicy.SELECTIVE
    address_space: int = 256
    tags: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ConfigurationError(f"ASN must be positive, got {self.asn}")
        if self.address_space < 0:
            raise ConfigurationError("address space cannot be negative")

    @classmethod
    def make_unchecked(
        cls,
        asn: ASN,
        name: str,
        kind: NetworkKind,
        policy: PeeringPolicy,
        address_space: int = 256,
    ) -> "AutonomousSystem":
        """Construct without validation — the bulk world builders' fast path.

        Callers must pass a positive ASN and non-negative address space;
        the dataclass ``__init__`` is ~2.5× slower, which matters when a
        vectorized builder materializes ~30k networks.
        """
        asys = object.__new__(cls)
        asys.asn = asn
        asys.name = name
        asys.kind = kind
        asys.home_city = None
        asys.policy = policy
        asys.address_space = address_space
        asys.tags = set()
        return asys

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"AS{self.asn} ({self.name})"

    def __hash__(self) -> int:
        return hash(self.asn)
