"""The AS relationship graph (customer-provider and peer-peer edges)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.errors import TopologyError
from repro.types import ASN


class Relationship(enum.Enum):
    """Economic relationship between two adjacent ASes, from A's viewpoint."""

    CUSTOMER = "customer"  # the neighbour is A's customer
    PROVIDER = "provider"  # the neighbour is A's provider
    PEER = "peer"          # settlement-free peer

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ASGraph:
    """Directed-relationship AS graph.

    Customer-provider edges are stored once (customer -> provider) and
    indexed both ways; peer edges are symmetric.  The graph enforces basic
    sanity: no self-edges, no duplicate contradictory relationships.

    Adjacency sets are allocated lazily: a node without edges of a given
    kind has no entry in the corresponding dict (the accessors treat a
    missing entry as empty).  On ~30k-AS worlds, eagerly allocating three
    empty sets per AS dominated node insertion.
    """

    _ases: dict[ASN, AutonomousSystem] = field(default_factory=dict)
    _providers: dict[ASN, set[ASN]] = field(default_factory=dict)
    _customers: dict[ASN, set[ASN]] = field(default_factory=dict)
    _peers: dict[ASN, set[ASN]] = field(default_factory=dict)
    # Cached read-only views returned by the *_of queries.  The queries are
    # hot (route computation, customer cones); handing out a fresh set copy
    # per call dominated their cost.  Caches are invalidated per-ASN on
    # edge insertion.
    _provider_views: dict[ASN, frozenset[ASN]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _customer_views: dict[ASN, frozenset[ASN]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _peer_views: dict[ASN, frozenset[ASN]] = field(
        default_factory=dict, compare=False, repr=False
    )

    # --- node management -----------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Register an AS; duplicate ASNs are topology errors."""
        if asys.asn in self._ases:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self._ases[asys.asn] = asys
        return asys

    def add_ases_bulk(self, ases: Iterable[AutonomousSystem]) -> None:
        """Register many ASes at once (the vectorized builders' fast path).

        Equivalent to calling :meth:`add_as` per AS but with the duplicate
        check amortized over the whole batch.
        """
        batch = list(ases)
        new = {asys.asn: asys for asys in batch}
        if len(new) != len(batch):
            raise TopologyError("duplicate ASN inside bulk add")
        clash = new.keys() & self._ases.keys()
        if clash:
            raise TopologyError(f"duplicate ASN {min(clash)}")
        self._ases.update(new)

    def add_customer_provider_bulk(
        self, pairs: Iterable[tuple[ASN, ASN]]
    ) -> None:
        """Record many customer→provider edges at once.

        The fast path behind the vectorized world builders: nodes must
        already exist and each (customer, provider) pair must be fresh and
        non-contradictory — callers pass pre-deduplicated draws, and the
        engine-equivalence suites check the result against the scalar
        builder, which inserts every edge through the fully-checked
        :meth:`add_customer_provider`.  Only self-edges are rejected here.
        """
        providers, customers = self._providers, self._customers
        for customer, provider in pairs:
            if customer == provider:
                raise TopologyError(f"self-relationship on ASN {customer}")
            held = providers.get(customer)
            if held is None:
                held = providers[customer] = set()
            held.add(provider)
            held = customers.get(provider)
            if held is None:
                held = customers[provider] = set()
            held.add(customer)
        self._provider_views.clear()
        self._customer_views.clear()

    def add_customer_provider_arrays(
        self, customers: "np.ndarray", providers: "np.ndarray"
    ) -> None:
        """Array fast path for :meth:`add_customer_provider_bulk`.

        ``customers`` and ``providers`` are aligned integer arrays with one
        row per edge.  Additional contract on top of the bulk method's:
        rows for one customer must be contiguous and that customer must
        have **no pre-existing provider entries** (both hold for the
        vectorized builders, whose edge arrays come out of ``np.repeat``
        over freshly created nodes).  Provider-side rows may appear in any
        order and may extend existing customer sets.  Adjacency sets are
        assembled per group from array slices instead of per-edge adds.
        """
        if np.any(customers == providers):
            bad = int(customers[customers == providers][0])
            raise TopologyError(f"self-relationship on ASN {bad}")
        customer_list = customers.tolist()
        provider_list = providers.tolist()
        edge_count = len(customer_list)
        if not edge_count:
            return
        provider_sets = self._providers
        starts = np.flatnonzero(customers[1:] != customers[:-1]) + 1
        bounds = [0, *starts.tolist(), edge_count]
        for g in range(len(bounds) - 1):
            lo = bounds[g]
            customer = customer_list[lo]
            if customer in provider_sets:
                # Catches both precondition violations: pre-existing
                # provider edges and non-contiguous rows for one customer.
                raise TopologyError(
                    f"AS{customer} already holds provider edges "
                    "(bulk array insert requires fresh, contiguous customers)"
                )
            provider_sets[customer] = set(provider_list[lo:bounds[g + 1]])
        order = np.argsort(providers, kind="stable")
        sorted_providers = providers[order]
        sorted_customers = customers[order].tolist()
        starts = np.flatnonzero(sorted_providers[1:] != sorted_providers[:-1]) + 1
        bounds = [0, *starts.tolist(), edge_count]
        head_of_group = sorted_providers[
            np.array(bounds[:-1], dtype=np.intp)
        ].tolist()
        customer_sets = self._customers
        for g, provider in enumerate(head_of_group):
            group = sorted_customers[bounds[g]:bounds[g + 1]]
            held = customer_sets.get(provider)
            if held is None:
                customer_sets[provider] = set(group)
            else:
                held.update(group)
        self._provider_views.clear()
        self._customer_views.clear()

    def get(self, asn: ASN) -> AutonomousSystem:
        """The AS object for ``asn``; unknown ASNs are topology errors."""
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def asns(self) -> list[ASN]:
        """All registered ASNs, sorted."""
        return sorted(self._ases)

    def ases(self) -> list[AutonomousSystem]:
        """All AS objects, sorted by ASN."""
        return [self._ases[a] for a in self.asns()]

    # --- edge management -------------------------------------------------------

    @staticmethod
    def _edge_set(table: dict[ASN, set[ASN]], asn: ASN) -> set[ASN]:
        """The (lazily created) adjacency set of ``asn`` in ``table``."""
        held = table.get(asn)
        if held is None:
            held = table[asn] = set()
        return held

    def customer_sets(self) -> dict[ASN, set[ASN]]:
        """The raw customer adjacency, keyed by provider ASN.

        Nodes without customers are absent.  Exposed for hot paths (route
        computation, cone closures) that would otherwise pay a frozenset
        view per node; callers must treat it as read-only.
        """
        return self._customers

    def provider_sets(self) -> dict[ASN, set[ASN]]:
        """The raw provider adjacency, keyed by customer ASN.

        Same read-only contract as :meth:`customer_sets`.
        """
        return self._providers

    def _check_nodes(self, a: ASN, b: ASN) -> None:
        if a == b:
            raise TopologyError(f"self-relationship on ASN {a}")
        if a not in self._ases:
            raise TopologyError(f"unknown ASN {a}")
        if b not in self._ases:
            raise TopologyError(f"unknown ASN {b}")

    def _check_fresh(self, a: ASN, b: ASN) -> None:
        related = (
            b in self._providers.get(a, ())
            or b in self._customers.get(a, ())
            or b in self._peers.get(a, ())
        )
        if related:
            raise TopologyError(f"AS{a} and AS{b} already related")

    def add_customer_provider(self, customer: ASN, provider: ASN) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        self._check_nodes(customer, provider)
        self._check_fresh(customer, provider)
        self._edge_set(self._providers, customer).add(provider)
        self._edge_set(self._customers, provider).add(customer)
        self._provider_views.pop(customer, None)
        self._customer_views.pop(provider, None)

    def add_peering(self, a: ASN, b: ASN) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        self._check_nodes(a, b)
        self._check_fresh(a, b)
        self._edge_set(self._peers, a).add(b)
        self._edge_set(self._peers, b).add(a)
        self._peer_views.pop(a, None)
        self._peer_views.pop(b, None)

    # --- queries ----------------------------------------------------------------

    def providers_of(self, asn: ASN) -> frozenset[ASN]:
        """Direct transit providers of ``asn`` (cached read-only view)."""
        view = self._provider_views.get(asn)
        if view is None:
            self.get(asn)
            view = frozenset(self._providers.get(asn, ()))
            self._provider_views[asn] = view
        return view

    def customers_of(self, asn: ASN) -> frozenset[ASN]:
        """Direct transit customers of ``asn`` (cached read-only view)."""
        view = self._customer_views.get(asn)
        if view is None:
            self.get(asn)
            view = frozenset(self._customers.get(asn, ()))
            self._customer_views[asn] = view
        return view

    def peers_of(self, asn: ASN) -> frozenset[ASN]:
        """Settlement-free peers of ``asn`` (cached read-only view)."""
        view = self._peer_views.get(asn)
        if view is None:
            self.get(asn)
            view = frozenset(self._peers.get(asn, ()))
            self._peer_views[asn] = view
        return view

    def relationship(self, a: ASN, b: ASN) -> Relationship | None:
        """Relationship of ``b`` from ``a``'s viewpoint, or None."""
        self.get(a)
        self.get(b)
        if b in self._customers.get(a, ()):
            return Relationship.CUSTOMER
        if b in self._providers.get(a, ()):
            return Relationship.PROVIDER
        if b in self._peers.get(a, ()):
            return Relationship.PEER
        return None

    def degree(self, asn: ASN) -> int:
        """Total number of neighbours of ``asn``."""
        self.get(asn)
        return (
            len(self._providers.get(asn, ()))
            + len(self._customers.get(asn, ()))
            + len(self._peers.get(asn, ()))
        )

    def provider_free(self) -> list[ASN]:
        """ASes with no providers (the tier-1 clique, typically)."""
        return sorted(a for a in self._ases if not self._providers.get(a))

    # --- validation ---------------------------------------------------------------

    def assert_hierarchy_acyclic(self) -> None:
        """Raise TopologyError if the customer-provider edges contain a cycle.

        A provider cycle would make "customer cone" ill-defined; generated
        worlds must always pass this check.
        """
        state: dict[ASN, int] = {}  # 0 visiting, 1 done

        for start in self._ases:
            if start in state:
                continue
            stack: list[tuple[ASN, iter]] = [
                (start, iter(self._providers.get(start, ())))
            ]
            state[start] = 0
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for nxt in neighbours:
                    if state.get(nxt) == 0:
                        raise TopologyError(
                            f"provider cycle through AS{node} and AS{nxt}"
                        )
                    if nxt not in state:
                        state[nxt] = 0
                        stack.append((nxt, iter(self._providers.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 1
                    stack.pop()
