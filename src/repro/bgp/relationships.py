"""The AS relationship graph (customer-provider and peer-peer edges)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bgp.asys import AutonomousSystem
from repro.errors import TopologyError
from repro.types import ASN


class Relationship(enum.Enum):
    """Economic relationship between two adjacent ASes, from A's viewpoint."""

    CUSTOMER = "customer"  # the neighbour is A's customer
    PROVIDER = "provider"  # the neighbour is A's provider
    PEER = "peer"          # settlement-free peer

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ASGraph:
    """Directed-relationship AS graph.

    Customer-provider edges are stored once (customer -> provider) and
    indexed both ways; peer edges are symmetric.  The graph enforces basic
    sanity: no self-edges, no duplicate contradictory relationships.
    """

    _ases: dict[ASN, AutonomousSystem] = field(default_factory=dict)
    _providers: dict[ASN, set[ASN]] = field(default_factory=dict)
    _customers: dict[ASN, set[ASN]] = field(default_factory=dict)
    _peers: dict[ASN, set[ASN]] = field(default_factory=dict)
    # Cached read-only views returned by the *_of queries.  The queries are
    # hot (route computation, customer cones); handing out a fresh set copy
    # per call dominated their cost.  Caches are invalidated per-ASN on
    # edge insertion.
    _provider_views: dict[ASN, frozenset[ASN]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _customer_views: dict[ASN, frozenset[ASN]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _peer_views: dict[ASN, frozenset[ASN]] = field(
        default_factory=dict, compare=False, repr=False
    )

    # --- node management -----------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Register an AS; duplicate ASNs are topology errors."""
        if asys.asn in self._ases:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self._ases[asys.asn] = asys
        self._providers[asys.asn] = set()
        self._customers[asys.asn] = set()
        self._peers[asys.asn] = set()
        return asys

    def get(self, asn: ASN) -> AutonomousSystem:
        """The AS object for ``asn``; unknown ASNs are topology errors."""
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def asns(self) -> list[ASN]:
        """All registered ASNs, sorted."""
        return sorted(self._ases)

    def ases(self) -> list[AutonomousSystem]:
        """All AS objects, sorted by ASN."""
        return [self._ases[a] for a in self.asns()]

    # --- edge management -------------------------------------------------------

    def _check_nodes(self, a: ASN, b: ASN) -> None:
        if a == b:
            raise TopologyError(f"self-relationship on ASN {a}")
        if a not in self._ases:
            raise TopologyError(f"unknown ASN {a}")
        if b not in self._ases:
            raise TopologyError(f"unknown ASN {b}")

    def _check_fresh(self, a: ASN, b: ASN) -> None:
        related = (
            b in self._providers[a]
            or b in self._customers[a]
            or b in self._peers[a]
        )
        if related:
            raise TopologyError(f"AS{a} and AS{b} already related")

    def add_customer_provider(self, customer: ASN, provider: ASN) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        self._check_nodes(customer, provider)
        self._check_fresh(customer, provider)
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)
        self._provider_views.pop(customer, None)
        self._customer_views.pop(provider, None)

    def add_peering(self, a: ASN, b: ASN) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        self._check_nodes(a, b)
        self._check_fresh(a, b)
        self._peers[a].add(b)
        self._peers[b].add(a)
        self._peer_views.pop(a, None)
        self._peer_views.pop(b, None)

    # --- queries ----------------------------------------------------------------

    def providers_of(self, asn: ASN) -> frozenset[ASN]:
        """Direct transit providers of ``asn`` (cached read-only view)."""
        view = self._provider_views.get(asn)
        if view is None:
            self.get(asn)
            view = frozenset(self._providers[asn])
            self._provider_views[asn] = view
        return view

    def customers_of(self, asn: ASN) -> frozenset[ASN]:
        """Direct transit customers of ``asn`` (cached read-only view)."""
        view = self._customer_views.get(asn)
        if view is None:
            self.get(asn)
            view = frozenset(self._customers[asn])
            self._customer_views[asn] = view
        return view

    def peers_of(self, asn: ASN) -> frozenset[ASN]:
        """Settlement-free peers of ``asn`` (cached read-only view)."""
        view = self._peer_views.get(asn)
        if view is None:
            self.get(asn)
            view = frozenset(self._peers[asn])
            self._peer_views[asn] = view
        return view

    def relationship(self, a: ASN, b: ASN) -> Relationship | None:
        """Relationship of ``b`` from ``a``'s viewpoint, or None."""
        self.get(a)
        self.get(b)
        if b in self._customers[a]:
            return Relationship.CUSTOMER
        if b in self._providers[a]:
            return Relationship.PROVIDER
        if b in self._peers[a]:
            return Relationship.PEER
        return None

    def degree(self, asn: ASN) -> int:
        """Total number of neighbours of ``asn``."""
        self.get(asn)
        return (
            len(self._providers[asn])
            + len(self._customers[asn])
            + len(self._peers[asn])
        )

    def provider_free(self) -> list[ASN]:
        """ASes with no providers (the tier-1 clique, typically)."""
        return sorted(a for a in self._ases if not self._providers[a])

    # --- validation ---------------------------------------------------------------

    def assert_hierarchy_acyclic(self) -> None:
        """Raise TopologyError if the customer-provider edges contain a cycle.

        A provider cycle would make "customer cone" ill-defined; generated
        worlds must always pass this check.
        """
        state: dict[ASN, int] = {}  # 0 visiting, 1 done

        for start in self._ases:
            if start in state:
                continue
            stack: list[tuple[ASN, iter]] = [(start, iter(self._providers[start]))]
            state[start] = 0
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for nxt in neighbours:
                    if state.get(nxt) == 0:
                        raise TopologyError(
                            f"provider cycle through AS{node} and AS{nxt}"
                        )
                    if nxt not in state:
                        state[nxt] = 0
                        stack.append((nxt, iter(self._providers[nxt])))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 1
                    stack.pop()
