"""World generation: synthetic Internets calibrated to the paper's datasets.

Three worlds matter:

* the **detection world** — the 22 studied IXPs with members, looking
  glasses, registries and all the messy device behaviours the Section 3
  filters were designed around;
* the **offload world** — a ~30k-AS Internet with a RedIRIS-like NREN, its
  transit providers, the 65 Euro-IX IXPs and a month of NetFlow-style
  traffic, driving the Section 4 offload study;
* the **mega world** — a 10⁵–10⁶-network CAIDA-style tiered hierarchy
  over a columnar (struct-of-arrays) pool and the full Euro-IX catalog,
  built without materializing a single per-network Python object — the
  internet-scale tier behind ``repro study mega``.
"""

from repro.sim.clock import CampaignWindow
from repro.sim.netpool import (
    ColumnarNetworkPool,
    NetworkPool,
    NetworkPoolConfig,
    generate_network_pool,
)
from repro.sim.detection_world import (
    BehaviorRates,
    DetectionWorld,
    DetectionWorldConfig,
    build_detection_world,
)
from repro.sim.megatopo import (
    MegaWorld,
    MegaWorldConfig,
    build_mega_world,
)
from repro.sim.offload_world import (
    OffloadWorld,
    OffloadWorldConfig,
    build_offload_world,
)

__all__ = [
    "CampaignWindow",
    "ColumnarNetworkPool",
    "NetworkPool",
    "NetworkPoolConfig",
    "generate_network_pool",
    "BehaviorRates",
    "DetectionWorld",
    "DetectionWorldConfig",
    "build_detection_world",
    "MegaWorld",
    "MegaWorldConfig",
    "build_mega_world",
    "OffloadWorld",
    "OffloadWorldConfig",
    "build_offload_world",
]
