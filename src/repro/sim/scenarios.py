"""Named, ready-made scenarios.

Most users want one of a handful of standard setups; these constructors
freeze their configurations (and document what each is for) so scripts,
tests and benches share identical worlds.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ixp.catalog import paper_catalog
from repro.sim.detection_world import (
    DetectionWorld,
    DetectionWorldConfig,
    build_detection_world,
)
from repro.sim.megatopo import MegaWorld, MegaWorldConfig, build_mega_world
from repro.sim.offload_world import (
    OffloadWorld,
    OffloadWorldConfig,
    build_offload_world,
)

#: The three-IXP subset used by fast tests and demos: one dual-LG
#: multi-site IXP (Netnod), the partner-heavy TOP-IX, and the
#: anchor-bearing TorIX.
MINI_IXPS = ("Netnod", "TOP-IX", "TorIX")


def paper22(seed: int = 42) -> DetectionWorld:
    """The full Section 3 world: all 22 studied IXPs, paper calibration."""
    return build_detection_world(DetectionWorldConfig(seed=seed))


def mini_specs() -> tuple:
    """The specs of the three mini-world IXPs (for custom configs)."""
    return tuple(s for s in paper_catalog() if s.acronym in MINI_IXPS)


def mini3(seed: int = 11) -> DetectionWorld:
    """A three-IXP world (~350 interfaces) that builds in well under a second."""
    return build_detection_world(
        DetectionWorldConfig(seed=seed, specs=mini_specs())
    )


def single_ixp(acronym: str, seed: int = 11) -> DetectionWorld:
    """A world with exactly one of the 22 studied IXPs."""
    specs = tuple(s for s in paper_catalog() if s.acronym == acronym)
    if not specs:
        raise ConfigurationError(f"unknown studied IXP {acronym!r}")
    return build_detection_world(DetectionWorldConfig(seed=seed, specs=specs))


def rediris(seed: int = 42) -> OffloadWorld:
    """The full Section 4 world: 29,570 contributing networks, 65 IXPs."""
    return build_offload_world(OffloadWorldConfig(seed=seed))


def rediris_small_config(seed: int = 5) -> OffloadWorldConfig:
    """Config of the ~3k-AS offload world (the ``small`` study preset).

    All structural features of the full world are present (tier-1s, megas,
    big eyeballs, giants, regional memberships); only the population is
    scaled down, so percentages move by a few points relative to the full
    scenario.
    """
    return OffloadWorldConfig(
        seed=seed,
        contributing_count=3000,
        tier2_count=80,
        nren_count=8,
        tier1_count=6,
        mega_carrier_count=8,
        big_eyeball_count=30,
        head_pin_count=40,
    )


def rediris_small(seed: int = 5) -> OffloadWorld:
    """A ~3k-AS offload world for fast experimentation."""
    return build_offload_world(rediris_small_config(seed))


def mega_config(seed: int = 0) -> MegaWorldConfig:
    """Config of the 100k-network mega world over the full Euro-IX catalog.

    The first internet-scale tier: a CAIDA-style clique/T1/T2/stub
    hierarchy over a columnar pool — no per-network Python objects are
    materialized anywhere on the build or study path.
    """
    return MegaWorldConfig(size=100_000, seed=seed)


def mega_smoke_config(seed: int = 0) -> MegaWorldConfig:
    """The ~20k-network mega world CI smokes (same shape, smaller pool)."""
    return MegaWorldConfig(size=20_000, seed=seed)


def mega(seed: int = 0) -> MegaWorld:
    """The built 100k-network mega world."""
    return build_mega_world(mega_config(seed))


# -- named study presets (the `repro study` CLI's --scenario values) ----------


def mega_preset_config(name: str) -> MegaWorldConfig:
    """Mega-world config of a named preset (seeds are set per trial)."""
    if name == "mega-smoke":
        return mega_smoke_config()
    if name == "mega":
        return mega_config()
    raise ConfigurationError(f"unknown mega preset {name!r}")


def detection_preset_specs(name: str) -> tuple:
    """IXP specs of a named detection preset (() = the full 22-IXP world)."""
    if name == "mini3":
        return mini_specs()
    if name == "paper22":
        return ()
    raise ConfigurationError(f"unknown detection preset {name!r}")


def offload_preset_config(name: str, engine: str = "vectorized") -> OffloadWorldConfig:
    """Offload-world config of a named preset (seeds are set per trial)."""
    from dataclasses import replace

    if name == "small":
        return replace(rediris_small_config(), engine=engine)
    if name == "paper65":
        return OffloadWorldConfig(engine=engine)
    raise ConfigurationError(f"unknown offload preset {name!r}")


def joint_preset_configs(
    name: str, engine: str = "vectorized"
) -> tuple[DetectionWorldConfig, OffloadWorldConfig]:
    """World-family configs of a named joint detection→offload preset.

    ``small`` pairs the 3-IXP mini detection world with the ~3k-AS offload
    world (a 16-trial joint ensemble runs in seconds); ``paper`` pairs the
    full 22-IXP detection world with the 29,570-network offload world.
    Seeds are set per trial by the study engine.
    """
    if name == "small":
        return (
            DetectionWorldConfig(specs=mini_specs(), engine=engine),
            offload_preset_config("small", engine=engine),
        )
    if name == "paper":
        return (
            DetectionWorldConfig(engine=engine),
            offload_preset_config("paper65", engine=engine),
        )
    raise ConfigurationError(f"unknown joint preset {name!r}")
