"""Campaign time: the four-month probing window and its round schedule.

The paper probes "at different times of the day and different days of the
week" over four months (October 2013 – January 2014).  A *round* is one
sweep over an LG server's target list; rounds are placed at varied
(day, hour) combinations so transient diurnal congestion cannot bias every
sample of an interface the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import DAY, HOUR, MINUTE


@dataclass(frozen=True, slots=True)
class CampaignWindow:
    """A measurement window of ``duration_days`` starting at sim time 0."""

    duration_days: float = 123.0  # Oct 1 2013 .. Jan 31 2014

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ConfigurationError("campaign duration must be positive")

    @property
    def duration_s(self) -> float:
        """Window length in seconds."""
        return self.duration_days * DAY

    def round_start_times(
        self, rounds: int, rng: np.random.Generator, round_span_s: float
    ) -> list[float]:
        """Start times for ``rounds`` sweeps, spread across the window.

        Rounds are placed in equal slices of the window (so they land on
        different days) at rotating hours of day (so they land at different
        local times).  ``round_span_s`` is how long one sweep takes; the
        slice must fit it.
        """
        if rounds <= 0:
            raise ConfigurationError("need at least one round")
        slice_s = self.duration_s / rounds
        if round_span_s > slice_s:
            raise ConfigurationError(
                f"a {round_span_s / DAY:.1f}-day round does not fit in a "
                f"{slice_s / DAY:.1f}-day slice; lower rounds or targets"
            )
        hours = [2.0, 6.0, 10.0, 14.0, 18.0, 22.0]
        times: list[float] = []
        for r in range(rounds):
            slice_start = r * slice_s
            # Random whole day within the slice, rotating hour of day.
            max_day = max(0, int((slice_s - round_span_s) / DAY))
            day = int(rng.integers(0, max_day + 1))
            hour = hours[r % len(hours)]
            start = slice_start + day * DAY + hour * HOUR
            start += float(rng.integers(0, 30)) * MINUTE  # de-align minutes
            # Never spill into the next round's slice (rounds must not
            # overlap: one query per minute per LG server).
            start = min(start, slice_start + slice_s - round_span_s)
            times.append(min(start, self.duration_s - round_span_s))
        return times
