"""Mega-scale tiered worlds: 10⁵–10⁶ networks over the Euro-IX catalog.

The paper-scale worlds (22 IXPs, ~5k candidates) exercise the pipelines;
this module proves they scale.  A mega world is a CAIDA-style tiered AS
topology over a **columnar** network pool:

* a fully-meshed **clique** of the highest-propensity networks (the
  Tier-1 core — no providers, peered with each other);
* a **T1** layer buying transit from the clique;
* a **T2** layer buying transit from T1;
* everyone else a **stub** buying transit from T2.

Tier membership is a pure function of pool propensity (no draws);
provider selection within each layer is propensity-weighted.  IXP
membership draws each Euro-IX exchange's member list from the continent
pool its region maps to, with member counts rescaled so each exchange
keeps its *share* of the population as the world grows
(:func:`repro.ixp.euroix.scaled_member_count`).

Nothing in the build materializes per-network Python objects: the pool
stays struct-of-arrays (:class:`~repro.sim.netpool.ColumnarNetworkPool`),
provider edges live in a CSR table, and memberships are index arrays.
``tests/test_megatopo.py`` pins that with an object-count probe.
:meth:`MegaWorld.to_asgraph` bridges to the object world for small-n
equivalence tests only.

Draw program (statically inventoried by ``repro lint --draw-programs``):

* ``(seed, "megatopo", "pool")`` — the columnar pool's attribute draws
  (realized inside :func:`~repro.sim.netpool._draw_pool_columns`);
* ``(seed, "megatopo", "t1")`` / ``("megatopo", "t2")`` /
  ``("megatopo", "stubs")`` — provider picks per layer;
* ``(seed, "megatopo", "membership", <acronym>)`` — one stream per IXP,
  so adding an exchange never perturbs another's member list.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.bgp.relationships import ASGraph
from repro.errors import ConfigurationError, TopologyError
from repro.geo.cities import default_city_db
from repro.ixp.euroix import EuroIXSpec, euroix_catalog, scaled_member_count
from repro.rand import child_rng, derive_seed
from repro.sim.netpool import (
    SCOPE_CONTINENTS,
    ColumnarNetworkPool,
    NetworkPoolConfig,
    generate_network_pool,
)

#: Euro-IX region → continent code of the membership pool it draws from.
_REGION_CONTINENT = {
    "europe": "EU",
    "north_america": "NA",
    "latin_america": "SA",
    "asia": "AS",
    "africa": "AF",
}

#: Tier codes stored in :attr:`MegaWorld.tier`.
TIER_CLIQUE, TIER_T1, TIER_T2, TIER_STUB = 0, 1, 2, 3


@dataclass(frozen=True, slots=True)
class MegaWorldConfig:
    """Size, seed and tier-shape knobs of one mega world."""

    size: int = 100_000
    seed: int = 0
    first_asn: int = 10_000
    #: Networks in the fully-meshed Tier-1 core.
    clique_size: int = 12
    #: Fractions of the pool in the transit layers (rest are stubs).
    t1_fraction: float = 0.004
    t2_fraction: float = 0.06
    #: Transit providers bought by each member of a layer.
    providers_per_t1: int = 3
    providers_per_t2: int = 2
    providers_per_stub: int = 2
    #: Smallest scaled IXP membership (see ``scaled_member_count``).
    member_floor: int = 8

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError("world size must be positive")
        if self.clique_size < 2:
            raise ConfigurationError("the clique needs at least 2 networks")
        if not 0 < self.t1_fraction < 1 or not 0 < self.t2_fraction < 1:
            raise ConfigurationError("tier fractions must be in (0, 1)")
        if self.clique_size + self.t1_count + self.t2_count >= self.size:
            raise ConfigurationError(
                "tier sizes leave no stub networks; shrink the fractions"
            )
        if self.providers_per_t1 > self.clique_size:
            raise ConfigurationError("more T1 providers than clique members")
        if self.providers_per_t2 > self.t1_count:
            raise ConfigurationError("more T2 providers than T1 networks")
        if self.providers_per_stub > self.t2_count:
            raise ConfigurationError("more stub providers than T2 networks")
        if min(self.providers_per_t1, self.providers_per_t2,
               self.providers_per_stub) < 1:
            raise ConfigurationError("every non-clique tier buys transit")

    @property
    def t1_count(self) -> int:
        return max(1, int(self.t1_fraction * self.size))

    @property
    def t2_count(self) -> int:
        return max(1, int(self.t2_fraction * self.size))


@dataclass
class MegaWorld:
    """A built mega world: columnar pool + CSR topology + memberships.

    Every field is either the config, the pool, the IXP catalog, or a
    numpy array — which is what makes the world transportable through
    shared memory without pickling (see
    :mod:`repro.experiments.transport`): :meth:`export_columns` hands the
    arrays out, :meth:`from_columns` rebuilds an equivalent world around
    attached views.
    """

    config: MegaWorldConfig
    pool: ColumnarNetworkPool
    #: Tier code per network (TIER_CLIQUE … TIER_STUB).
    tier: np.ndarray
    #: CSR provider table: network ``i``'s providers are
    #: ``provider_indices[provider_indptr[i]:provider_indptr[i+1]]``
    #: (pool indices, not ASNs — the object graph never materializes).
    provider_indptr: np.ndarray
    provider_indices: np.ndarray
    #: The Euro-IX catalog the memberships realize, plus scaled counts.
    catalog: tuple[EuroIXSpec, ...]
    member_counts: np.ndarray
    #: CSR membership table: IXP ``j``'s members are
    #: ``member_indices[member_indptr[j]:member_indptr[j+1]]``.
    member_indptr: np.ndarray
    member_indices: np.ndarray
    _coverage: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.pool)

    @property
    def ixp_count(self) -> int:
        return len(self.catalog)

    def providers_of_index(self, i: int) -> np.ndarray:
        """Pool indices of network ``i``'s transit providers."""
        return self.provider_indices[
            self.provider_indptr[i]:self.provider_indptr[i + 1]
        ]

    def members_of(self, ixp: int) -> np.ndarray:
        """Pool indices of IXP ``ixp``'s members (draw order)."""
        return self.member_indices[
            self.member_indptr[ixp]:self.member_indptr[ixp + 1]
        ]

    def membership_masks(self) -> np.ndarray:
        """``(n, ceil(ixps/64))`` uint64: bit ``j`` set when network ``i``
        is itself a member of IXP ``j`` (no cone propagation).

        This is what the offload-style greedy weighs traffic against:
        peering at an IXP reaches the members' own prefixes.  The cone-
        propagated :meth:`coverage_masks` saturates at mega densities
        (every large IXP has a clique member whose cone is the whole
        world), so it serves as a connectivity check, not a metric.
        """
        n = len(self)
        words = (self.ixp_count + 63) // 64
        masks = np.zeros((n, words), dtype=np.uint64)
        for j in range(self.ixp_count):
            bit = np.uint64(1 << (j % 64))
            masks[self.members_of(j), j // 64] |= bit
        return masks

    def coverage_masks(self) -> np.ndarray:
        """``(n, ceil(ixps/64))`` uint64: bit ``j`` of row ``i`` set when
        network ``i`` is reachable through IXP ``j``.

        A member's entire customer cone is served through its IXP port,
        so membership bits propagate *down* the hierarchy: a network
        inherits every IXP bit of its providers.  The tier DAG has depth
        3 (clique → T1 → T2 → stub), so three per-tier sweeps — each one
        gather + bitwise-OR over the fixed provider fan-in — close the
        propagation without any per-node Python loop.
        """
        if self._coverage is not None:
            return self._coverage
        masks = self.membership_masks()
        for level in (TIER_T1, TIER_T2, TIER_STUB):
            rows = np.flatnonzero(self.tier == level)
            if not rows.size:
                continue
            fan_in = int(
                self.provider_indptr[rows[0] + 1]
                - self.provider_indptr[rows[0]]
            )
            slots = (
                self.provider_indptr[rows][:, None]
                + np.arange(fan_in)[None, :]
            )
            providers = self.provider_indices[slots]  # (m, fan_in)
            inherited = np.bitwise_or.reduce(masks[providers], axis=1)
            masks[rows] |= inherited
        self._coverage = masks
        return masks

    def reach_counts(self) -> np.ndarray:
        """Networks reachable through each IXP (members + their cones)."""
        masks = self.coverage_masks()
        counts = np.zeros(self.ixp_count, dtype=np.int64)
        for j in range(self.ixp_count):
            bit = np.uint64(1 << (j % 64))
            counts[j] = int(np.count_nonzero(masks[:, j // 64] & bit))
        return counts

    def assert_hierarchy_sound(self) -> None:
        """Every provider edge must point strictly up the tier order.

        Strictly-decreasing tier numbers along provider edges make the
        customer-provider graph acyclic by construction; this re-checks
        the invariant on the arrays (O(edges), no object graph needed).
        """
        counts = np.diff(self.provider_indptr)
        customers = np.repeat(np.arange(len(self)), counts)
        if np.any(self.tier[self.provider_indices] >= self.tier[customers]):
            raise TopologyError("provider edge does not climb the hierarchy")

    def to_asgraph(self) -> ASGraph:
        """Materialize the object AS graph (small-n equivalence tests only).

        Builds one ``AutonomousSystem`` per network — the exact O(n)
        object path the mega tier exists to avoid; nothing on the study
        path calls this.
        """
        graph = ASGraph()
        graph.add_ases_bulk(
            self.pool.network(i).asys for i in range(len(self))
        )
        counts = np.diff(self.provider_indptr)
        customers = self.pool.asn[np.repeat(np.arange(len(self)), counts)]
        providers = self.pool.asn[self.provider_indices]
        # CSR rows are ascending-customer and contiguous, which is the
        # add_customer_provider_arrays contract.
        graph.add_customer_provider_arrays(customers, providers)
        clique = np.flatnonzero(self.tier == TIER_CLIQUE)
        for a in range(len(clique)):
            for b in range(a + 1, len(clique)):
                graph.add_peering(
                    int(self.pool.asn[clique[a]]),
                    int(self.pool.asn[clique[b]]),
                )
        return graph

    # --- zero-copy transport ------------------------------------------------

    def export_columns(self) -> dict[str, np.ndarray]:
        """Every array of the world, keyed for :meth:`from_columns`.

        The returned dict is exactly what the shared-memory transport
        copies into a segment; everything else about the world (config,
        catalog, city lists) is deterministic from ``config`` and is
        rebuilt on attach rather than shipped.
        """
        return {
            "pool.asn": self.pool.asn,
            "pool.continent_idx": self.pool.continent_idx,
            "pool.city_idx": self.pool.city_idx,
            "pool.kind_idx": self.pool.kind_idx,
            "pool.policy_idx": self.pool.policy_idx,
            "pool.propensity": self.pool.propensity,
            "pool.scope_mask": self.pool.scope_mask,
            "pool.address_space": self.pool.address_space,
            "tier": self.tier,
            "provider_indptr": self.provider_indptr,
            "provider_indices": self.provider_indices,
            "member_counts": self.member_counts,
            "member_indptr": self.member_indptr,
            "member_indices": self.member_indices,
        }

    @classmethod
    def from_columns(
        cls, config: MegaWorldConfig, columns: dict[str, np.ndarray]
    ) -> "MegaWorld":
        """Rebuild a world around (possibly shared-memory-backed) arrays.

        The inverse of :meth:`export_columns`: array views are adopted
        as-is (zero-copy), deterministic structure (pool config, city
        lists, IXP catalog) is rebuilt from ``config``.
        """
        city_db = default_city_db()
        pool = ColumnarNetworkPool(
            config=_pool_config(config),
            asn=columns["pool.asn"],
            continent_idx=columns["pool.continent_idx"],
            city_idx=columns["pool.city_idx"],
            kind_idx=columns["pool.kind_idx"],
            policy_idx=columns["pool.policy_idx"],
            propensity=columns["pool.propensity"],
            scope_mask=columns["pool.scope_mask"],
            address_space=columns["pool.address_space"],
            cities_by_continent={
                c: city_db.by_continent(c) for c in SCOPE_CONTINENTS
            },
        )
        return cls(
            config=config,
            pool=pool,
            tier=columns["tier"],
            provider_indptr=columns["provider_indptr"],
            provider_indices=columns["provider_indices"],
            catalog=euroix_catalog(),
            member_counts=columns["member_counts"],
            member_indptr=columns["member_indptr"],
            member_indices=columns["member_indices"],
        )


def _pool_config(config: MegaWorldConfig) -> NetworkPoolConfig:
    """The columnar pool config of a mega world (dedicated child stream)."""
    return NetworkPoolConfig(
        size=config.size,
        seed=derive_seed(config.seed, "megatopo", "pool"),
        first_asn=config.first_asn,
        engine="columnar",
    )


def _weighted_rows(
    rng: np.random.Generator,
    candidates: np.ndarray,
    weights: np.ndarray,
    rows: int,
    k: int,
) -> np.ndarray:
    """``rows × k`` distinct weighted picks from ``candidates``.

    Inverse-CDF sampling via searchsorted on the cumulative weights, so
    memory stays O(rows × k) — a per-row probability matrix would be
    O(rows × len(candidates)), which at 10⁶ stubs × 6k T2s is ruinous.
    Rows containing duplicates are redrawn whole; with k ≤ 3 and dozens
    of candidates the redraw set collapses geometrically.
    """
    cum = np.cumsum(weights)
    total = cum[-1]
    picks = candidates[
        np.searchsorted(cum, rng.random((rows, k)) * total, side="right")
    ]
    if k == 1:
        return picks
    while True:
        srt = np.sort(picks, axis=1)
        dup_rows = np.flatnonzero((srt[:, 1:] == srt[:, :-1]).any(axis=1))
        if not dup_rows.size:
            return picks
        picks[dup_rows] = candidates[
            np.searchsorted(
                cum, rng.random((dup_rows.size, k)) * total, side="right"
            )
        ]


def build_mega_world(config: MegaWorldConfig | None = None) -> MegaWorld:
    """Generate one mega world deterministically from ``config.seed``.

    Pure array program end to end: pool columns, propensity-ordered tier
    assignment, per-layer weighted provider picks into a CSR table, and
    per-IXP membership draws.  GC is suspended for the allocation burst
    (same rationale as the offload builder: generational collections
    mid-build scan long-lived arrays and reclaim nothing).
    """
    config = config or MegaWorldConfig()
    resume_gc = gc.isenabled()
    if resume_gc:
        gc.disable()
    try:
        return _build(config)
    finally:
        if resume_gc:
            gc.enable()


def _build(config: MegaWorldConfig) -> MegaWorld:
    pool = generate_network_pool(default_city_db(), _pool_config(config))
    assert isinstance(pool, ColumnarNetworkPool)
    n = config.size

    # Tier assignment is propensity order, no draws: the networks that
    # join the most IXPs are exactly the transit heavyweights.
    order = np.argsort(-pool.propensity, kind="stable")
    tier = np.full(n, TIER_STUB, dtype=np.uint8)
    clique = np.sort(order[: config.clique_size])
    t1 = np.sort(order[config.clique_size:config.clique_size + config.t1_count])
    t2_lo = config.clique_size + config.t1_count
    t2 = np.sort(order[t2_lo:t2_lo + config.t2_count])
    tier[clique] = TIER_CLIQUE
    tier[t1] = TIER_T1
    tier[t2] = TIER_T2
    stubs = np.flatnonzero(tier == TIER_STUB)

    # Provider picks per layer, each from its own child stream.
    t1_picks = _weighted_rows(
        child_rng(config.seed, "megatopo", "t1"),
        clique, pool.propensity[clique], len(t1), config.providers_per_t1,
    )
    t2_picks = _weighted_rows(
        child_rng(config.seed, "megatopo", "t2"),
        t1, pool.propensity[t1], len(t2), config.providers_per_t2,
    )
    stub_picks = _weighted_rows(
        child_rng(config.seed, "megatopo", "stubs"),
        t2, pool.propensity[t2], len(stubs), config.providers_per_stub,
    )

    counts = np.zeros(n, dtype=np.int64)
    counts[t1] = config.providers_per_t1
    counts[t2] = config.providers_per_t2
    counts[stubs] = config.providers_per_stub
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int32)
    for rows, picks in ((t1, t1_picks), (t2, t2_picks), (stubs, stub_picks)):
        slots = indptr[rows][:, None] + np.arange(picks.shape[1])[None, :]
        indices[slots.ravel()] = picks.ravel()

    # IXP memberships: one stream per exchange, drawn from the continent
    # pool its Euro-IX region maps to, counts rescaled to the world size.
    catalog = euroix_catalog()
    member_counts = np.array(
        [
            scaled_member_count(spec, n, floor=config.member_floor)
            for spec in catalog
        ],
        dtype=np.int64,
    )
    member_lists = []
    for spec, count in zip(catalog, member_counts.tolist()):
        rng = child_rng(config.seed, "megatopo", "membership", spec.acronym)
        continent = _REGION_CONTINENT[spec.region]
        member_lists.append(
            pool.sample_member_indices(rng, continent, count).astype(np.int32)
        )
    member_indptr = np.zeros(len(catalog) + 1, dtype=np.int64)
    np.cumsum(member_counts, out=member_indptr[1:])
    member_indices = (
        np.concatenate(member_lists)
        if member_lists
        else np.zeros(0, dtype=np.int32)
    )

    world = MegaWorld(
        config=config,
        pool=pool,
        tier=tier,
        provider_indptr=indptr,
        provider_indices=indices,
        catalog=catalog,
        member_counts=member_counts,
        member_indptr=member_indptr,
        member_indices=member_indices,
    )
    world.assert_hierarchy_sound()
    return world


def iter_ixp_names(world: MegaWorld) -> Iterator[str]:
    """IXP acronyms in catalog (membership-table) order."""
    for spec in world.catalog:
        yield spec.acronym
