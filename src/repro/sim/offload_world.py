"""Builder for the offload world: a RedIRIS-like NREN in a ~30k-AS Internet.

Reproduces the Section 4 setting:

* **RedIRIS** buys transit from two tier-1s, peers with GÉANT and a few
  major CDNs, and holds memberships at CATNIX and ESpanix;
* **29,570 contributing networks** exchange transit traffic with RedIRIS,
  with the double-Pareto rank profile of Figure 5a;
* **65 Euro-IX IXPs** have memberships drawn from regional pools so the
  big-European-trio overlap is high while Terremark shares only a few
  dozen (global) members with them;
* customer cones, AS paths, peering policies and address space give the
  offload estimator everything Figures 5–10 consume.

Calibration levers and what they buy:

* ``tier1_only_stub_fraction`` — stubs homed exclusively to tier-1s are
  unreachable via peering (tier-1s sit at ESpanix and are excluded), which
  caps the maximum offload fraction like the paper's ~25–33%;
* ``member_tier2_fraction`` — how many transit networks show up at IXPs,
  which controls both the 12,238-network offloadable set and Figure 10's
  drop from 2.6 B to ~1 B addresses after the first IXP;
* the CDN rank list — places the named content analogues among the top
  transit contributors, making Figure 6's top-30 content-heavy.

Engines and the draw order
--------------------------
``OffloadWorldConfig(engine=...)`` selects how the world is materialized:

* ``"vectorized"`` (default) builds struct-of-arrays per tier and inserts
  networks and edges through the bulk :class:`~repro.bgp.relationships.
  ASGraph` APIs;
* ``"scalar"`` is the reference engine: it materializes one network at a
  time through the fully-checked ``add_as``/``add_customer_provider``
  calls.

A third realizer lives in :mod:`repro.sim.offload_batch`: the
trial-batched builder inherits this module's draw-bearing stages
unchanged and stacks k seeds' worlds over shared static tables for
``StudyConfig.trial_batch`` runs — same streams, same order, once per
seed, so a batched build is bit-identical to k single builds.

Both engines consume **identical random draws**: every stage draws its
arrays from a dedicated child stream in a fixed order, so the two
engines produce bit-identical worlds (the engine-equivalence suite
asserts graphs, memberships, traffic and the greedy IXP expansion order
all match).  The authoritative per-engine stream inventory is now
*generated*, not hand-maintained: ``repro lint --draw-programs``
extracts it statically, and the ``draw-engine-parity`` lint rule fails
the build if the engines' streams ever diverge.  What no extractor can
read off is the draw order *within* each stream — that contract stays
documented here:

* ``(seed, "offload", "giants")`` — provider keys ``U(G, T)``; each giant
  takes the two lowest-key tier-1s of its row.
* ``(seed, "offload", "tier2s")`` — region uniforms ``U(n2)`` (inverse-CDF
  over the regional weights), policy uniforms ``U(n2)``, uplink-count
  uniforms ``U(n2, 2)``, uplink keys ``U(n2, T)`` (lowest ``count`` keys).
* ``(seed, "offload", "stubs")`` — region ``U(n)``, kind ``U(n)``,
  tier-1-only ``U(n)``, IXP-goer ``U(n)``, policy ``U(n)``, big-eyeball
  slot keys ``U(n)`` (the ``big_eyeball_count`` lowest keys become
  eyeballs), provider-count ``U(n, 2)``, homing-pool ``U(n)``, propensity
  ``U(n)``; then per category, in this order: eyeball provider keys
  ``U(B, T)``, eyeball mega-homing ``U(B)``, eyeball mega picks ``U(B)``,
  tier-1-only provider keys ``U(K1, T)``, and normal-stub provider picks
  ``U(K2, 3)`` (index = ``floor(u * len(pool))`` into the mega / regional /
  global tier-2 pool selected by the homing-pool uniform).
* ``(seed, "traffic")`` — the Figure 5a rank-profile pipeline (unchanged
  from the start: totals, permutation, in/out split, head pinning).
* ``(seed, "offload", "globals")`` — which member tier-2s are global
  IXP-goers; ``(seed, "membership", acronym)`` — one stream per IXP whose
  member draw is a weighted sample without replacement realized as
  exponential-key (Efraimidis–Spirakis) top-``k`` selection.
* ``(seed, "offload", "addrspace")`` — access-network multipliers
  ``U(10, 80)`` then tier-1/transit multipliers ``U(4, 40)`` (each in
  ascending-ASN order), then big-eyeball log-normal share weights.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.bgp.cone import customer_cone
from repro.bgp.relationships import ASGraph
from repro.bgp.routing import ASPath, RouteComputation
from repro.bgp.table import ReversedPathTable
from repro.errors import ConfigurationError, TopologyError
from repro.ixp.euroix import EuroIXSpec, euroix_catalog
from repro.netflow.collector import FlowCollector
from repro.netflow.traffic import (
    TrafficMatrix,
    TrafficMatrixConfig,
    rank_profile_totals,
    split_totals_by_kind,
)
from repro.rand import child_rng, weighted_top_k
from repro.types import ASN, NetworkKind, PeeringPolicy

_REGIONS = ("europe", "north_america", "latin_america", "asia", "africa")
_STUB_REGION_WEIGHTS = (0.40, 0.20, 0.15, 0.17, 0.08)

#: Names for the content/CDN giants of Figure 6 (Microsoft/Yahoo/CDN
#: analogues).  Policies make the peer-group story work: none are open, so
#: peer group 1 misses them; the selective ones power group 2's jump.
_GIANTS: tuple[tuple[str, PeeringPolicy], ...] = (
    ("macrosoft", PeeringPolicy.SELECTIVE),
    ("yahu", PeeringPolicy.SELECTIVE),
    ("akamight", PeeringPolicy.SELECTIVE),
    ("goggle", PeeringPolicy.RESTRICTIVE),
    ("limeligth", PeeringPolicy.SELECTIVE),
    ("cachefly-like", PeeringPolicy.SELECTIVE),
    ("netfilm", PeeringPolicy.SELECTIVE),
    ("fastlane-cdn", PeeringPolicy.SELECTIVE),
    ("edgecastle", PeeringPolicy.SELECTIVE),
    ("cloudfriend", PeeringPolicy.SELECTIVE),
    ("bookface", PeeringPolicy.RESTRICTIVE),
    ("tweeter", PeeringPolicy.SELECTIVE),
    ("streamworks", PeeringPolicy.SELECTIVE),
    ("photopile", PeeringPolicy.SELECTIVE),
    ("gamegrid", PeeringPolicy.SELECTIVE),
    ("adnexus", PeeringPolicy.SELECTIVE),
    ("vidvault", PeeringPolicy.SELECTIVE),
    ("newsriver", PeeringPolicy.SELECTIVE),
    ("mapmaker", PeeringPolicy.RESTRICTIVE),
    ("storagebarn", PeeringPolicy.SELECTIVE),
    ("musicmesh", PeeringPolicy.SELECTIVE),
    ("softmirror", PeeringPolicy.SELECTIVE),
    ("pixelpark", PeeringPolicy.SELECTIVE),
    ("webwharf", PeeringPolicy.SELECTIVE),
    ("datadray", PeeringPolicy.SELECTIVE),
    ("flixfarm", PeeringPolicy.SELECTIVE),
)

#: Transit-rank slots reserved for the giants (1-based ranks in the
#: combined in+out distribution).  Concentrated in the top ~105 so that a
#: majority of Figure 6's top-30 offload contributors are the
#: endpoint-dominant content networks (as in the paper), while together
#: they hold ~14% of the transit traffic — low enough to keep the maximum
#: offload near the paper's 25–33% once the rest of the head is pinned to
#: unreachable eyeballs.
_GIANT_RANKS = (
    4, 6, 8, 10, 12, 14, 16, 18, 21, 24, 27, 30, 33, 36, 39, 42,
    45, 48, 51, 54, 60, 67, 75, 84, 94, 105,
)

#: Regional weight of RedIRIS traffic: a Spanish NREN exchanges most of its
#: transit traffic with European and North American networks, a meaningful
#: share with Latin America, and little with Asia/Africa.
_REGION_TRAFFIC_MULTIPLIER = {
    "europe": 1.35,
    "north_america": 1.15,
    "latin_america": 0.85,
    "asia": 0.45,
    "africa": 0.25,
}

#: IXPs whose membership pools span several regions.  Terremark (Miami)
#: hosts the South/Central-American carriers the paper highlights;
#: CoreSite (Los Angeles) fronts trans-Pacific traffic.
_IXP_POOL_OVERRIDES: dict[str, tuple[str, ...]] = {
    "Terremark": ("north_america", "latin_america"),
    "CoreSite": ("north_america", "asia"),
}

#: Stub business-type mix (percent slots, drawn by ``floor(u * 100)``).
_STUB_KINDS = (
    [NetworkKind.ACCESS] * 40 + [NetworkKind.HOSTING] * 18
    + [NetworkKind.CONTENT] * 14 + [NetworkKind.ENTERPRISE] * 22
    + [NetworkKind.CDN] * 2 + [NetworkKind.TRANSIT] * 4
)

#: Tier-2 policy mix (percent slots).
_TIER2_POLICIES = (
    [PeeringPolicy.OPEN] * 62 + [PeeringPolicy.SELECTIVE] * 26
    + [PeeringPolicy.RESTRICTIVE] * 12
)

_ENGINES = ("vectorized", "scalar")


@dataclass(frozen=True, slots=True)
class OffloadWorldConfig:
    """Size and calibration knobs for the offload world."""

    seed: int = 42
    contributing_count: int = 29_570
    tier1_count: int = 10
    tier2_count: int = 420
    nren_count: int = 36
    days: int = 28
    traffic: TrafficMatrixConfig | None = None
    #: Stubs homed only to tier-1 providers (never offloadable).
    tier1_only_stub_fraction: float = 0.34
    #: Transit (tier-2) networks that appear at IXPs at all.
    member_tier2_fraction: float = 0.55
    #: Stubs that are IXP-goers (hosting/content/access at exchanges).
    ixpgoer_stub_fraction: float = 0.115
    #: Top transit ranks (outside the giants' slots) pinned onto tier-1-only
    #: eyeballs: the traffic head a peering strategy cannot touch.
    head_pin_count: int = 280
    #: Target total announced IPv4 space (Figure 10's 2.6 B).
    total_address_space: float = 2.6e9
    #: Global mega-carriers: the biggest tier-2s, present at every IXP,
    #: whose worldwide cones drive Figure 10's steep first-IXP drop.
    mega_carrier_count: int = 30
    #: Large eyeball networks that hold most of the address space.
    big_eyeball_count: int = 120
    #: Share of all announced space held by the big eyeballs.
    big_eyeball_space_share: float = 0.68
    #: Probability a big eyeball buys from a mega-carrier (else tier-1-only).
    big_eyeball_mega_homed: float = 0.75
    #: World materialization engine; both consume identical draws (see the
    #: module docstring).
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        giants = len(_GIANTS)
        if self.contributing_count <= self.tier2_count + giants + 200:
            raise ConfigurationError("contributing_count too small")
        if self.tier1_count < 2:
            raise ConfigurationError("need at least two tier-1s for RedIRIS")
        for fraction in (
            self.tier1_only_stub_fraction,
            self.member_tier2_fraction,
            self.ixpgoer_stub_fraction,
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError("fractions must be in [0, 1]")
        if self.engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown offload-world engine {self.engine!r}"
            )


def _split_by_owner(
    asns: list, owners: np.ndarray, values: np.ndarray
) -> dict:
    """Split owner-sorted (owner, value) pairs into per-owner array views.

    ``owners`` must be non-decreasing; the returned dict maps each present
    owner's ASN to a read-only-by-convention view of its contiguous run in
    ``values`` (no copies — ``np.split`` costs ~100 ms for the paper
    world's ~30k runs, plain slicing is ~milliseconds).
    """
    if owners.size == 0:
        return {}
    bounds = np.flatnonzero(np.diff(owners)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [owners.size]))
    return {
        asns[int(owners[s])]: values[s:e]
        for s, e in zip(starts.tolist(), ends.tolist())
    }


@dataclass
class OffloadWorld:
    """The generated world plus every precomputed view the study needs."""

    config: OffloadWorldConfig
    graph: ASGraph
    rediris: ASN
    transit_providers: tuple[ASN, ASN]
    tier1s: tuple[ASN, ...]
    geant: ASN
    nrens: tuple[ASN, ...]
    giants: tuple[ASN, ...]
    direct_peer_cdns: tuple[ASN, ...]
    euroix: tuple[EuroIXSpec, ...]
    memberships: dict[str, frozenset[ASN]]
    contributing: list[ASN]
    matrix: TrafficMatrix
    inbound_paths: dict[ASN, ASPath]
    collector: FlowCollector
    region_of: dict[ASN, str]
    _contrib_index: dict[ASN, int] = field(default_factory=dict)
    _cone_cache: dict[ASN, frozenset[ASN]] = field(default_factory=dict)
    _cone_tables: tuple[dict, dict] | None = field(
        default=None, repr=False, compare=False
    )
    _cone_contrib_arrays: dict[ASN, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    _cone_all_arrays: dict[ASN, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self._contrib_index:
            self._contrib_index = {a: i for i, a in enumerate(self.contributing)}

    # -- lookups -----------------------------------------------------------------

    def contributing_index(self, asn: ASN) -> int | None:
        """Index of ``asn`` in the contributing arrays, or None."""
        return self._contrib_index.get(asn)

    def cone(self, asn: ASN) -> frozenset[ASN]:
        """Customer cone of ``asn`` (cached)."""
        cached = self._cone_cache.get(asn)
        if cached is None:
            cached = frozenset(customer_cone(self.graph, asn))
            self._cone_cache[asn] = cached
        return cached

    def policy_of(self, asn: ASN) -> PeeringPolicy:
        """Published peering policy of a network."""
        return self.graph.get(asn).policy

    def kind_of(self, asn: ASN) -> NetworkKind:
        """Business type of a network."""
        return self.graph.get(asn).kind

    # -- cone index tables (the offload bitsets' raw material) -------------------

    def _cone_index_tables(self) -> tuple[dict, dict]:
        """Per-AS cone membership as index arrays, built bottom-up.

        Returns ``(contrib_table, all_table)``: ``contrib_table[a]`` holds
        the indices (into :attr:`contributing`) of the contributing
        networks inside ``a``'s customer cone; ``all_table[a]`` the indices
        into the sorted :meth:`all_asns` list.  The relation is inverted —
        ``i ∈ cone(a)  ⇔  a ∈ closure(i)`` where *closure* is a network
        plus its transitive providers — and closures are computed as one
        array program over the customer→provider DAG: a Kahn level order
        (all providers of a level-``k`` node sit in levels ``< k``), then
        per level one gather of every provider closure (CSR multi-slice),
        one ``np.unique`` dedup over packed (member, ancestor) keys, and
        one COO append.  A final argsort by (ancestor, member) splits the
        pair list into the per-ancestor index tables.  The previous
        implementation did the same walk with per-AS frozenset unions and
        a Python scatter loop (~0.3 s of the old ``offload_groups_build``
        stage on the paper world).
        """
        if self._cone_tables is None:
            asns = self.graph.asns()
            n = len(asns)
            id_of = {asn: i for i, asn in enumerate(asns)}

            # customer→provider edges as id arrays.
            cust_ids: list[int] = []
            prov_ids: list[int] = []
            pending = np.zeros(n, dtype=np.int64)  # unresolved providers
            for asn, providers in self.graph.provider_sets().items():
                if not providers:
                    continue
                v = id_of[asn]
                pending[v] = len(providers)
                for provider in providers:
                    cust_ids.append(v)
                    prov_ids.append(id_of[provider])
            cust = np.asarray(cust_ids, dtype=np.int64)
            prov = np.asarray(prov_ids, dtype=np.int64)

            # CSR closure storage, appended level by level.
            closure_start = np.zeros(n, dtype=np.int64)
            closure_len = np.zeros(n, dtype=np.int64)
            closure_values = np.empty(0, dtype=np.int64)
            member_chunks: list[np.ndarray] = []   # COO: member ids
            ancestor_chunks: list[np.ndarray] = []  # COO: ancestor ids

            frontier = np.flatnonzero(pending == 0)
            resolved = 0
            while frontier.size:
                resolved += frontier.size
                if closure_values.size:
                    in_frontier = np.zeros(n, dtype=bool)
                    in_frontier[frontier] = True
                    sel = in_frontier[cust]
                    e_cust, e_prov = cust[sel], prov[sel]
                    lens = closure_len[e_prov]
                    # Multi-slice gather of every provider closure.
                    starts = np.repeat(closure_start[e_prov], lens)
                    offsets = np.arange(lens.sum()) - np.repeat(
                        np.cumsum(lens) - lens, lens
                    )
                    owners = np.repeat(e_cust, lens)
                    ancestors = closure_values[starts + offsets]
                    owners = np.concatenate([owners, frontier])
                    ancestors = np.concatenate([ancestors, frontier])
                else:  # first level: roots close over themselves only
                    owners = ancestors = frontier
                # Dedup (owner, ancestor) pairs; keys sort owner-major, so
                # each owner's closure lands contiguous and v-ascending.
                keys = np.unique(owners * np.int64(n) + ancestors)
                owners, ancestors = keys // n, keys % n
                uniq, first, counts = np.unique(
                    owners, return_index=True, return_counts=True
                )
                closure_start[uniq] = closure_values.size + first
                closure_len[uniq] = counts
                closure_values = np.concatenate([closure_values, ancestors])
                member_chunks.append(owners)
                ancestor_chunks.append(ancestors)
                # Kahn step: release customers whose providers are done.
                in_frontier = np.zeros(n, dtype=bool)
                in_frontier[frontier] = True
                done = in_frontier[prov]
                pending -= np.bincount(cust[done], minlength=n)
                pending[frontier] = -1  # never re-enter the frontier
                frontier = np.flatnonzero(pending == 0)
            if resolved != n:
                raise TopologyError(
                    "provider graph has a cycle; cone tables undefined"
                )

            members = np.concatenate(member_chunks)
            ancestors = np.concatenate(ancestor_chunks)
            # Per-ancestor member lists, members ascending within each.
            order = np.argsort(ancestors * np.int64(n) + members)
            members = members[order].astype(np.int32)
            ancestors = ancestors[order]
            all_table = _split_by_owner(asns, ancestors, members)

            contrib_of = np.full(n, -1, dtype=np.int64)
            for asn, ci in self._contrib_index.items():
                contrib_of[id_of[asn]] = ci
            keep = contrib_of[members] >= 0
            c_members = contrib_of[members[keep]].astype(np.int32)
            c_ancestors = ancestors[keep]
            contrib_table = _split_by_owner(asns, c_ancestors, c_members)
            self._cone_tables = (contrib_table, all_table)
        return self._cone_tables

    def cone_contrib_indices(self, asn: ASN) -> np.ndarray:
        """Contributing-array indices covered by ``asn``'s customer cone."""
        got = self._cone_contrib_arrays.get(asn)
        if got is None:
            table = self._cone_index_tables()[0]
            got = np.asarray(table.get(asn, ()), dtype=np.int32)
            self._cone_contrib_arrays[asn] = got
        return got

    def cone_all_indices(self, asn: ASN) -> np.ndarray:
        """Sorted-ASN-array indices covered by ``asn``'s customer cone."""
        got = self._cone_all_arrays.get(asn)
        if got is None:
            table = self._cone_index_tables()[1]
            got = np.asarray(table.get(asn, ()), dtype=np.int32)
            self._cone_all_arrays[asn] = got
        return got

    def contributing_mask_for_members(self, members: frozenset[ASN]) -> np.ndarray:
        """Boolean mask over contributing networks offloadable via ``members``.

        A contributing network is offloadable when it belongs to a member's
        customer cone (members themselves included).
        """
        mask = np.zeros(len(self.contributing), dtype=bool)
        # Scattering True into a boolean mask is commutative: any member
        # order produces the same mask.  # repro-lint: ok[det-set-iter]
        for member in members:
            mask[self.cone_contrib_indices(member)] = True
        return mask

    def all_asns(self) -> list[ASN]:
        """Every ASN in the world, sorted."""
        return self.graph.asns()

    def address_space_of(self, asns) -> float:
        """Total announced address space of a set of ASes."""
        return float(sum(self.graph.get(a).address_space for a in asns))

    def total_address_space(self) -> float:
        """Announced space of the whole world (Figure 10's 2.6 B)."""
        return self.address_space_of(self.graph.asns())


# ---------------------------------------------------------------------------


def build_offload_world(config: OffloadWorldConfig | None = None) -> OffloadWorld:
    """Generate the offload world deterministically from ``config.seed``."""
    config = config or OffloadWorldConfig()
    if config.engine == "scalar":
        builder: _OffloadBuilderBase = _ScalarOffloadBuilder(config)
    else:
        builder = _VectorOffloadBuilder(config)
    # The build allocates ~100k long-lived objects (ASes, paths, sets);
    # generational collections triggered mid-build scan them repeatedly and
    # cost ~25% wall time while reclaiming nothing.  Suspend collection for
    # the allocation burst.
    resume_gc = gc.isenabled()
    if resume_gc:
        gc.disable()
    try:
        return builder.build()
    finally:
        if resume_gc:
            gc.enable()


class _OffloadBuilderBase:
    """Shared scaffolding + the stage-array draw program (see module doc).

    Subclasses implement :meth:`_materialize_tier2s` and
    :meth:`_materialize_stubs` — everything else (scaffold tiers, traffic,
    memberships, address space, routing) is engine-independent and already
    array-native.
    """

    def __init__(self, config: OffloadWorldConfig) -> None:
        self.config = config
        self.graph = ASGraph()
        self.region_of: dict[ASN, str] = {}
        self.ixp_propensity: dict[ASN, float] = {}
        self.tier1_only_stubs: list[ASN] = []
        self.tier1_only_stubs_set: set[ASN] = set()
        self.mega_carriers: list[ASN] = []
        self.big_eyeballs: list[ASN] = []
        # Business kinds recorded as the tiers materialize, so the traffic
        # split never re-derives (and can never disagree with) the graph.
        self._giant_kinds: list[NetworkKind] = []
        self._stub_kinds: list[NetworkKind] = []

    # -- AS creation helpers ------------------------------------------------------

    def _add(
        self,
        asn: int,
        name: str,
        kind: NetworkKind,
        policy: PeeringPolicy,
        region: str,
        address_space: int = 256,
    ) -> ASN:
        value = ASN(asn)
        self.graph.add_as(
            AutonomousSystem(
                asn=value,
                name=name,
                kind=kind,
                policy=policy,
                address_space=address_space,
            )
        )
        self.region_of[value] = region
        return value

    def _stage_rng(self, stage: str) -> np.random.Generator:
        """The child stream for one build stage."""
        return child_rng(self.config.seed, "offload", stage)

    # -- build ------------------------------------------------------------------------

    def build(self) -> OffloadWorld:
        cfg = self.config
        rediris = self._add(
            766, "rediris", NetworkKind.NREN, PeeringPolicy.SELECTIVE, "europe",
            2 ** 20,
        )
        tier1s = self._build_tier1s()
        t1a, t1b = tier1s[0], tier1s[1]
        self.graph.add_customer_provider(rediris, t1a)
        self.graph.add_customer_provider(rediris, t1b)

        geant, nrens = self._build_geant(rediris, tier1s)
        giants = self._build_giants(tier1s)
        direct_cdns = self._build_direct_peer_cdns(rediris, tier1s)
        self._tier2_draws = _Tier2Draws.draw(self)
        tier2s = self._materialize_tier2s(tier1s, self._tier2_draws)
        self._stub_draws = _StubDraws.draw(self, tier1s)
        stubs = self._materialize_stubs(tier1s, tier2s, self._stub_draws)

        contributing = self._contributing_list(giants, tier2s, stubs)
        matrix = self._build_traffic(contributing)
        memberships = self._build_memberships(
            rediris, tier1s, giants, tier2s, stubs
        )
        self._scale_address_space()

        computation = RouteComputation(self.graph)
        inbound_paths = computation.best_paths_to(rediris)
        table = ReversedPathTable(self.graph, rediris, inbound_paths)
        collector = FlowCollector(
            table=table,
            matrix=matrix,
            counterparties=contributing,
            days=cfg.days,
        )
        return OffloadWorld(
            config=cfg,
            graph=self.graph,
            rediris=rediris,
            transit_providers=(t1a, t1b),
            tier1s=tuple(tier1s),
            geant=geant,
            nrens=tuple(nrens),
            giants=tuple(giants),
            direct_peer_cdns=tuple(direct_cdns),
            euroix=euroix_catalog(),
            memberships=memberships,
            contributing=contributing,
            matrix=matrix,
            inbound_paths=inbound_paths,
            collector=collector,
            region_of=self.region_of,
        )

    # -- deterministic scaffold tiers ---------------------------------------------

    def _build_tier1s(self) -> list[ASN]:
        tier1s = [
            self._add(
                101 + i,
                f"tier1-{i}",
                NetworkKind.TIER1,
                PeeringPolicy.RESTRICTIVE,
                "north_america" if i % 2 else "europe",
                2 ** 22,
            )
            for i in range(self.config.tier1_count)
        ]
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1:]:
                self.graph.add_peering(a, b)
        return tier1s

    def _build_geant(self, rediris: ASN, tier1s: list[ASN]):
        geant = self._add(
            900, "geant-like", NetworkKind.NREN, PeeringPolicy.SELECTIVE,
            "europe", 2 ** 18,
        )
        self.graph.add_peering(rediris, geant)
        self.graph.add_peering(geant, tier1s[2])
        nrens = []
        for i in range(self.config.nren_count):
            nren = self._add(
                901 + i, f"nren-{i}", NetworkKind.NREN,
                PeeringPolicy.SELECTIVE, "europe", 2 ** 17,
            )
            self.graph.add_customer_provider(nren, geant)
            nrens.append(nren)
        return geant, nrens

    def _build_giants(self, tier1s: list[ASN]) -> list[ASN]:
        keys = self._stage_rng("giants").random((len(_GIANTS), len(tier1s)))
        provider_picks = np.argsort(keys, axis=1)[:, :2]
        giants = []
        for i, (name, policy) in enumerate(_GIANTS):
            kind = NetworkKind.CDN if i % 2 else NetworkKind.CONTENT
            giant = self._add(
                2001 + i, name, kind, policy, "north_america", 2 ** 19,
            )
            for p in provider_picks[i]:
                self.graph.add_customer_provider(giant, tier1s[int(p)])
            self.ixp_propensity[giant] = 50.0  # giants are at every big IXP
            self._giant_kinds.append(kind)
            giants.append(giant)
        return giants

    def _build_direct_peer_cdns(self, rediris: ASN, tier1s: list[ASN]) -> list[ASN]:
        """CDNs RedIRIS already peers with — their traffic is not transit."""
        cdns = []
        for i in range(6):
            cdn = self._add(
                2101 + i, f"peered-cdn-{i}", NetworkKind.CDN,
                PeeringPolicy.OPEN, "europe", 2 ** 17,
            )
            self.graph.add_customer_provider(cdn, tier1s[i % len(tier1s)])
            self.graph.add_peering(rediris, cdn)
            cdns.append(cdn)
        return cdns

    # -- engine-specific tiers ------------------------------------------------------

    def _materialize_tier2s(
        self, tier1s: list[ASN], draws: "_Tier2Draws"
    ) -> list[ASN]:
        raise NotImplementedError

    def _materialize_stubs(
        self, tier1s: list[ASN], tier2s: list[ASN], draws: "_StubDraws"
    ) -> list[ASN]:
        raise NotImplementedError

    def _tier2_propensity(self, i: int) -> float | None:
        """Deterministic IXP propensity of tier-2 number ``i`` (or None)."""
        cfg = self.config
        if i < cfg.mega_carrier_count:
            # Global mega-carriers: everywhere, with worldwide cones.
            return 45.0
        if i < int(cfg.member_tier2_fraction * cfg.tier2_count):
            # Transit networks reliably show up at their region's
            # exchanges (floor), and the biggest ones dominate the draw.
            return 8.0 + float((1 + i) ** -0.7) * 30.0
        return None

    # -- traffic -----------------------------------------------------------------------

    def _contributing_list(self, giants, tier2s, stubs) -> list[ASN]:
        contributing = [*giants, *tier2s, *stubs]
        if len(contributing) != self.config.contributing_count:
            raise ConfigurationError(
                f"contributing count {len(contributing)} != "
                f"{self.config.contributing_count}"
            )
        return contributing

    def _build_traffic(self, contributing: list[ASN]) -> TrafficMatrix:
        """Traffic calibrated to Figures 5a/6.

        Pipeline: double-Pareto totals → regional bias (Spanish NREN
        traffic is EU/NA-heavy) → pin the content giants onto their
        reserved top ranks → pin the rest of the head onto tier-1-only
        eyeballs (the never-offloadable mass) → split in/out by business
        type and normalise the direction totals.
        """
        cfg = self.config
        traffic_cfg = cfg.traffic or TrafficMatrixConfig(seed=cfg.seed)
        rng = child_rng(cfg.seed, "traffic")
        count = len(contributing)
        totals = rank_profile_totals(count, traffic_cfg, rng)
        totals = totals[rng.permutation(count)]
        totals = totals * self._region_multipliers(contributing)

        self._pin_giants(totals)
        kinds = self._contrib_kinds()
        self._pin_head_to_tier1_only(totals, contributing, rng, kinds)

        return split_totals_by_kind(totals, kinds, traffic_cfg, rng)

    def _contrib_kinds(self) -> list[NetworkKind]:
        """Business types of the contributing list, recorded at build time."""
        tier2 = [NetworkKind.TRANSIT] * self.config.tier2_count
        return [*self._giant_kinds, *tier2, *self._stub_kinds]

    def _region_multipliers(self, contributing: list[ASN]) -> np.ndarray:
        # contributing = [giants (all north_america), tier-2s, stubs]; the
        # tier regional codes come straight from the stage draws.
        table = np.array([_REGION_TRAFFIC_MULTIPLIER[r] for r in _REGIONS])
        return np.concatenate([
            np.full(len(_GIANTS), _REGION_TRAFFIC_MULTIPLIER["north_america"]),
            table[self._tier2_draws.region_idx],
            table[self._stub_draws.region_idx],
        ])

    def _pin_giants(self, totals: np.ndarray) -> None:
        """Swap the giants (head of ``contributing``) onto reserved ranks.

        One descending argsort is maintained incrementally: a swap
        exchanges two values, so only their two rank slots move — no
        re-sort per giant.
        """
        order = np.argsort(totals)[::-1].copy()
        position = np.empty_like(order)
        position[order] = np.arange(len(order))
        for giant_idx, rank in enumerate(_GIANT_RANKS[: len(_GIANTS)]):
            target_idx = int(order[rank - 1])
            if target_idx == giant_idx:
                continue
            totals[giant_idx], totals[target_idx] = (
                totals[target_idx],
                totals[giant_idx],
            )
            pg, pt = int(position[giant_idx]), int(position[target_idx])
            order[pg], order[pt] = target_idx, giant_idx
            position[giant_idx], position[target_idx] = pt, pg

    def _pin_head_to_tier1_only(
        self, totals: np.ndarray, contributing: list[ASN], rng,
        kinds: list[NetworkKind],
    ) -> None:
        """Seat tier-1-only eyeballs on the non-giant head ranks.

        The paper's maximum offload sits near 25–33% because the largest
        transit counterparties are broadband/content networks that peer
        nowhere RedIRIS can reach; pinning them to tier-1-only stubs (whose
        cones no candidate peer carries) reproduces that ceiling.
        """
        cfg = self.config
        if not self.tier1_only_stubs:
            return
        index_of = {a: i for i, a in enumerate(contributing)}
        giant_count = len(_GIANTS)
        pool = [index_of[a] for a in self.tier1_only_stubs]
        # Weight by region (EU/NA eyeballs carry the head) and by business
        # type: content-ish kinds keep the unreachable head inbound-heavy,
        # so the *offloadable* remainder is outbound-tilted as in the paper
        # (27% inbound vs 33% outbound at 65 IXPs).
        kind_weight = {
            NetworkKind.CONTENT: 4.0,
            NetworkKind.CDN: 4.0,
            NetworkKind.HOSTING: 2.5,
            NetworkKind.ENTERPRISE: 1.5,
            NetworkKind.TRANSIT: 1.0,
            NetworkKind.ACCESS: 0.35,
            NetworkKind.NREN: 1.0,
            NetworkKind.TIER1: 1.0,
        }
        weights = np.array(
            [
                _REGION_TRAFFIC_MULTIPLIER[self.region_of[contributing[i]]]
                * kind_weight[kinds[i]]
                for i in pool
            ]
        )
        draw_count = min(cfg.head_pin_count, len(pool))
        picks = weighted_top_k(rng, weights, draw_count)
        # Seat the picks content-first: the heaviest head ranks go to the
        # most content-ish eyeballs (stable within equal kind weight).  The
        # very top rank can hold >15% of all transit mass, so leaving its
        # business type to chance made the in/out offload split swing
        # wildly across seeds; Figure 6's top contributors are
        # endpoint-dominant content networks, not broadband eyeballs.
        picks = sorted(
            picks.tolist(),
            key=lambda i: -kind_weight[kinds[pool[i]]],
        )
        chosen = iter(pool[int(i)] for i in picks)
        order = np.argsort(totals)[::-1]
        giant_rank_set = set(_GIANT_RANKS[:giant_count])
        pinned: set[int] = set()
        for rank in range(1, cfg.head_pin_count + 1):
            if rank in giant_rank_set:
                continue
            holder = int(order[rank - 1])
            if holder < giant_count or holder in pinned:
                continue  # a giant or an already-pinned eyeball holds it
            if contributing[holder] in self.tier1_only_stubs_set:
                pinned.add(holder)
                continue  # already a tier-1-only network
            try:
                eyeball = next(chosen)
            except StopIteration:
                break
            while eyeball == holder or eyeball in pinned:
                try:
                    eyeball = next(chosen)
                except StopIteration:
                    return
            totals[holder], totals[eyeball] = totals[eyeball], totals[holder]
            pinned.add(eyeball)

    # -- memberships ------------------------------------------------------------------------

    def _build_memberships(
        self, rediris, tier1s, giants, tier2s, stubs
    ) -> dict[str, frozenset[ASN]]:
        """Draw the 65 IXPs' member lists from regional pools."""
        goers = sorted(self.ixp_propensity)
        by_region: dict[str, list[ASN]] = {r: [] for r in _REGIONS}
        for asn in goers:
            by_region[self.region_of[asn]].append(asn)
        mega_set = set(self.mega_carriers)
        eligible = [
            t for t in tier2s
            if t not in mega_set and t in self.ixp_propensity
        ]
        global_u = self._stage_rng("globals").random(len(eligible))
        globals_ = [*giants, *self.mega_carriers] + [
            t for t, u in zip(eligible, global_u) if u < 0.18
        ]
        memberships: dict[str, frozenset[ASN]] = {}
        # RedIRIS's two home IXPs are small local exchanges: their members
        # come from the regional pool only.  Were the global carriers seated
        # there, the exclusion rules would sweep every mega-carrier out of
        # the candidate set — which is neither realistic nor the paper's
        # situation.
        local_only = {"CATNIX", "ESpanix"}
        globals_set = set(globals_)
        # Distinct (regions, local-only) keys share one sorted pool and one
        # propensity-weight array — the sort and the weight lookups were
        # the membership stage's cost, and 65 IXPs use only a handful of
        # distinct pools.
        pool_cache: dict[tuple, tuple[list[ASN], np.ndarray]] = {}
        for spec in euroix_catalog():
            rng = child_rng(self.config.seed, "membership", spec.acronym)
            regions = _IXP_POOL_OVERRIDES.get(spec.acronym, (spec.region,))
            key = (regions, spec.acronym in local_only)
            cached = pool_cache.get(key)
            if cached is None:
                members_set = {a for r in regions for a in by_region[r]}
                if spec.acronym not in local_only:
                    members_set |= globals_set
                pool = sorted(members_set)
                weights = np.array(
                    [self.ixp_propensity.get(a, 1.0) for a in pool],
                    dtype=float,
                )
                cached = pool_cache[key] = (pool, weights)
            pool, weights = cached
            size = min(spec.member_count, len(pool))
            picks = weighted_top_k(rng, weights, size)
            members = {pool[int(i)] for i in picks}
            memberships[spec.acronym] = frozenset(members)
        # RedIRIS's own IXPs: ESpanix hosts every tier-1 (the paper's reason
        # to exclude them), CATNIX is the small Catalan exchange.
        memberships["ESpanix"] = frozenset(
            set(memberships.get("ESpanix", frozenset())) | set(tier1s) | {rediris}
        )
        memberships["CATNIX"] = frozenset(
            set(memberships.get("CATNIX", frozenset())) | {rediris}
        )
        return memberships

    # -- address space -------------------------------------------------------------------------

    def _scale_address_space(self) -> None:
        """Scale announced space so the world totals ~2.6 B addresses.

        Big eyeballs end up holding ``big_eyeball_space_share`` of all
        space — the real IPv4 Internet concentrates its addresses in a few
        hundred broadband networks, and Figure 10's steep first-IXP drop
        depends on that concentration.  Multipliers are drawn as one array
        per kind class, in the order the module docstring documents.
        """
        cfg = self.config
        rng = self._stage_rng("addrspace")
        ases = self.graph.ases()
        count = len(ases)
        big = set(self.big_eyeballs)
        space = np.fromiter(
            (a.address_space for a in ases), dtype=np.float64, count=count
        )
        big_mask = np.fromiter(
            (a.asn in big for a in ases), dtype=bool, count=count
        )
        access_mask = np.fromiter(
            (a.kind is NetworkKind.ACCESS for a in ases), dtype=bool,
            count=count,
        ) & ~big_mask
        carrier_mask = np.fromiter(
            (a.kind in (NetworkKind.TIER1, NetworkKind.TRANSIT) for a in ases),
            dtype=bool, count=count,
        ) & ~big_mask
        space[access_mask] = np.floor(
            space[access_mask]
            * rng.uniform(10, 80, size=int(access_mask.sum()))
        )
        space[carrier_mask] = np.floor(
            space[carrier_mask]
            * rng.uniform(4, 40, size=int(carrier_mask.sum()))
        )
        other_total = float(space[~big_mask].sum())
        big_total_target = (
            cfg.big_eyeball_space_share
            / (1.0 - cfg.big_eyeball_space_share)
            * other_total
        )
        if big:
            per_eyeball_weight = rng.lognormal(0.0, 0.8, size=len(big))
            per_eyeball_weight /= per_eyeball_weight.sum()
            big_positions = np.flatnonzero(big_mask)  # ascending ASN order
            space[big_positions] = np.maximum(
                1.0, np.floor(big_total_target * per_eyeball_weight)
            )
        scale = cfg.total_address_space / float(space.sum())
        final = np.maximum(1, np.floor(space * scale).astype(np.int64)).tolist()
        for asys, value in zip(ases, final):
            asys.address_space = value


# ---------------------------------------------------------------------------
# Stage draws (shared between engines, in the documented order).


def _region_indices(u: np.ndarray) -> np.ndarray:
    """Inverse-CDF regional draw over ``_STUB_REGION_WEIGHTS``."""
    cum = np.cumsum(_STUB_REGION_WEIGHTS)
    return np.minimum(
        np.searchsorted(cum, u, side="right"), len(_REGIONS) - 1
    )


@dataclass(frozen=True, slots=True)
class _Tier2Draws:
    """Stage arrays for the transit tier (see module docstring)."""

    region_idx: np.ndarray     # int[n2]
    policy_u: np.ndarray       # float[n2]
    uplink_count: np.ndarray   # int[n2] in {1, 2, 3}
    uplink_order: np.ndarray   # int[n2, T]: tier-1 indices by ascending key

    @classmethod
    def draw(cls, builder: _OffloadBuilderBase) -> "_Tier2Draws":
        cfg = builder.config
        rng = builder._stage_rng("tier2s")
        n2, t1 = cfg.tier2_count, cfg.tier1_count
        region_u = rng.random(n2)
        policy_u = rng.random(n2)
        count_u = rng.random((n2, 2))
        uplink_keys = rng.random((n2, t1))
        return cls(
            region_idx=_region_indices(region_u),
            policy_u=policy_u,
            uplink_count=(
                1 + (count_u[:, 0] < 0.65) + (count_u[:, 1] < 0.2)
            ).astype(np.int64),
            uplink_order=np.argsort(uplink_keys, axis=1),
        )

    def policy(self, i: int, mega: bool) -> PeeringPolicy:
        if mega:
            # Large carriers peer selectively or restrictively; none of
            # them shows up behind an open-policy route server.
            return PeeringPolicy.SELECTIVE if i % 3 else PeeringPolicy.RESTRICTIVE
        return _TIER2_POLICIES[
            int(self.policy_u[i] * len(_TIER2_POLICIES))
        ]


@dataclass(frozen=True, slots=True)
class _StubDraws:
    """Stage arrays for the stub tier (see module docstring)."""

    region_idx: np.ndarray        # int[n]
    kind_idx: np.ndarray          # int[n]
    tier1_only: np.ndarray        # bool[n] (False on big-eyeball slots)
    ixpgoer: np.ndarray           # bool[n]
    policy_u: np.ndarray          # float[n]
    big_eyeball: np.ndarray       # bool[n]
    provider_count: np.ndarray    # int[n] in {1, 2, 3}
    pool_u: np.ndarray            # float[n]
    propensity: np.ndarray        # float[n]: IXP-goer propensity values
    eyeball_order: np.ndarray     # int[B, T]
    eyeball_mega_homed: np.ndarray  # bool[B]
    eyeball_mega_pick_u: np.ndarray  # float[B]
    tier1_only_order: np.ndarray  # int[K1, T]
    pick_u: np.ndarray            # float[K2, 3]

    @classmethod
    def draw(cls, builder: _OffloadBuilderBase, tier1s: list[ASN]) -> "_StubDraws":
        cfg = builder.config
        rng = builder._stage_rng("stubs")
        n = cfg.contributing_count - len(_GIANTS) - cfg.tier2_count
        t1 = len(tier1s)
        region_u = rng.random(n)
        kind_u = rng.random(n)
        tier1_only_u = rng.random(n)
        ixpgoer_u = rng.random(n)
        policy_u = rng.random(n)
        eyeball_keys = rng.random(n)
        count_u = rng.random((n, 2))
        pool_u = rng.random(n)
        propensity_u = rng.random(n)

        big = np.zeros(n, dtype=bool)
        slots = np.argsort(eyeball_keys, kind="stable")[
            : min(cfg.big_eyeball_count, n)
        ]
        big[slots] = True
        tier1_only = (tier1_only_u < cfg.tier1_only_stub_fraction) & ~big
        normal = ~big & ~tier1_only

        b = int(big.sum())
        k1 = int(tier1_only.sum())
        k2 = int(normal.sum())
        eyeball_keys2 = rng.random((b, t1))
        eyeball_mega_u = rng.random(b)
        eyeball_mega_pick_u = rng.random(b)
        tier1_only_keys = rng.random((k1, t1))
        pick_u = rng.random((k2, 3))
        return cls(
            region_idx=_region_indices(region_u),
            kind_idx=(kind_u * len(_STUB_KINDS)).astype(np.int64),
            tier1_only=tier1_only,
            ixpgoer=ixpgoer_u < cfg.ixpgoer_stub_fraction,
            policy_u=policy_u,
            big_eyeball=big,
            provider_count=(
                1 + (count_u[:, 0] < 0.45) + (count_u[:, 1] < 0.12)
            ).astype(np.int64),
            pool_u=pool_u,
            propensity=0.2 + 2.8 * propensity_u,
            eyeball_order=np.argsort(eyeball_keys2, axis=1),
            eyeball_mega_homed=(
                eyeball_mega_u < cfg.big_eyeball_mega_homed
            ),
            eyeball_mega_pick_u=eyeball_mega_pick_u,
            tier1_only_order=np.argsort(tier1_only_keys, axis=1),
            pick_u=pick_u,
        )

    def policy(self, i: int) -> PeeringPolicy:
        u = self.policy_u[i]
        if u < 0.62:
            return PeeringPolicy.OPEN
        if u < 0.90:
            return PeeringPolicy.SELECTIVE
        return PeeringPolicy.RESTRICTIVE


# ---------------------------------------------------------------------------
# Scalar engine: the checked, one-network-at-a-time reference.


class _ScalarOffloadBuilder(_OffloadBuilderBase):
    """Materializes the drawn arrays through the fully-checked graph APIs."""

    def _materialize_tier2s(
        self, tier1s: list[ASN], draws: _Tier2Draws
    ) -> list[ASN]:
        cfg = self.config
        tier2s = []
        for i in range(cfg.tier2_count):
            region = _REGIONS[int(draws.region_idx[i])]
            mega = i < cfg.mega_carrier_count
            tier2 = self._add(
                3001 + i, f"transit-{region}-{i}", NetworkKind.TRANSIT,
                draws.policy(i, mega), region, 2 ** 16,
            )
            for u in draws.uplink_order[i, : int(draws.uplink_count[i])]:
                self.graph.add_customer_provider(tier2, tier1s[int(u)])
            if mega:
                self.mega_carriers.append(tier2)
            propensity = self._tier2_propensity(i)
            if propensity is not None:
                self.ixp_propensity[tier2] = propensity
            tier2s.append(tier2)
        return tier2s

    def _materialize_stubs(
        self, tier1s: list[ASN], tier2s: list[ASN], draws: _StubDraws
    ) -> list[ASN]:
        cfg = self.config
        n = len(draws.region_idx)
        tier2_by_region: dict[str, list[ASN]] = {r: [] for r in _REGIONS}
        for t in tier2s:
            tier2_by_region[self.region_of[t]].append(t)
        stubs = []
        eyeball_row = tier1_only_row = normal_row = 0
        for i in range(n):
            region = _REGIONS[int(draws.region_idx[i])]
            big_eyeball = bool(draws.big_eyeball[i])
            kind = (
                NetworkKind.ACCESS if big_eyeball
                else _STUB_KINDS[int(draws.kind_idx[i])]
            )
            stub = self._add(
                10_001 + i, f"stub-{region}-{i}", kind, draws.policy(i), region,
            )
            self._stub_kinds.append(kind)
            if big_eyeball:
                self._home_big_eyeball(stub, tier1s, draws, eyeball_row)
                eyeball_row += 1
                self.graph.get(stub).tags.add("big-eyeball")
                self.big_eyeballs.append(stub)
            elif draws.tier1_only[i]:
                self._home_tier1_only(stub, tier1s, draws, tier1_only_row, i)
                tier1_only_row += 1
                self.tier1_only_stubs.append(stub)
            else:
                self._home_stub(stub, region, tier2_by_region, tier2s,
                                draws, normal_row, i)
                normal_row += 1
                if draws.ixpgoer[i]:
                    self.ixp_propensity[stub] = float(draws.propensity[i])
            stubs.append(stub)
        self.tier1_only_stubs_set = set(self.tier1_only_stubs)
        return stubs

    def _home_big_eyeball(self, stub, tier1s, draws: _StubDraws, row: int) -> None:
        """Big eyeballs multihome to tier-1s, often plus one mega-carrier."""
        for p in draws.eyeball_order[row, :2]:
            self.graph.add_customer_provider(stub, tier1s[int(p)])
        if self.mega_carriers and draws.eyeball_mega_homed[row]:
            mega = self.mega_carriers[
                int(draws.eyeball_mega_pick_u[row] * len(self.mega_carriers))
            ]
            self.graph.add_customer_provider(stub, mega)

    def _home_tier1_only(self, stub, tier1s, draws: _StubDraws,
                         row: int, i: int) -> None:
        count = min(int(draws.provider_count[i]), 3)
        for p in draws.tier1_only_order[row, :count]:
            self.graph.add_customer_provider(stub, tier1s[int(p)])

    def _home_stub(self, stub, region, tier2_by_region, tier2s,
                   draws: _StubDraws, row: int, i: int) -> None:
        local = tier2_by_region[region]
        u = draws.pool_u[i]
        if u < 0.15 and self.mega_carriers:
            pool = self.mega_carriers
        elif u < 0.85 and local:
            pool = local
        else:
            pool = tier2s
        for j in range(int(draws.provider_count[i])):
            provider = pool[int(draws.pick_u[row, j] * len(pool))]
            if self.graph.relationship(stub, provider) is None:
                self.graph.add_customer_provider(stub, provider)


# ---------------------------------------------------------------------------
# Vectorized engine: struct-of-arrays materialization + bulk insertion.


class _VectorOffloadBuilder(_OffloadBuilderBase):
    """Materializes each tier as arrays and bulk-inserts the results."""

    def _materialize_tier2s(
        self, tier1s: list[ASN], draws: _Tier2Draws
    ) -> list[ASN]:
        cfg = self.config
        n2 = cfg.tier2_count
        regions = [_REGIONS[i] for i in draws.region_idx.tolist()]
        tier2s = [ASN(3001 + i) for i in range(n2)]
        self.graph.add_ases_bulk(
            AutonomousSystem.make_unchecked(
                tier2s[i],
                f"transit-{regions[i]}-{i}",
                NetworkKind.TRANSIT,
                draws.policy(i, i < cfg.mega_carrier_count),
                2 ** 16,
            )
            for i in range(n2)
        )
        self.region_of.update(zip(tier2s, regions))
        tier1_arr = np.array(tier1s, dtype=np.int64)
        col = np.arange(draws.uplink_order.shape[1])
        take = col[None, :] < draws.uplink_count[:, None]
        customers = np.repeat(np.array(tier2s), draws.uplink_count)
        providers = tier1_arr[draws.uplink_order[take]]
        self.graph.add_customer_provider_arrays(customers, providers)
        self.mega_carriers = tier2s[: cfg.mega_carrier_count]
        for i, tier2 in enumerate(tier2s):
            propensity = self._tier2_propensity(i)
            if propensity is None:
                break  # propensities stop at the member cut
            self.ixp_propensity[tier2] = propensity
        return tier2s

    def _materialize_stubs(
        self, tier1s: list[ASN], tier2s: list[ASN], draws: _StubDraws
    ) -> list[ASN]:
        cfg = self.config
        n = len(draws.region_idx)
        regions = [_REGIONS[i] for i in draws.region_idx.tolist()]
        big = draws.big_eyeball
        tier1_only = draws.tier1_only
        normal = ~big & ~tier1_only
        big_list = big.tolist()
        kind_list = [
            NetworkKind.ACCESS if big_list[i] else _STUB_KINDS[k]
            for i, k in enumerate(draws.kind_idx.tolist())
        ]
        self._stub_kinds = kind_list
        policy_codes = np.where(
            draws.policy_u < 0.62, 0, np.where(draws.policy_u < 0.90, 1, 2)
        ).tolist()
        policy_values = (
            PeeringPolicy.OPEN, PeeringPolicy.SELECTIVE,
            PeeringPolicy.RESTRICTIVE,
        )
        stubs = list(range(10_001, 10_001 + n))
        make = AutonomousSystem.make_unchecked
        self.graph.add_ases_bulk(
            make(asn, f"stub-{region}-{i}", kind, policy_values[code])
            for i, (asn, region, kind, code) in enumerate(
                zip(stubs, regions, kind_list, policy_codes)
            )
        )
        self.region_of.update(zip(stubs, regions))
        stub_arr = np.array(stubs, dtype=np.int64)

        pairs_customers: list[np.ndarray] = []
        pairs_providers: list[np.ndarray] = []

        # Big eyeballs: two tier-1s each, often plus one mega-carrier.  All
        # of one eyeball's edges stay contiguous (the arrays edge API
        # assembles each customer's provider set from one run).
        tier1_arr = np.array(tier1s, dtype=np.int64)
        eyeball_asns = stub_arr[big]
        if len(eyeball_asns):
            count_b = len(eyeball_asns)
            provider3 = np.zeros((count_b, 3), dtype=np.int64)
            provider3[:, :2] = tier1_arr[draws.eyeball_order[:, :2]]
            take3 = np.zeros((count_b, 3), dtype=bool)
            take3[:, :2] = True
            if self.mega_carriers:
                mega_arr = np.array(self.mega_carriers, dtype=np.int64)
                homed = draws.eyeball_mega_homed
                mega_idx = (
                    draws.eyeball_mega_pick_u[homed] * len(mega_arr)
                ).astype(np.int64)
                provider3[homed, 2] = mega_arr[mega_idx]
                take3[:, 2] = homed
            pairs_customers.append(
                np.repeat(eyeball_asns, take3.sum(axis=1))
            )
            pairs_providers.append(provider3[take3])
            for asn in eyeball_asns.tolist():
                self.graph.get(ASN(asn)).tags.add("big-eyeball")
            self.big_eyeballs = [ASN(a) for a in eyeball_asns.tolist()]

        # Tier-1-only stubs: 1-3 distinct tier-1s by ascending key.
        t1o_asns = stub_arr[tier1_only]
        if len(t1o_asns):
            counts = np.minimum(draws.provider_count[tier1_only], 3)
            col = np.arange(draws.tier1_only_order.shape[1])
            take = col[None, :] < counts[:, None]
            pairs_customers.append(np.repeat(t1o_asns, counts))
            pairs_providers.append(tier1_arr[draws.tier1_only_order[take]])
            self.tier1_only_stubs = [ASN(a) for a in t1o_asns.tolist()]

        # Normal stubs: providers from the mega / regional / global tier-2
        # pool chosen by the homing-pool uniform, indices by floor(u * len).
        normal_asns = stub_arr[normal]
        if len(normal_asns):
            tier2_arr = np.array(tier2s, dtype=np.int64)
            mega_count = len(self.mega_carriers)
            region_codes = draws.region_idx[normal]
            tier2_regions = np.array(
                [_REGIONS.index(self.region_of[t]) for t in tier2s]
            )
            local_members = [
                tier2_arr[tier2_regions == r] for r in range(len(_REGIONS))
            ]
            local_sizes = np.array([len(m) for m in local_members])
            local_concat = (
                np.concatenate(local_members) if len(tier2_arr) else tier2_arr
            )
            local_offsets = np.concatenate(
                ([0], np.cumsum(local_sizes)[:-1])
            )
            u = draws.pool_u[normal]
            local_len = local_sizes[region_codes]
            cat_mega = (u < 0.15) & (mega_count > 0)
            cat_local = ~cat_mega & (u < 0.85) & (local_len > 0)
            cat_global = ~cat_mega & ~cat_local
            pool_len = np.where(
                cat_mega, mega_count,
                np.where(cat_local, local_len, len(tier2_arr)),
            )
            counts = draws.provider_count[normal]
            idx = np.minimum(
                (draws.pick_u * pool_len[:, None]).astype(np.int64),
                np.maximum(pool_len[:, None] - 1, 0),
            )
            provider_mat = np.empty_like(idx)
            provider_mat[cat_mega] = tier2_arr[:mega_count][idx[cat_mega]]
            provider_mat[cat_local] = local_concat[
                local_offsets[region_codes[cat_local], None] + idx[cat_local]
            ]
            provider_mat[cat_global] = tier2_arr[idx[cat_global]]
            # Per-row dedupe (<= 3 picks): repeated draws of one provider
            # collapse to a single edge, as the scalar relationship check
            # does.
            col = np.arange(3)
            take = col[None, :] < counts[:, None]
            take[:, 1] &= provider_mat[:, 1] != provider_mat[:, 0]
            take[:, 2] &= (provider_mat[:, 2] != provider_mat[:, 0]) & (
                provider_mat[:, 2] != provider_mat[:, 1]
            )
            pairs_customers.append(np.repeat(normal_asns, take.sum(axis=1)))
            pairs_providers.append(provider_mat[take])

        self.graph.add_customer_provider_arrays(
            np.concatenate(pairs_customers), np.concatenate(pairs_providers)
        )
        goer_idx = np.flatnonzero(normal & draws.ixpgoer)
        for i in goer_idx.tolist():
            self.ixp_propensity[stubs[i]] = float(draws.propensity[i])
        self.tier1_only_stubs_set = set(self.tier1_only_stubs)
        return stubs
