"""Builder for the offload world: a RedIRIS-like NREN in a ~30k-AS Internet.

Reproduces the Section 4 setting:

* **RedIRIS** buys transit from two tier-1s, peers with GÉANT and a few
  major CDNs, and holds memberships at CATNIX and ESpanix;
* **29,570 contributing networks** exchange transit traffic with RedIRIS,
  with the double-Pareto rank profile of Figure 5a;
* **65 Euro-IX IXPs** have memberships drawn from regional pools so the
  big-European-trio overlap is high while Terremark shares only a few
  dozen (global) members with them;
* customer cones, AS paths, peering policies and address space give the
  offload estimator everything Figures 5–10 consume.

Calibration levers and what they buy:

* ``tier1_only_stub_fraction`` — stubs homed exclusively to tier-1s are
  unreachable via peering (tier-1s sit at ESpanix and are excluded), which
  caps the maximum offload fraction like the paper's ~25–33%;
* ``member_tier2_fraction`` — how many transit networks show up at IXPs,
  which controls both the 12,238-network offloadable set and Figure 10's
  drop from 2.6 B to ~1 B addresses after the first IXP;
* the CDN rank list — places the named content analogues among the top
  transit contributors, making Figure 6's top-30 content-heavy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.bgp.cone import customer_cone
from repro.bgp.relationships import ASGraph
from repro.bgp.routing import ASPath, RouteComputation
from repro.bgp.table import ReversedPathTable
from repro.errors import ConfigurationError
from repro.ixp.euroix import EuroIXSpec, euroix_catalog
from repro.netflow.collector import FlowCollector
from repro.netflow.traffic import (
    TrafficMatrix,
    TrafficMatrixConfig,
    rank_profile_totals,
    split_totals_by_kind,
)
from repro.rand import child_rng, make_rng, zipf_weights
from repro.types import ASN, NetworkKind, PeeringPolicy

_REGIONS = ("europe", "north_america", "latin_america", "asia", "africa")
_STUB_REGION_WEIGHTS = (0.40, 0.20, 0.15, 0.17, 0.08)

#: Names for the content/CDN giants of Figure 6 (Microsoft/Yahoo/CDN
#: analogues).  Policies make the peer-group story work: none are open, so
#: peer group 1 misses them; the selective ones power group 2's jump.
_GIANTS: tuple[tuple[str, PeeringPolicy], ...] = (
    ("macrosoft", PeeringPolicy.SELECTIVE),
    ("yahu", PeeringPolicy.SELECTIVE),
    ("akamight", PeeringPolicy.SELECTIVE),
    ("goggle", PeeringPolicy.RESTRICTIVE),
    ("limeligth", PeeringPolicy.SELECTIVE),
    ("cachefly-like", PeeringPolicy.SELECTIVE),
    ("netfilm", PeeringPolicy.SELECTIVE),
    ("fastlane-cdn", PeeringPolicy.SELECTIVE),
    ("edgecastle", PeeringPolicy.SELECTIVE),
    ("cloudfriend", PeeringPolicy.SELECTIVE),
    ("bookface", PeeringPolicy.RESTRICTIVE),
    ("tweeter", PeeringPolicy.SELECTIVE),
    ("streamworks", PeeringPolicy.SELECTIVE),
    ("photopile", PeeringPolicy.SELECTIVE),
    ("gamegrid", PeeringPolicy.SELECTIVE),
    ("adnexus", PeeringPolicy.SELECTIVE),
    ("vidvault", PeeringPolicy.SELECTIVE),
    ("newsriver", PeeringPolicy.SELECTIVE),
    ("mapmaker", PeeringPolicy.RESTRICTIVE),
    ("storagebarn", PeeringPolicy.SELECTIVE),
    ("musicmesh", PeeringPolicy.SELECTIVE),
    ("softmirror", PeeringPolicy.SELECTIVE),
    ("pixelpark", PeeringPolicy.SELECTIVE),
    ("webwharf", PeeringPolicy.SELECTIVE),
    ("datadray", PeeringPolicy.SELECTIVE),
    ("flixfarm", PeeringPolicy.SELECTIVE),
)

#: Transit-rank slots reserved for the giants (1-based ranks in the
#: combined in+out distribution).  Concentrated in the top ~105 so that a
#: majority of Figure 6's top-30 offload contributors are the
#: endpoint-dominant content networks (as in the paper), while together
#: they hold ~14% of the transit traffic — low enough to keep the maximum
#: offload near the paper's 25–33% once the rest of the head is pinned to
#: unreachable eyeballs.
_GIANT_RANKS = (
    4, 6, 8, 10, 12, 14, 16, 18, 21, 24, 27, 30, 33, 36, 39, 42,
    45, 48, 51, 54, 60, 67, 75, 84, 94, 105,
)

#: Regional weight of RedIRIS traffic: a Spanish NREN exchanges most of its
#: transit traffic with European and North American networks, a meaningful
#: share with Latin America, and little with Asia/Africa.
_REGION_TRAFFIC_MULTIPLIER = {
    "europe": 1.35,
    "north_america": 1.15,
    "latin_america": 0.85,
    "asia": 0.45,
    "africa": 0.25,
}

#: IXPs whose membership pools span several regions.  Terremark (Miami)
#: hosts the South/Central-American carriers the paper highlights;
#: CoreSite (Los Angeles) fronts trans-Pacific traffic.
_IXP_POOL_OVERRIDES: dict[str, tuple[str, ...]] = {
    "Terremark": ("north_america", "latin_america"),
    "CoreSite": ("north_america", "asia"),
}


@dataclass(frozen=True, slots=True)
class OffloadWorldConfig:
    """Size and calibration knobs for the offload world."""

    seed: int = 42
    contributing_count: int = 29_570
    tier1_count: int = 10
    tier2_count: int = 420
    nren_count: int = 36
    days: int = 28
    traffic: TrafficMatrixConfig | None = None
    #: Stubs homed only to tier-1 providers (never offloadable).
    tier1_only_stub_fraction: float = 0.34
    #: Transit (tier-2) networks that appear at IXPs at all.
    member_tier2_fraction: float = 0.55
    #: Stubs that are IXP-goers (hosting/content/access at exchanges).
    ixpgoer_stub_fraction: float = 0.115
    #: Top transit ranks (outside the giants' slots) pinned onto tier-1-only
    #: eyeballs: the traffic head a peering strategy cannot touch.
    head_pin_count: int = 280
    #: Target total announced IPv4 space (Figure 10's 2.6 B).
    total_address_space: float = 2.6e9
    #: Global mega-carriers: the biggest tier-2s, present at every IXP,
    #: whose worldwide cones drive Figure 10's steep first-IXP drop.
    mega_carrier_count: int = 30
    #: Large eyeball networks that hold most of the address space.
    big_eyeball_count: int = 120
    #: Share of all announced space held by the big eyeballs.
    big_eyeball_space_share: float = 0.68
    #: Probability a big eyeball buys from a mega-carrier (else tier-1-only).
    big_eyeball_mega_homed: float = 0.75

    def __post_init__(self) -> None:
        giants = len(_GIANTS)
        if self.contributing_count <= self.tier2_count + giants + 200:
            raise ConfigurationError("contributing_count too small")
        if self.tier1_count < 2:
            raise ConfigurationError("need at least two tier-1s for RedIRIS")
        for fraction in (
            self.tier1_only_stub_fraction,
            self.member_tier2_fraction,
            self.ixpgoer_stub_fraction,
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError("fractions must be in [0, 1]")


@dataclass
class OffloadWorld:
    """The generated world plus every precomputed view the study needs."""

    config: OffloadWorldConfig
    graph: ASGraph
    rediris: ASN
    transit_providers: tuple[ASN, ASN]
    tier1s: tuple[ASN, ...]
    geant: ASN
    nrens: tuple[ASN, ...]
    giants: tuple[ASN, ...]
    direct_peer_cdns: tuple[ASN, ...]
    euroix: tuple[EuroIXSpec, ...]
    memberships: dict[str, frozenset[ASN]]
    contributing: list[ASN]
    matrix: TrafficMatrix
    inbound_paths: dict[ASN, ASPath]
    collector: FlowCollector
    region_of: dict[ASN, str]
    _contrib_index: dict[ASN, int] = field(default_factory=dict)
    _cone_cache: dict[ASN, frozenset[ASN]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._contrib_index:
            self._contrib_index = {a: i for i, a in enumerate(self.contributing)}

    # -- lookups -----------------------------------------------------------------

    def contributing_index(self, asn: ASN) -> int | None:
        """Index of ``asn`` in the contributing arrays, or None."""
        return self._contrib_index.get(asn)

    def cone(self, asn: ASN) -> frozenset[ASN]:
        """Customer cone of ``asn`` (cached)."""
        cached = self._cone_cache.get(asn)
        if cached is None:
            cached = frozenset(customer_cone(self.graph, asn))
            self._cone_cache[asn] = cached
        return cached

    def policy_of(self, asn: ASN) -> PeeringPolicy:
        """Published peering policy of a network."""
        return self.graph.get(asn).policy

    def kind_of(self, asn: ASN) -> NetworkKind:
        """Business type of a network."""
        return self.graph.get(asn).kind

    def contributing_mask_for_members(self, members: frozenset[ASN]) -> np.ndarray:
        """Boolean mask over contributing networks offloadable via ``members``.

        A contributing network is offloadable when it belongs to a member's
        customer cone (members themselves included).
        """
        mask = np.zeros(len(self.contributing), dtype=bool)
        for member in members:
            for asn in self.cone(member):
                idx = self._contrib_index.get(asn)
                if idx is not None:
                    mask[idx] = True
        return mask

    def all_asns(self) -> list[ASN]:
        """Every ASN in the world, sorted."""
        return self.graph.asns()

    def address_space_of(self, asns) -> float:
        """Total announced address space of a set of ASes."""
        return float(sum(self.graph.get(a).address_space for a in asns))

    def total_address_space(self) -> float:
        """Announced space of the whole world (Figure 10's 2.6 B)."""
        return self.address_space_of(self.graph.asns())


# ---------------------------------------------------------------------------


def build_offload_world(config: OffloadWorldConfig | None = None) -> OffloadWorld:
    """Generate the offload world deterministically from ``config.seed``."""
    config = config or OffloadWorldConfig()
    builder = _OffloadBuilder(config)
    return builder.build()


class _OffloadBuilder:
    def __init__(self, config: OffloadWorldConfig) -> None:
        self.config = config
        self.graph = ASGraph()
        self.rng = make_rng(config.seed)
        self.region_of: dict[ASN, str] = {}
        self.ixp_propensity: dict[ASN, float] = {}
        self.tier1_only_stubs: list[ASN] = []
        self.tier1_only_stubs_set: set[ASN] = set()
        self.mega_carriers: list[ASN] = []
        self.big_eyeballs: list[ASN] = []

    # -- AS creation helpers ------------------------------------------------------

    def _add(
        self,
        asn: int,
        name: str,
        kind: NetworkKind,
        policy: PeeringPolicy,
        region: str,
        address_space: int = 256,
    ) -> ASN:
        value = ASN(asn)
        self.graph.add_as(
            AutonomousSystem(
                asn=value,
                name=name,
                kind=kind,
                policy=policy,
                address_space=address_space,
            )
        )
        self.region_of[value] = region
        return value

    # -- build ------------------------------------------------------------------------

    def build(self) -> OffloadWorld:
        cfg = self.config
        rediris = self._add(
            766, "rediris", NetworkKind.NREN, PeeringPolicy.SELECTIVE, "europe",
            2 ** 20,
        )
        tier1s = self._build_tier1s()
        t1a, t1b = tier1s[0], tier1s[1]
        self.graph.add_customer_provider(rediris, t1a)
        self.graph.add_customer_provider(rediris, t1b)

        geant, nrens = self._build_geant(rediris, tier1s)
        giants = self._build_giants(tier1s)
        direct_cdns = self._build_direct_peer_cdns(rediris, tier1s)
        tier2s = self._build_tier2s(tier1s)
        stubs = self._build_stubs(tier1s, tier2s)

        contributing = self._contributing_list(giants, tier2s, stubs)
        matrix = self._build_traffic(contributing)
        memberships = self._build_memberships(
            rediris, tier1s, giants, tier2s, stubs
        )
        self._scale_address_space()

        computation = RouteComputation(self.graph)
        inbound_paths = computation.best_paths_to(rediris)
        table = ReversedPathTable(self.graph, rediris, inbound_paths)
        collector = FlowCollector(
            table=table,
            matrix=matrix,
            counterparties=contributing,
            days=cfg.days,
        )
        return OffloadWorld(
            config=cfg,
            graph=self.graph,
            rediris=rediris,
            transit_providers=(t1a, t1b),
            tier1s=tuple(tier1s),
            geant=geant,
            nrens=tuple(nrens),
            giants=tuple(giants),
            direct_peer_cdns=tuple(direct_cdns),
            euroix=euroix_catalog(),
            memberships=memberships,
            contributing=contributing,
            matrix=matrix,
            inbound_paths=inbound_paths,
            collector=collector,
            region_of=self.region_of,
        )

    # -- tiers ------------------------------------------------------------------------

    def _build_tier1s(self) -> list[ASN]:
        tier1s = [
            self._add(
                101 + i,
                f"tier1-{i}",
                NetworkKind.TIER1,
                PeeringPolicy.RESTRICTIVE,
                "north_america" if i % 2 else "europe",
                2 ** 22,
            )
            for i in range(self.config.tier1_count)
        ]
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1:]:
                self.graph.add_peering(a, b)
        return tier1s

    def _build_geant(self, rediris: ASN, tier1s: list[ASN]):
        geant = self._add(
            900, "geant-like", NetworkKind.NREN, PeeringPolicy.SELECTIVE,
            "europe", 2 ** 18,
        )
        self.graph.add_peering(rediris, geant)
        self.graph.add_peering(geant, tier1s[2])
        nrens = []
        for i in range(self.config.nren_count):
            nren = self._add(
                901 + i, f"nren-{i}", NetworkKind.NREN,
                PeeringPolicy.SELECTIVE, "europe", 2 ** 17,
            )
            self.graph.add_customer_provider(nren, geant)
            nrens.append(nren)
        return geant, nrens

    def _build_giants(self, tier1s: list[ASN]) -> list[ASN]:
        giants = []
        for i, (name, policy) in enumerate(_GIANTS):
            giant = self._add(
                2001 + i, name, NetworkKind.CDN if i % 2 else NetworkKind.CONTENT,
                policy, "north_america", 2 ** 19,
            )
            providers = self.rng.choice(len(tier1s), size=2, replace=False)
            for p in providers:
                self.graph.add_customer_provider(giant, tier1s[int(p)])
            self.ixp_propensity[giant] = 50.0  # giants are at every big IXP
            giants.append(giant)
        return giants

    def _build_direct_peer_cdns(self, rediris: ASN, tier1s: list[ASN]) -> list[ASN]:
        """CDNs RedIRIS already peers with — their traffic is not transit."""
        cdns = []
        for i in range(6):
            cdn = self._add(
                2101 + i, f"peered-cdn-{i}", NetworkKind.CDN,
                PeeringPolicy.OPEN, "europe", 2 ** 17,
            )
            self.graph.add_customer_provider(cdn, tier1s[i % len(tier1s)])
            self.graph.add_peering(rediris, cdn)
            cdns.append(cdn)
        return cdns

    def _build_tier2s(self, tier1s: list[ASN]) -> list[ASN]:
        cfg = self.config
        policies = (
            [PeeringPolicy.OPEN] * 62 + [PeeringPolicy.SELECTIVE] * 26
            + [PeeringPolicy.RESTRICTIVE] * 12
        )
        tier2s = []
        member_cut = int(cfg.member_tier2_fraction * cfg.tier2_count)
        for i in range(cfg.tier2_count):
            region = _REGIONS[int(self.rng.choice(5, p=np.array(_STUB_REGION_WEIGHTS)))]
            if i < cfg.mega_carrier_count:
                # Large carriers peer selectively or restrictively; none of
                # them shows up behind an open-policy route server.
                policy = (
                    PeeringPolicy.SELECTIVE
                    if i % 3
                    else PeeringPolicy.RESTRICTIVE
                )
            else:
                policy = policies[int(self.rng.integers(0, len(policies)))]
            tier2 = self._add(
                3001 + i, f"transit-{region}-{i}", NetworkKind.TRANSIT,
                policy, region, 2 ** 16,
            )
            count = 1 + int(self.rng.random() < 0.65) + int(self.rng.random() < 0.2)
            uplinks = self.rng.choice(len(tier1s), size=count, replace=False)
            for u in uplinks:
                self.graph.add_customer_provider(tier2, tier1s[int(u)])
            if i < cfg.mega_carrier_count:
                # Global mega-carriers: everywhere, with worldwide cones.
                self.ixp_propensity[tier2] = 45.0
                self.mega_carriers.append(tier2)
            elif i < member_cut:
                # Transit networks reliably show up at their region's
                # exchanges (floor), and the biggest ones dominate the draw.
                self.ixp_propensity[tier2] = 8.0 + float((1 + i) ** -0.7) * 30.0
            tier2s.append(tier2)
        return tier2s

    def _build_stubs(self, tier1s: list[ASN], tier2s: list[ASN]) -> list[ASN]:
        cfg = self.config
        stub_count = (
            cfg.contributing_count - len(_GIANTS) - cfg.tier2_count
        )
        kinds = (
            [NetworkKind.ACCESS] * 40 + [NetworkKind.HOSTING] * 18
            + [NetworkKind.CONTENT] * 14 + [NetworkKind.ENTERPRISE] * 22
            + [NetworkKind.CDN] * 2 + [NetworkKind.TRANSIT] * 4
        )
        region_weights = np.array(_STUB_REGION_WEIGHTS)
        # Pre-draw arrays for speed: 29k python Device-free AS creations.
        regions = self.rng.choice(5, size=stub_count, p=region_weights)
        kind_idx = self.rng.integers(0, len(kinds), size=stub_count)
        tier1_only = self.rng.random(stub_count) < cfg.tier1_only_stub_fraction
        ixpgoer = self.rng.random(stub_count) < cfg.ixpgoer_stub_fraction
        policy_draw = self.rng.random(stub_count)
        big_eyeball_slots = set(
            int(i)
            for i in self.rng.choice(
                stub_count, size=min(cfg.big_eyeball_count, stub_count),
                replace=False,
            )
        )
        # Group tier-2s by region for affine homing.
        tier2_by_region: dict[str, list[ASN]] = {r: [] for r in _REGIONS}
        for t in tier2s:
            tier2_by_region[self.region_of[t]].append(t)
        stubs = []
        for i in range(stub_count):
            region = _REGIONS[int(regions[i])]
            big_eyeball = i in big_eyeball_slots
            kind = NetworkKind.ACCESS if big_eyeball else kinds[int(kind_idx[i])]
            if policy_draw[i] < 0.62:
                policy = PeeringPolicy.OPEN
            elif policy_draw[i] < 0.90:
                policy = PeeringPolicy.SELECTIVE
            else:
                policy = PeeringPolicy.RESTRICTIVE
            stub = self._add(
                10_001 + i, f"stub-{region}-{i}", kind, policy, region,
            )
            if big_eyeball:
                self._home_big_eyeball(stub, tier1s)
                self.graph.get(stub).tags.add("big-eyeball")
                self.big_eyeballs.append(stub)
            else:
                self._home_stub(
                    stub, region, bool(tier1_only[i]), tier1s, tier2_by_region
                )
                if tier1_only[i]:
                    self.tier1_only_stubs.append(stub)
                elif ixpgoer[i]:
                    self.ixp_propensity[stub] = float(self.rng.uniform(0.2, 3.0))
            stubs.append(stub)
        self.tier1_only_stubs_set = set(self.tier1_only_stubs)
        return stubs

    def _home_big_eyeball(self, stub, tier1s) -> None:
        """Big eyeballs multihome to tier-1s, often plus one mega-carrier."""
        picks = self.rng.choice(len(tier1s), size=2, replace=False)
        for p in picks:
            self.graph.add_customer_provider(stub, tier1s[int(p)])
        homed_via_mega = (
            self.mega_carriers
            and self.rng.random() < self.config.big_eyeball_mega_homed
        )
        if homed_via_mega:
            mega = self.mega_carriers[
                int(self.rng.integers(0, len(self.mega_carriers)))
            ]
            self.graph.add_customer_provider(stub, mega)

    def _home_stub(self, stub, region, tier1_only, tier1s, tier2_by_region) -> None:
        provider_count = 1 + int(self.rng.random() < 0.45) + int(self.rng.random() < 0.12)
        if tier1_only:
            picks = self.rng.choice(len(tier1s), size=min(provider_count, 3), replace=False)
            for p in picks:
                self.graph.add_customer_provider(stub, tier1s[int(p)])
            return
        local = tier2_by_region[region]
        draw = self.rng.random()
        for _ in range(provider_count):
            if draw < 0.15 and self.mega_carriers:
                pool = self.mega_carriers
            elif draw < 0.85 and local:
                pool = local
            else:
                pool = [t for ts in tier2_by_region.values() for t in ts]
            provider = pool[int(self.rng.integers(0, len(pool)))]
            if self.graph.relationship(stub, provider) is None:
                self.graph.add_customer_provider(stub, provider)

    # -- traffic -----------------------------------------------------------------------

    def _contributing_list(self, giants, tier2s, stubs) -> list[ASN]:
        contributing = [*giants, *tier2s, *stubs]
        if len(contributing) != self.config.contributing_count:
            raise ConfigurationError(
                f"contributing count {len(contributing)} != "
                f"{self.config.contributing_count}"
            )
        return contributing

    def _build_traffic(self, contributing: list[ASN]) -> TrafficMatrix:
        """Traffic calibrated to Figures 5a/6.

        Pipeline: double-Pareto totals → regional bias (Spanish NREN
        traffic is EU/NA-heavy) → pin the content giants onto their
        reserved top ranks → pin the rest of the head onto tier-1-only
        eyeballs (the never-offloadable mass) → split in/out by business
        type and normalise the direction totals.
        """
        cfg = self.config
        traffic_cfg = cfg.traffic or TrafficMatrixConfig(seed=cfg.seed)
        rng = child_rng(cfg.seed, "traffic")
        count = len(contributing)
        totals = rank_profile_totals(count, traffic_cfg, rng)
        totals = totals[rng.permutation(count)]
        multipliers = np.array(
            [_REGION_TRAFFIC_MULTIPLIER[self.region_of[a]] for a in contributing]
        )
        totals = totals * multipliers

        self._pin_giants(totals)
        self._pin_head_to_tier1_only(totals, contributing, rng)

        kinds = [self.graph.get(a).kind for a in contributing]
        return split_totals_by_kind(totals, kinds, traffic_cfg, rng)

    def _pin_giants(self, totals: np.ndarray) -> None:
        """Swap the giants (head of `contributing`) onto reserved ranks."""
        for giant_idx, rank in enumerate(_GIANT_RANKS[: len(_GIANTS)]):
            order = np.argsort(totals)[::-1]
            target_idx = int(order[rank - 1])
            if target_idx == giant_idx:
                continue
            totals[giant_idx], totals[target_idx] = (
                totals[target_idx],
                totals[giant_idx],
            )

    def _pin_head_to_tier1_only(
        self, totals: np.ndarray, contributing: list[ASN], rng
    ) -> None:
        """Seat tier-1-only eyeballs on the non-giant head ranks.

        The paper's maximum offload sits near 25–33% because the largest
        transit counterparties are broadband/content networks that peer
        nowhere RedIRIS can reach; pinning them to tier-1-only stubs (whose
        cones no candidate peer carries) reproduces that ceiling.
        """
        cfg = self.config
        if not self.tier1_only_stubs:
            return
        index_of = {a: i for i, a in enumerate(contributing)}
        giant_count = len(_GIANTS)
        pool = [index_of[a] for a in self.tier1_only_stubs]
        # Weight by region (EU/NA eyeballs carry the head) and by business
        # type: content-ish kinds keep the unreachable head inbound-heavy,
        # so the *offloadable* remainder is outbound-tilted as in the paper
        # (27% inbound vs 33% outbound at 65 IXPs).
        kind_weight = {
            NetworkKind.CONTENT: 4.0,
            NetworkKind.CDN: 4.0,
            NetworkKind.HOSTING: 2.5,
            NetworkKind.ENTERPRISE: 1.5,
            NetworkKind.TRANSIT: 1.0,
            NetworkKind.ACCESS: 0.35,
            NetworkKind.NREN: 1.0,
            NetworkKind.TIER1: 1.0,
        }
        weights = np.array(
            [
                _REGION_TRAFFIC_MULTIPLIER[self.region_of[contributing[i]]]
                * kind_weight[self.graph.get(contributing[i]).kind]
                for i in pool
            ]
        )
        weights /= weights.sum()
        picks = rng.choice(len(pool), size=min(cfg.head_pin_count, len(pool)),
                           replace=False, p=weights)
        chosen = iter(pool[int(i)] for i in picks)
        order = np.argsort(totals)[::-1]
        giant_rank_set = set(_GIANT_RANKS[:giant_count])
        pinned: set[int] = set()
        for rank in range(1, cfg.head_pin_count + 1):
            if rank in giant_rank_set:
                continue
            holder = int(order[rank - 1])
            if holder < giant_count or holder in pinned:
                continue  # a giant or an already-pinned eyeball holds it
            if contributing[holder] in self.tier1_only_stubs_set:
                pinned.add(holder)
                continue  # already a tier-1-only network
            try:
                eyeball = next(chosen)
            except StopIteration:
                break
            while eyeball == holder or eyeball in pinned:
                try:
                    eyeball = next(chosen)
                except StopIteration:
                    return
            totals[holder], totals[eyeball] = totals[eyeball], totals[holder]
            pinned.add(eyeball)

    # -- memberships ------------------------------------------------------------------------

    def _build_memberships(
        self, rediris, tier1s, giants, tier2s, stubs
    ) -> dict[str, frozenset[ASN]]:
        """Draw the 65 IXPs' member lists from regional pools."""
        goers = sorted(self.ixp_propensity)
        by_region: dict[str, list[ASN]] = {r: [] for r in _REGIONS}
        for asn in goers:
            by_region[self.region_of[asn]].append(asn)
        globals_ = [*giants, *self.mega_carriers] + [
            t
            for t in tier2s
            if t not in self.mega_carriers
            and t in self.ixp_propensity
            and self.rng.random() < 0.18
        ]
        memberships: dict[str, frozenset[ASN]] = {}
        # RedIRIS's two home IXPs are small local exchanges: their members
        # come from the regional pool only.  Were the global carriers seated
        # there, the exclusion rules would sweep every mega-carrier out of
        # the candidate set — which is neither realistic nor the paper's
        # situation.
        local_only = {"CATNIX", "ESpanix"}
        for spec in euroix_catalog():
            rng = child_rng(self.config.seed, "membership", spec.acronym)
            regions = _IXP_POOL_OVERRIDES.get(spec.acronym, (spec.region,))
            local_pool = [a for r in regions for a in by_region[r]]
            if spec.acronym in local_only:
                pool = sorted(set(local_pool))
            else:
                pool = sorted(set(local_pool) | set(globals_))
            weights = np.array(
                [self.ixp_propensity.get(a, 1.0) for a in pool], dtype=float
            )
            weights /= weights.sum()
            size = min(spec.member_count, len(pool))
            picks = rng.choice(len(pool), size=size, replace=False, p=weights)
            members = {pool[int(i)] for i in picks}
            memberships[spec.acronym] = frozenset(members)
        # RedIRIS's own IXPs: ESpanix hosts every tier-1 (the paper's reason
        # to exclude them), CATNIX is the small Catalan exchange.
        memberships["ESpanix"] = frozenset(
            set(memberships.get("ESpanix", frozenset())) | set(tier1s) | {rediris}
        )
        memberships["CATNIX"] = frozenset(
            set(memberships.get("CATNIX", frozenset())) | {rediris}
        )
        return memberships

    # -- address space -------------------------------------------------------------------------

    def _scale_address_space(self) -> None:
        """Scale announced space so the world totals ~2.6 B addresses.

        Big eyeballs end up holding ``big_eyeball_space_share`` of all
        space — the real IPv4 Internet concentrates its addresses in a few
        hundred broadband networks, and Figure 10's steep first-IXP drop
        depends on that concentration.
        """
        cfg = self.config
        ases = self.graph.ases()
        big = {asn for asn in self.big_eyeballs}
        for asys in ases:
            if asys.asn in big:
                continue
            if asys.kind is NetworkKind.ACCESS:
                asys.address_space = int(asys.address_space * self.rng.uniform(10, 80))
            elif asys.kind in (NetworkKind.TIER1, NetworkKind.TRANSIT):
                asys.address_space = int(asys.address_space * self.rng.uniform(4, 40))
        other_total = sum(a.address_space for a in ases if a.asn not in big)
        big_total_target = (
            cfg.big_eyeball_space_share
            / (1.0 - cfg.big_eyeball_space_share)
            * other_total
        )
        if big:
            per_eyeball_weight = self.rng.lognormal(0.0, 0.8, size=len(big))
            per_eyeball_weight /= per_eyeball_weight.sum()
            for asys_asn, weight in zip(sorted(big), per_eyeball_weight):
                self.graph.get(asys_asn).address_space = max(
                    1, int(big_total_target * float(weight))
                )
        total = sum(a.address_space for a in ases)
        scale = cfg.total_address_space / total
        for asys in ases:
            asys.address_space = max(1, int(asys.address_space * scale))
