"""Builder for the detection world: the 22 studied IXPs, fully wired.

The output of :func:`build_detection_world` contains everything the
Section 3 campaign needs — IXPs with peering LANs and member devices,
PCH/RIPE looking glasses, registries (with their imperfections), and
remote-peering providers — plus the ground-truth labels the paper could
only obtain for TorIX, E4A and Invitel, which here exist for *every*
interface and power validation and ablation.

Behaviour classes are drawn per interface, mutually exclusively, at rates
calibrated so the six-filter pipeline discards roughly the paper's
20 / 82 / 20 / 100 / 28 / 5 interfaces out of ~4.7k candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.delaymodel.congestion import (
    NoCongestion,
    PersistentCongestion,
    TransientCongestion,
)
from repro.errors import ConfigurationError
from repro.geo.cities import City, CityDB, default_city_db
from repro.ixp.catalog import IXPSpec, paper_catalog
from repro.ixp.ixp import IXP, MemberInterface
from repro.layer2.provider import RemotePeeringProvider
from repro.lg.server import LookingGlassServer, OffLanTarget
from repro.net.addr import IPv4Address, IPv4Prefix, SubnetAllocator
from repro.net.device import Device, TTL_LINUX, TTL_NETWORK_OS, TTL_RARE
from repro.rand import child_rng, make_rng
from repro.registry.identify import IdentificationPipeline
from repro.registry.records import InterfaceRecord, IXPDirectory
from repro.registry.sources import (
    IXPWebsiteSource,
    PeeringDBSource,
    ReverseDNSSource,
)
from repro.sim.clock import CampaignWindow
from repro.sim.netpool import (
    NetworkPool,
    NetworkPoolConfig,
    PooledNetwork,
    generate_network_pool,
)
from repro.types import ASN, NetworkKind, PeeringPolicy, PortKind

#: Behaviour class labels (ground truth annotations).
NORMAL = "normal"
BLACKHOLE = "blackhole"
OS_CHANGE = "os_change"
STALE = "stale"
RARE_TTL = "rare_ttl"
CONGESTED = "congested"
LG_BIASED = "lg_biased"
ASN_CHANGED = "asn_changed"

#: Great-circle distance windows (km) per remote band, chosen so the fiber
#: RTT lands in the paper's 10-20 / 20-50 / 50+ ms ranges.
_BAND_DISTANCES = {
    "short": (150.0, 560.0),  # deliberately sub-threshold: false negatives
    "intercity": (700.0, 1250.0),
    "intercountry": (1400.0, 3100.0),
    "intercontinental": (3500.0, 12000.0),
}

#: Inter-IXP partnership programs the paper names (Section 2.3/3.2):
#: TOP-IX interconnects with VSIX (Padua) and LyonIX (Lyon); AMS-IX Hong
#: Kong reaches AMS-IX over third-party layer 2.  The builder seats some
#: remote members of these IXPs at the partner city, so the partner-driven
#: remote peering the paper observed at TOP-IX emerges in the data.
_PARTNERSHIPS: dict[str, tuple[tuple[str, str], ...]] = {
    "TOP-IX": (("VSIX", "Padua"), ("LyonIX", "Lyon")),
    "AMS-IX": (("AMS-IX-HK", "Hong Kong"),),
}

#: Remote members per partnership seat.
_PARTNER_SEATS = 4


@dataclass(frozen=True, slots=True)
class BehaviorRates:
    """Per-interface probabilities of each pathological behaviour.

    Defaults are calibrated against the paper's discard counts (Section
    3.1): 20 sample-size, 82 TTL-switch, 20 TTL-match, 100 RTT-consistent,
    28 LG-consistent and 5 ASN-change discards out of ~4,706 candidates.
    """

    blackhole: float = 0.0030
    os_change: float = 0.0174
    stale: float = 0.0025
    rare_ttl: float = 0.0025
    persistent_congestion: float = 0.0235
    lg_bias: float = 0.0110  # only drawn at dual-LG IXPs
    asn_change: float = 0.0018
    transient_congestion: float = 0.15  # benign; minimum stays clean

    def __post_init__(self) -> None:
        total = (
            self.blackhole + self.os_change + self.stale + self.rare_ttl
            + self.persistent_congestion + self.lg_bias + self.asn_change
        )
        if total >= 1.0:
            raise ConfigurationError("behaviour rates sum to >= 1")
        for value in (
            self.blackhole, self.os_change, self.stale, self.rare_ttl,
            self.persistent_congestion, self.lg_bias, self.asn_change,
            self.transient_congestion,
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError("rates must be probabilities")


@dataclass(frozen=True, slots=True)
class DetectionWorldConfig:
    """Knobs for detection-world generation."""

    seed: int = 42
    specs: tuple[IXPSpec, ...] = ()
    pool: NetworkPoolConfig | None = None
    rates: BehaviorRates = BehaviorRates()
    window: CampaignWindow = CampaignWindow()
    #: Candidate interfaces generated per analyzed interface in Table 1;
    #: 4,706/4,451 reproduces the paper's pre-filter population.
    target_scale: float = 4706.0 / 4451.0
    #: Fraction of members with a second LAN interface.
    second_interface_fraction: float = 0.05
    #: Direct members whose metro tail is long (2-9 ms).
    far_metro_fraction: float = 0.08
    #: Remote slots with deliberately sub-threshold circuits (<10 ms).
    short_remote_fraction: float = 0.08
    #: Whether to add the named validation anchors (E4A/Invitel analogues).
    with_anchors: bool = True


@dataclass(frozen=True, slots=True)
class InterfaceTruth:
    """Ground truth for one candidate interface."""

    ixp_acronym: str
    address: IPv4Address
    asn: ASN
    is_remote: bool
    behavior: str
    base_rtt_ms: float
    circuit_km: float  # 0 for direct ports
    on_lan: bool  # False for stale registry entries


@dataclass
class DetectionWorld:
    """Everything the Section 3 campaign consumes, plus ground truth."""

    city_db: CityDB
    pool: NetworkPool
    window: CampaignWindow
    ixps: dict[str, IXP]
    lg_servers: dict[str, list[LookingGlassServer]]
    directory: IXPDirectory
    identification: IdentificationPipeline
    providers: list[RemotePeeringProvider]
    truth: dict[tuple[str, int], InterfaceTruth]
    config: DetectionWorldConfig
    partnerships: list = field(default_factory=list)

    def truth_for(self, ixp_acronym: str, address: IPv4Address) -> InterfaceTruth:
        """Ground-truth record for one (IXP, address) pair."""
        try:
            return self.truth[(ixp_acronym, address.value)]
        except KeyError:
            raise ConfigurationError(
                f"no ground truth for {ixp_acronym}/{address}"
            ) from None

    def candidate_count(self) -> int:
        """Total candidate interfaces across all IXPs."""
        return len(self.truth)

    def remote_truth_count(self, ixp_acronym: str | None = None) -> int:
        """Ground-truth remote interfaces (optionally for one IXP)."""
        return sum(
            1
            for t in self.truth.values()
            if t.is_remote and (ixp_acronym is None or t.ixp_acronym == ixp_acronym)
        )


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def build_detection_world(
    config: DetectionWorldConfig | None = None,
) -> DetectionWorld:
    """Generate the detection world for ``config`` (fully deterministic)."""
    config = config or DetectionWorldConfig()
    specs = config.specs or paper_catalog()
    city_db = default_city_db()
    pool = generate_network_pool(
        city_db, config.pool or NetworkPoolConfig(seed=config.seed)
    )
    directory = IXPDirectory()
    providers = _make_providers(config.seed, specs, city_db)
    builder = _WorldBuilder(
        config=config,
        specs=specs,
        city_db=city_db,
        pool=pool,
        directory=directory,
        providers=providers,
    )
    builder.build()
    identification = IdentificationPipeline(
        peeringdb=PeeringDBSource(directory, coverage=0.54, seed=config.seed),
        website=IXPWebsiteSource(directory, coverage=0.30, seed=config.seed),
        rdns=ReverseDNSSource(directory, coverage=0.16, seed=config.seed),
    )
    return DetectionWorld(
        city_db=city_db,
        pool=pool,
        window=config.window,
        ixps=builder.ixps,
        lg_servers=builder.lg_servers,
        directory=directory,
        identification=identification,
        providers=providers,
        truth=builder.truth,
        config=config,
        partnerships=builder.partnerships,
    )


def _make_providers(
    seed: int, specs: tuple[IXPSpec, ...], city_db: CityDB
) -> list[RemotePeeringProvider]:
    """Remote-peering providers present at every studied IXP."""
    rng = make_rng(seed)
    names_and_overheads = [
        ("reachix", float(rng.uniform(0.3, 1.0))),
        ("atrato-like", 4.0),  # the anchor provider: visible detour
        ("l2carrier", float(rng.uniform(0.5, 1.8))),
        ("metrowave", float(rng.uniform(0.3, 2.5))),
    ]
    providers = []
    for name, overhead in names_and_overheads:
        provider = RemotePeeringProvider(name=name, overhead_ms=overhead)
        for spec in specs:
            provider.add_presence(city_db.get(spec.city_name))
        providers.append(provider)
    return providers


class _WorldBuilder:
    """Stateful helper that wires one world together."""

    def __init__(
        self,
        config: DetectionWorldConfig,
        specs: tuple[IXPSpec, ...],
        city_db: CityDB,
        pool: NetworkPool,
        directory: IXPDirectory,
        providers: list[RemotePeeringProvider],
    ) -> None:
        self.config = config
        self.specs = specs
        self.city_db = city_db
        self.pool = pool
        self.directory = directory
        self.providers = providers
        self.ixps: dict[str, IXP] = {}
        self.lg_servers: dict[str, list[LookingGlassServer]] = {}
        self.truth: dict[tuple[str, int], InterfaceTruth] = {}
        self.partnerships: list = []
        self._lans = SubnetAllocator(IPv4Prefix.parse("193.128.0.0/10"), 22)
        self._anchor_asn = ASN(64_600)
        self._anchor_plan: dict[str, list[tuple[AutonomousSystem, str, str]]] = {}
        self._distance_cache: dict[str, list[tuple[float, City]]] = {}

    # -- top level ------------------------------------------------------------

    def build(self) -> None:
        if self.config.with_anchors:
            self._plan_anchors()
        for spec in self.specs:
            self._build_ixp(spec)

    # -- anchors ---------------------------------------------------------------

    def _plan_anchors(self) -> None:
        """Named validation networks mirroring the paper's Section 3.3.

        * ``e4a-like``: Italian access network, remote at 6 IXPs and direct
          at 3 — the paper's example of many remote interfaces.
        * ``invitel-like``: Hungarian access network, remote at AMS-IX and
          DE-CIX via the high-overhead provider (the Atrato anecdote).
        * ``turktelecom-like``: transit network peering remotely.
        * ``trunk-like``: hosting company peering remotely.
        """
        def anchor(name: str, kind: NetworkKind, city: str) -> AutonomousSystem:
            asys = AutonomousSystem(
                asn=self._anchor_asn,
                name=name,
                kind=kind,
                home_city=self.city_db.get(city),
                policy=PeeringPolicy.OPEN,
                address_space=2 ** 14,
            )
            self._anchor_asn = ASN(self._anchor_asn + 1)
            return asys

        e4a = anchor("e4a-like", NetworkKind.ACCESS, "Rome")
        invitel = anchor("invitel-like", NetworkKind.ACCESS, "Budapest")
        turk = anchor("turktelecom-like", NetworkKind.TRANSIT, "Istanbul")
        trunk = anchor("trunk-like", NetworkKind.HOSTING, "London")

        plan: list[tuple[str, AutonomousSystem, str, str]] = [
            ("AMS-IX", e4a, "remote", "reachix"),
            ("DE-CIX", e4a, "remote", "reachix"),
            ("France-IX", e4a, "remote", "reachix"),
            ("LoNAP", e4a, "remote", "reachix"),
            ("TorIX", e4a, "remote", "reachix"),
            ("TIE", e4a, "remote", "reachix"),
            ("MIX", e4a, "direct", ""),
            ("TOP-IX", e4a, "direct", ""),
            ("VIX", e4a, "direct", ""),
            ("AMS-IX", invitel, "remote", "atrato-like"),
            ("DE-CIX", invitel, "remote", "atrato-like"),
            ("AMS-IX", turk, "remote", "l2carrier"),
            ("LINX", turk, "remote", "l2carrier"),
            ("AMS-IX", trunk, "remote", "metrowave"),
        ]
        for ixp_acr, asys, kind, provider in plan:
            self._anchor_plan.setdefault(ixp_acr, []).append((asys, kind, provider))

    # -- one IXP -----------------------------------------------------------------

    def _build_ixp(self, spec: IXPSpec) -> None:
        rng = child_rng(self.config.seed, "ixp", spec.acronym)
        city = self.city_db.get(spec.city_name)
        ixp = IXP(
            acronym=spec.acronym,
            full_name=spec.full_name,
            city=city,
            country=spec.country,
            lan=self._lans.allocate(),
            peak_traffic_tbps=spec.peak_traffic_tbps,
        )
        if spec.sites > 1:
            ixp.fabric.set_intersite_rtt("main", "b", float(rng.uniform(0.15, 0.5)))
        self.ixps[spec.acronym] = ixp
        servers = self._attach_lgs(spec, ixp)
        self.lg_servers[spec.acronym] = servers

        anchors = self._anchor_plan.get(spec.acronym, [])
        target_count = round(spec.analyzed_interfaces * self.config.target_scale)
        target_count = max(1, target_count - len(anchors))
        membership_count = max(
            1, round(target_count / (1.0 + self.config.second_interface_fraction))
        )
        remote_members = round(spec.remote_fraction * membership_count)
        direct_members = membership_count - remote_members

        members = self._draw_members(spec, rng, city, remote_members, direct_members)

        dual_lg = spec.has_pch_lg and spec.has_ripe_lg
        produced = 0
        for network, wanted_kind in members:
            iface_count = 1
            if produced + 1 < target_count and rng.random() < self.config.second_interface_fraction:
                iface_count = 2
            for i in range(iface_count):
                if produced >= target_count:
                    break
                self._add_member_interface(
                    spec, ixp, servers, rng, network, wanted_kind, dual_lg, i
                )
                produced += 1
        for asys, kind, provider_name in anchors:
            self._add_anchor_interface(spec, ixp, servers, rng, asys, kind, provider_name)

    def _attach_lgs(self, spec: IXPSpec, ixp: IXP) -> list[LookingGlassServer]:
        servers = []
        if spec.has_pch_lg:
            servers.append(
                LookingGlassServer.create(
                    "PCH", spec.acronym, ixp.fabric, ixp.allocate_address()
                )
            )
        if spec.has_ripe_lg:
            servers.append(
                LookingGlassServer.create(
                    "RIPE", spec.acronym, ixp.fabric, ixp.allocate_address()
                )
            )
        return servers

    def _draw_members(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        city: City,
        remote_members: int,
        direct_members: int,
    ) -> list[tuple[PooledNetwork, str]]:
        """Pick (network, direct|remote-band) pairs for one IXP."""
        continent = city.continent
        chosen: list[tuple[PooledNetwork, str]] = []
        used: set[ASN] = set()

        directs = self.pool.sample_members(rng, continent, direct_members, exclude=used)
        for network in directs:
            used.add(network.asn)
            chosen.append((network, "direct"))

        bands = ["intercity", "intercountry", "intercontinental"]
        weights = np.array(spec.band_weights, dtype=float)
        if weights.sum() > 0:
            weights = weights / weights.sum()
        partner_slots = self._partner_slots(spec, city)
        for index in range(remote_members):
            if index < len(partner_slots):
                partner_city = partner_slots[index]
                network = self._draw_partner_network(rng, partner_city, used)
                if network is not None:
                    used.add(network.asn)
                    chosen.append((network, f"partner:{partner_city.name}"))
                continue
            if rng.random() < self.config.short_remote_fraction:
                band = "short"
            else:
                band = bands[int(rng.choice(3, p=weights))]
            network = self._draw_remote_network(spec, rng, city, band, used)
            if network is None:
                continue
            used.add(network.asn)
            chosen.append((network, band))
        # Shuffle so remote/direct interleave in address space.
        order = rng.permutation(len(chosen))
        return [chosen[i] for i in order]

    def _distance_sorted_cities(self, city: City) -> list[tuple[float, City]]:
        cached = self._distance_cache.get(city.name)
        if cached is not None:
            return cached
        ranked = sorted(
            ((city.distance_km(c), c) for c in self.city_db.cities.values()),
            key=lambda pair: pair[0],
        )
        self._distance_cache[city.name] = ranked
        return ranked

    def _partner_slots(self, spec: IXPSpec, city: City) -> list[City]:
        """Partner-IXP cities whose members remote-peer here."""
        partners = _PARTNERSHIPS.get(spec.acronym)
        if not partners:
            return []
        from repro.ixp.partnerships import Partnership

        slots: list[City] = []
        for partner_name, partner_city_name in partners:
            partner_city = self.city_db.get(partner_city_name)
            self.partnerships.append(
                Partnership(
                    ixp_a=spec.acronym,
                    ixp_b=partner_name,
                    city_a=city,
                    city_b=partner_city,
                    carrier="l2carrier",
                )
            )
            slots.extend([partner_city] * _PARTNER_SEATS)
        return slots

    def _draw_partner_network(
        self, rng: np.random.Generator, partner_city: City, used: set[ASN]
    ) -> PooledNetwork | None:
        """A member of the partner IXP: a network homed near its city."""
        nearby = {
            c.name
            for d, c in self._distance_sorted_cities(partner_city)
            if d <= 400.0
        }
        candidates = [
            n
            for n in self.pool.networks
            if n.asn not in used and n.home_city.name in nearby
        ]
        if not candidates:
            candidates = [
                n
                for n in self.pool.networks
                if n.asn not in used
                and n.home_city.continent == partner_city.continent
            ]
        if not candidates:
            return None
        weights = np.array([n.propensity for n in candidates])
        weights = weights / weights.sum()
        return candidates[int(rng.choice(len(candidates), p=weights))]

    def _draw_remote_network(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        ixp_city: City,
        band: str,
        used: set[ASN],
    ) -> PooledNetwork | None:
        """A network whose home city sits in the wanted distance band."""
        low, high = _BAND_DISTANCES[band]
        eligible_cities = {
            c.name
            for d, c in self._distance_sorted_cities(ixp_city)
            if low <= d <= high
        }
        candidates = [
            n
            for n in self.pool.networks
            if n.asn not in used and n.home_city.name in eligible_cities
        ]
        if not candidates:
            return None
        weights = np.array([n.propensity for n in candidates])
        weights = weights / weights.sum()
        return candidates[int(rng.choice(len(candidates), p=weights))]

    # -- interfaces -------------------------------------------------------------------

    def _draw_behavior(self, rng: np.random.Generator, dual_lg: bool) -> str:
        rates = self.config.rates
        draw = rng.random()
        thresholds = [
            (rates.blackhole, BLACKHOLE),
            (rates.os_change, OS_CHANGE),
            (rates.stale, STALE),
            (rates.rare_ttl, RARE_TTL),
            (rates.persistent_congestion, CONGESTED),
            (rates.lg_bias if dual_lg else 0.0, LG_BIASED),
            (rates.asn_change, ASN_CHANGED),
        ]
        cursor = 0.0
        for rate, label in thresholds:
            cursor += rate
            if draw < cursor:
                return label
        return NORMAL

    def _make_device(
        self,
        rng: np.random.Generator,
        network: AutonomousSystem,
        spec: IXPSpec,
        behavior: str,
        index: int,
    ) -> Device:
        ttl = TTL_LINUX if rng.random() < 0.5 else TTL_NETWORK_OS
        kwargs: dict = {
            "name": f"rtr-as{network.asn}-{spec.acronym.lower()}-{index}",
            "ttl_init": ttl,
            "processing_ms": float(rng.uniform(0.03, 0.25)),
        }
        if behavior == RARE_TTL:
            kwargs["ttl_init"] = int(rng.choice(TTL_RARE))
        elif behavior == OS_CHANGE:
            kwargs["ttl_after_change"] = (
                TTL_NETWORK_OS if ttl == TTL_LINUX else TTL_LINUX
            )
            span = self.config.window.duration_s
            kwargs["os_change_time"] = float(rng.uniform(0.15, 0.85)) * span
        elif behavior == BLACKHOLE:
            kwargs["respond_probability"] = float(rng.uniform(0.0, 0.10))
        else:
            kwargs["respond_probability"] = float(rng.uniform(0.965, 1.0))
        return Device(**kwargs)

    def _port_congestion(self, rng: np.random.Generator, behavior: str):
        if behavior == CONGESTED:
            return PersistentCongestion(
                floor_ms=float(rng.uniform(2.0, 5.0)),
                spread_ms=float(rng.uniform(350.0, 650.0)),
            )
        if rng.random() < self.config.rates.transient_congestion:
            return TransientCongestion(
                peak_amplitude_ms=float(rng.uniform(0.5, 3.0)),
                peak_hour_utc=float(rng.uniform(0.0, 24.0)),
            )
        return NoCongestion()

    def _add_member_interface(
        self,
        spec: IXPSpec,
        ixp: IXP,
        servers: list[LookingGlassServer],
        rng: np.random.Generator,
        network: PooledNetwork,
        wanted_kind: str,
        dual_lg: bool,
        index: int,
    ) -> None:
        behavior = self._draw_behavior(rng, dual_lg)
        device = self._make_device(rng, network.asys, spec, behavior, index)
        member = ixp.register(network.asys)

        if behavior == STALE:
            self._add_stale_target(spec, ixp, servers, rng, network.asys, device)
            return

        if wanted_kind == "direct":
            iface, base_rtt, km = self._attach_direct(spec, ixp, rng, member, device, behavior)
            is_remote = False
        else:
            iface, base_rtt, km = self._attach_remote(
                spec, ixp, rng, member, device, behavior, wanted_kind, network.home_city
            )
            is_remote = True

        if behavior == LG_BIASED:
            operator = "RIPE" if rng.random() < 0.5 else "PCH"
            bias = max(6.0, 0.12 * base_rtt) + float(rng.uniform(3.0, 25.0))
            iface.port.operator_bias[operator] = bias

        self._publish(spec, ixp, rng, network.asys, iface.address, behavior)
        self.truth[(spec.acronym, iface.address.value)] = InterfaceTruth(
            ixp_acronym=spec.acronym,
            address=iface.address,
            asn=network.asn,
            is_remote=is_remote,
            behavior=behavior,
            base_rtt_ms=base_rtt,
            circuit_km=km,
            on_lan=True,
        )

    def _attach_direct(self, spec, ixp, rng, member, device, behavior):
        if rng.random() < self.config.far_metro_fraction:
            tail = float(rng.uniform(2.0, 9.0))
        else:
            tail = float(rng.uniform(0.22, 1.9))
        site = "b" if spec.sites > 1 and rng.random() < 0.4 else "main"
        iface = ixp.add_interface(
            member,
            device,
            PortKind.DIRECT,
            tail_rtt_ms=tail,
            congestion=self._port_congestion(rng, behavior),
            site=site,
        )
        return iface, tail, 0.0

    def _attach_remote(self, spec, ixp, rng, member, device, behavior, band, home_city):
        provider = self._pick_provider(rng)
        if band.startswith("partner:"):
            # Partner-IXP interconnect: the circuit enters from the partner
            # IXP's city.  Inter-IXP interconnects chain several provider
            # segments and detour through carrier hubs, so their overhead is
            # well above a point-to-point circuit's — which is why the paper
            # sees TOP-IX's partner members in the 10-20 ms band despite
            # Padua/Lyon being only a few hundred kilometres away.
            home_city = self.city_db.get(band.split(":", 1)[1])
            km = home_city.distance_km(ixp.city)
            from repro.layer2.pseudowire import Pseudowire

            wire = Pseudowire(
                customer_city=home_city,
                ixp_city=ixp.city,
                overhead_ms=float(rng.uniform(6.5, 11.0)),
                latency_model=provider.latency_model,
            )
            provider.circuits.append(wire)
            iface = ixp.add_interface(
                member,
                device,
                PortKind.REMOTE,
                pseudowire=wire,
                congestion=self._port_congestion(rng, behavior),
            )
            return iface, wire.base_rtt_ms(), km
        else:
            low, high = _BAND_DISTANCES[band]
            km = home_city.distance_km(ixp.city)
            if not low <= km <= high:
                # The member's circuit enters from a provider PoP in the band.
                candidates = [
                    c
                    for d, c in self._distance_sorted_cities(ixp.city)
                    if low <= d <= high
                ]
                if candidates:
                    home_city = candidates[int(rng.integers(0, len(candidates)))]
                    km = home_city.distance_km(ixp.city)
        wire = provider.provision(home_city, ixp.city)
        iface = ixp.add_interface(
            member,
            device,
            PortKind.REMOTE,
            pseudowire=wire,
            congestion=self._port_congestion(rng, behavior),
        )
        return iface, wire.base_rtt_ms(), km

    def _pick_provider(self, rng: np.random.Generator) -> RemotePeeringProvider:
        # The anchor provider (index 1) is reserved for anchors.
        choices = [0, 2, 3]
        return self.providers[choices[int(rng.integers(0, len(choices)))]]

    def _add_stale_target(self, spec, ixp, servers, rng, asys, device) -> None:
        """Publish an address that is not on the LAN (website rot)."""
        address = ixp.allocate_address()
        offlan = OffLanTarget(
            device=device,
            base_rtt_ms=float(rng.uniform(1.0, 18.0)),
            extra_hops=int(rng.integers(1, 4)),
        )
        for server in servers:
            server.register_offlan_target(address, offlan)
        self._publish(spec, ixp, rng, asys, address, STALE)
        self.truth[(spec.acronym, address.value)] = InterfaceTruth(
            ixp_acronym=spec.acronym,
            address=address,
            asn=asys.asn,
            is_remote=False,
            behavior=STALE,
            base_rtt_ms=offlan.base_rtt_ms,
            circuit_km=0.0,
            on_lan=False,
        )

    def _publish(self, spec, ixp, rng, asys, address, behavior, well_known=False) -> None:
        record = InterfaceRecord(
            ixp_acronym=spec.acronym,
            address=address,
            asn=asys.asn,
            policy=asys.policy,
            stale=behavior == STALE,
            well_known=well_known,
        )
        if behavior == ASN_CHANGED:
            other = self.pool.networks[int(rng.integers(0, len(self.pool.networks)))]
            record.asn_after_change = other.asn
            record.asn_change_time = (
                float(rng.uniform(0.3, 0.7)) * self.config.window.duration_s
            )
        self.directory.add(record)

    def _add_anchor_interface(
        self, spec, ixp, servers, rng, asys: AutonomousSystem, kind: str, provider_name: str
    ) -> None:
        member = ixp.register(asys)
        device = Device(
            name=f"rtr-as{asys.asn}-{spec.acronym.lower()}-anchor",
            ttl_init=TTL_NETWORK_OS,
            processing_ms=0.08,
            respond_probability=0.99,
        )
        if kind == "direct":
            tail = float(rng.uniform(0.3, 1.2))
            iface = ixp.add_interface(member, device, PortKind.DIRECT, tail_rtt_ms=tail)
            base_rtt, km, is_remote = tail, 0.0, False
        else:
            provider = next(p for p in self.providers if p.name == provider_name)
            assert asys.home_city is not None
            wire = provider.provision(asys.home_city, ixp.city)
            iface = ixp.add_interface(member, device, PortKind.REMOTE, pseudowire=wire)
            base_rtt, km, is_remote = (
                wire.base_rtt_ms(),
                asys.home_city.distance_km(ixp.city),
                True,
            )
        self._publish(spec, ixp, rng, asys, iface.address, NORMAL, well_known=True)
        self.truth[(spec.acronym, iface.address.value)] = InterfaceTruth(
            ixp_acronym=spec.acronym,
            address=iface.address,
            asn=asys.asn,
            is_remote=is_remote,
            behavior=NORMAL,
            base_rtt_ms=base_rtt,
            circuit_km=km,
            on_lan=True,
        )
