"""Builder for the detection world: the 22 studied IXPs, fully wired.

The output of :func:`build_detection_world` contains everything the
Section 3 campaign needs — IXPs with peering LANs and member devices,
PCH/RIPE looking glasses, registries (with their imperfections), and
remote-peering providers — plus the ground-truth labels the paper could
only obtain for TorIX, E4A and Invitel, which here exist for *every*
interface and power validation and ablation.

Behaviour classes are drawn per interface, mutually exclusively, at rates
calibrated so the six-filter pipeline discards roughly the paper's
20 / 82 / 20 / 100 / 28 / 5 interfaces out of ~4.7k candidates.

Engines
-------
Two builders produce statistically equivalent worlds from the same
calibration knobs (``DetectionWorldConfig.engine``):

* ``"vectorized"`` (default) realizes each IXP's stochastic content as
  per-IXP array draws in a fixed, documented order — the same
  struct-of-arrays discipline as :mod:`repro.lg.batch`.  Per IXP the
  order is: intersite RTT (multi-site only), direct-member sample,
  short-circuit coins, band draw, per-band member draws (partner seats
  first, then short/intercity/intercountry/intercontinental), interleave
  permutation, second-interface coins, behaviour classes, device arrays
  (TTL coin, processing, rare TTL, OS-change time, blackhole/healthy
  respond), congestion arrays (persistent floor/spread, transient
  coin/amplitude/peak), attachment arrays (far-metro coin, far/near
  tails, site coin, provider pick, partner overhead, PoP relocation),
  LG-bias arrays, stale-target arrays, ASN-change arrays, anchors.
* ``"scalar"`` replays the seed implementation's per-interface draws and
  is kept as the reference engine.

Both engines consume the same per-``(seed, "ixp", acronym)`` streams in
different orders, so they agree in distribution (remote fractions,
behaviour-class counts, band histograms, filter discard counts — see the
equivalence suite in ``tests/test_world_builder_engines.py``), not
member-for-member.  Distance queries are answered by one precomputed
:class:`repro.geo.distances.CityDistanceMatrix` instead of re-sorting
the city database per draw.

Remote-member draws that find no eligible candidate in their nominal
distance band are *redrawn from a widened band* (any unused network; the
circuit still enters from an in-band provider PoP, so RTT calibration
holds) and counted in :attr:`DetectionWorld.shortfall` — members are
never silently dropped unless the whole pool is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.delaymodel.congestion import (
    CongestionProcess,
    NoCongestion,
    PersistentCongestion,
    TransientCongestion,
)
from repro.errors import ConfigurationError
from repro.geo.cities import City, CityDB, default_city_db
from repro.geo.distances import CityDistanceMatrix
from repro.ixp.catalog import IXPSpec, paper_catalog
from repro.ixp.ixp import IXP, MemberInterface
from repro.layer2.provider import RemotePeeringProvider
from repro.layer2.pseudowire import Pseudowire
from repro.lg.server import LookingGlassServer, OffLanTarget
from repro.net.addr import IPv4Address, IPv4Prefix, SubnetAllocator
from repro.net.device import Device, TTL_LINUX, TTL_NETWORK_OS, TTL_RARE
from repro.rand import child_rng, make_rng
from repro.registry.identify import IdentificationPipeline
from repro.registry.records import InterfaceRecord, IXPDirectory
from repro.registry.sources import (
    IXPWebsiteSource,
    PeeringDBSource,
    ReverseDNSSource,
)
from repro.sim.clock import CampaignWindow
from repro.sim.netpool import (
    NetworkPool,
    NetworkPoolConfig,
    PooledNetwork,
    generate_network_pool,
    weighted_index_sample,
)
from repro.types import ASN, NetworkKind, PeeringPolicy, PortKind

#: Behaviour class labels (ground truth annotations).
NORMAL = "normal"
BLACKHOLE = "blackhole"
OS_CHANGE = "os_change"
STALE = "stale"
RARE_TTL = "rare_ttl"
CONGESTED = "congested"
LG_BIASED = "lg_biased"
ASN_CHANGED = "asn_changed"

#: Great-circle distance windows (km) per remote band, chosen so the fiber
#: RTT lands in the paper's 10-20 / 20-50 / 50+ ms ranges.
_BAND_DISTANCES = {
    "short": (150.0, 560.0),  # deliberately sub-threshold: false negatives
    "intercity": (700.0, 1250.0),
    "intercountry": (1400.0, 3100.0),
    "intercontinental": (3500.0, 12000.0),
}

#: Remote bands in draw order (the vectorized engine groups draws by band).
_BANDS = ("intercity", "intercountry", "intercontinental")

#: Inter-IXP partnership programs the paper names (Section 2.3/3.2):
#: TOP-IX interconnects with VSIX (Padua) and LyonIX (Lyon); AMS-IX Hong
#: Kong reaches AMS-IX over third-party layer 2.  The builder seats some
#: remote members of these IXPs at the partner city, so the partner-driven
#: remote peering the paper observed at TOP-IX emerges in the data.
_PARTNERSHIPS: dict[str, tuple[tuple[str, str], ...]] = {
    "TOP-IX": (("VSIX", "Padua"), ("LyonIX", "Lyon")),
    "AMS-IX": (("AMS-IX-HK", "Hong Kong"),),
}

#: Remote members per partnership seat.
_PARTNER_SEATS = 4

#: Provider indices member circuits may use; index 1 (``atrato-like``,
#: the visible-detour provider) is reserved for the validation anchors.
_MEMBER_PROVIDER_CHOICES = (0, 2, 3)


@dataclass(frozen=True, slots=True)
class BehaviorRates:
    """Per-interface probabilities of each pathological behaviour.

    Defaults are calibrated against the paper's discard counts (Section
    3.1): 20 sample-size, 82 TTL-switch, 20 TTL-match, 100 RTT-consistent,
    28 LG-consistent and 5 ASN-change discards out of ~4,706 candidates.
    """

    blackhole: float = 0.0030
    os_change: float = 0.0174
    stale: float = 0.0025
    rare_ttl: float = 0.0025
    persistent_congestion: float = 0.0235
    lg_bias: float = 0.0110  # only drawn at dual-LG IXPs
    asn_change: float = 0.0018
    transient_congestion: float = 0.15  # benign; minimum stays clean

    def __post_init__(self) -> None:
        total = (
            self.blackhole + self.os_change + self.stale + self.rare_ttl
            + self.persistent_congestion + self.lg_bias + self.asn_change
        )
        if total >= 1.0:
            raise ConfigurationError("behaviour rates sum to >= 1")
        for value in (
            self.blackhole, self.os_change, self.stale, self.rare_ttl,
            self.persistent_congestion, self.lg_bias, self.asn_change,
            self.transient_congestion,
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError("rates must be probabilities")

    def class_table(self, dual_lg: bool) -> tuple[np.ndarray, tuple[str, ...]]:
        """Cumulative thresholds + labels for the mutually-exclusive draw.

        A uniform deviate ``u`` maps to ``labels[searchsorted(edges, u,
        'right')]`` — the same class boundaries the scalar engine walks
        with its running cursor.
        """
        pairs = (
            (self.blackhole, BLACKHOLE),
            (self.os_change, OS_CHANGE),
            (self.stale, STALE),
            (self.rare_ttl, RARE_TTL),
            (self.persistent_congestion, CONGESTED),
            (self.lg_bias if dual_lg else 0.0, LG_BIASED),
            (self.asn_change, ASN_CHANGED),
        )
        edges = np.cumsum([rate for rate, _ in pairs])
        labels = tuple(label for _, label in pairs) + (NORMAL,)
        return edges, labels


@dataclass(frozen=True, slots=True)
class DetectionWorldConfig:
    """Knobs for detection-world generation."""

    seed: int = 42
    specs: tuple[IXPSpec, ...] = ()
    pool: NetworkPoolConfig | None = None
    rates: BehaviorRates = BehaviorRates()
    window: CampaignWindow = CampaignWindow()
    #: Candidate interfaces generated per analyzed interface in Table 1;
    #: 4,706/4,451 reproduces the paper's pre-filter population.
    target_scale: float = 4706.0 / 4451.0
    #: Fraction of members with a second LAN interface.
    second_interface_fraction: float = 0.05
    #: Direct members whose metro tail is long (2-9 ms).
    far_metro_fraction: float = 0.08
    #: Remote slots with deliberately sub-threshold circuits (<10 ms).
    short_remote_fraction: float = 0.08
    #: Whether to add the named validation anchors (E4A/Invitel analogues).
    with_anchors: bool = True
    #: ``"vectorized"`` (array draws, default) or ``"scalar"`` (reference).
    #: Governs the builder and — only when ``pool`` is None — the network
    #: pool generator; an explicit ``pool`` config carries its own
    #: ``engine`` field (set it to ``"scalar"`` too for a fully scalar
    #: reference world).
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.engine not in ("vectorized", "scalar"):
            raise ConfigurationError(f"unknown world engine {self.engine!r}")


@dataclass(frozen=True, slots=True)
class InterfaceTruth:
    """Ground truth for one candidate interface."""

    ixp_acronym: str
    address: IPv4Address
    asn: ASN
    is_remote: bool
    behavior: str
    base_rtt_ms: float
    circuit_km: float  # 0 for direct ports
    on_lan: bool  # False for stale registry entries


@dataclass
class DetectionWorld:
    """Everything the Section 3 campaign consumes, plus ground truth."""

    city_db: CityDB
    pool: NetworkPool
    window: CampaignWindow
    ixps: dict[str, IXP]
    lg_servers: dict[str, list[LookingGlassServer]]
    directory: IXPDirectory
    identification: IdentificationPipeline
    providers: list[RemotePeeringProvider]
    truth: dict[tuple[str, int], InterfaceTruth]
    config: DetectionWorldConfig
    partnerships: list = field(default_factory=list)
    #: Per-IXP count of remote-member draws that found no candidate in
    #: their nominal distance band (filled from a widened band, or — only
    #: when the whole pool was exhausted — dropped).  0 for every IXP of
    #: the paper catalog; custom scenarios read it to see how far their
    #: candidate counts drifted from calibration.
    shortfall: dict[str, int] = field(default_factory=dict)

    def truth_for(self, ixp_acronym: str, address: IPv4Address) -> InterfaceTruth:
        """Ground-truth record for one (IXP, address) pair."""
        try:
            return self.truth[(ixp_acronym, address.value)]
        except KeyError:
            raise ConfigurationError(
                f"no ground truth for {ixp_acronym}/{address}"
            ) from None

    def candidate_count(self) -> int:
        """Total candidate interfaces across all IXPs."""
        return len(self.truth)

    def remote_truth_count(self, ixp_acronym: str | None = None) -> int:
        """Ground-truth remote interfaces (optionally for one IXP)."""
        return sum(
            1
            for t in self.truth.values()
            if t.is_remote and (ixp_acronym is None or t.ixp_acronym == ixp_acronym)
        )

    def total_shortfall(self) -> int:
        """Remote-member draws that left their nominal band, world-wide."""
        return sum(self.shortfall.values())


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def build_detection_world(
    config: DetectionWorldConfig | None = None,
) -> DetectionWorld:
    """Generate the detection world for ``config`` (fully deterministic)."""
    config = config or DetectionWorldConfig()
    specs = config.specs or paper_catalog()
    city_db = default_city_db()
    matrix = CityDistanceMatrix.build(city_db)
    pool_config = config.pool or NetworkPoolConfig(
        seed=config.seed,
        engine="scalar" if config.engine == "scalar" else "vectorized",
    )
    pool = generate_network_pool(city_db, pool_config)
    directory = IXPDirectory()
    providers = _make_providers(config.seed, specs, city_db)
    builder_cls = (
        _WorldBuilder if config.engine == "scalar" else _VectorWorldBuilder
    )
    builder = builder_cls(
        config=config,
        specs=specs,
        city_db=city_db,
        matrix=matrix,
        pool=pool,
        directory=directory,
        providers=providers,
    )
    builder.build()
    identification = IdentificationPipeline(
        peeringdb=PeeringDBSource(directory, coverage=0.54, seed=config.seed),
        website=IXPWebsiteSource(directory, coverage=0.30, seed=config.seed),
        rdns=ReverseDNSSource(directory, coverage=0.16, seed=config.seed),
    )
    return DetectionWorld(
        city_db=city_db,
        pool=pool,
        window=config.window,
        ixps=builder.ixps,
        lg_servers=builder.lg_servers,
        directory=directory,
        identification=identification,
        providers=providers,
        truth=builder.truth,
        config=config,
        partnerships=builder.partnerships,
        shortfall=builder.shortfall,
    )


def _make_providers(
    seed: int, specs: tuple[IXPSpec, ...], city_db: CityDB
) -> list[RemotePeeringProvider]:
    """Remote-peering providers present at every studied IXP."""
    rng = make_rng(seed)
    names_and_overheads = [
        ("reachix", float(rng.uniform(0.3, 1.0))),
        ("atrato-like", 4.0),  # the anchor provider: visible detour
        ("l2carrier", float(rng.uniform(0.5, 1.8))),
        ("metrowave", float(rng.uniform(0.3, 2.5))),
    ]
    providers = []
    for name, overhead in names_and_overheads:
        provider = RemotePeeringProvider(name=name, overhead_ms=overhead)
        for spec in specs:
            provider.add_presence(city_db.get(spec.city_name))
        providers.append(provider)
    return providers


class _WorldBuilder:
    """The scalar reference engine: one draw per interface attribute."""

    def __init__(
        self,
        config: DetectionWorldConfig,
        specs: tuple[IXPSpec, ...],
        city_db: CityDB,
        matrix: CityDistanceMatrix,
        pool: NetworkPool,
        directory: IXPDirectory,
        providers: list[RemotePeeringProvider],
    ) -> None:
        self.config = config
        self.specs = specs
        self.city_db = city_db
        self.matrix = matrix
        self.pool = pool
        self.directory = directory
        self.providers = providers
        self.ixps: dict[str, IXP] = {}
        self.lg_servers: dict[str, list[LookingGlassServer]] = {}
        self.truth: dict[tuple[str, int], InterfaceTruth] = {}
        self.partnerships: list = []
        self.shortfall: dict[str, int] = {}
        self._lans = SubnetAllocator(IPv4Prefix.parse("193.128.0.0/10"), 22)
        self._anchor_asn = ASN(64_600)
        self._anchor_plan: dict[str, list[tuple[AutonomousSystem, str, str]]] = {}
        #: One shared no-op process: ports without congestion are
        #: indistinguishable, and the batch probe engine skips
        #: ``NoCongestion`` entirely, so sharing is safe and cheap.
        self._no_congestion = NoCongestion()

    # -- top level ------------------------------------------------------------

    def build(self) -> None:
        if self.config.with_anchors:
            self._plan_anchors()
        for spec in self.specs:
            self.shortfall.setdefault(spec.acronym, 0)
            self._build_ixp(spec)

    def _note_shortfall(self, spec: IXPSpec, count: int = 1) -> None:
        """Record remote draws that had to leave their nominal band."""
        self.shortfall[spec.acronym] = self.shortfall.get(spec.acronym, 0) + count

    # -- anchors ---------------------------------------------------------------

    def _plan_anchors(self) -> None:
        """Named validation networks mirroring the paper's Section 3.3.

        * ``e4a-like``: Italian access network, remote at 6 IXPs and direct
          at 3 — the paper's example of many remote interfaces.
        * ``invitel-like``: Hungarian access network, remote at AMS-IX and
          DE-CIX via the high-overhead provider (the Atrato anecdote).
        * ``turktelecom-like``: transit network peering remotely.
        * ``trunk-like``: hosting company peering remotely.
        """
        def anchor(name: str, kind: NetworkKind, city: str) -> AutonomousSystem:
            asys = AutonomousSystem(
                asn=self._anchor_asn,
                name=name,
                kind=kind,
                home_city=self.city_db.get(city),
                policy=PeeringPolicy.OPEN,
                address_space=2 ** 14,
            )
            self._anchor_asn = ASN(self._anchor_asn + 1)
            return asys

        e4a = anchor("e4a-like", NetworkKind.ACCESS, "Rome")
        invitel = anchor("invitel-like", NetworkKind.ACCESS, "Budapest")
        turk = anchor("turktelecom-like", NetworkKind.TRANSIT, "Istanbul")
        trunk = anchor("trunk-like", NetworkKind.HOSTING, "London")

        plan: list[tuple[str, AutonomousSystem, str, str]] = [
            ("AMS-IX", e4a, "remote", "reachix"),
            ("DE-CIX", e4a, "remote", "reachix"),
            ("France-IX", e4a, "remote", "reachix"),
            ("LoNAP", e4a, "remote", "reachix"),
            ("TorIX", e4a, "remote", "reachix"),
            ("TIE", e4a, "remote", "reachix"),
            ("MIX", e4a, "direct", ""),
            ("TOP-IX", e4a, "direct", ""),
            ("VIX", e4a, "direct", ""),
            ("AMS-IX", invitel, "remote", "atrato-like"),
            ("DE-CIX", invitel, "remote", "atrato-like"),
            ("AMS-IX", turk, "remote", "l2carrier"),
            ("LINX", turk, "remote", "l2carrier"),
            ("AMS-IX", trunk, "remote", "metrowave"),
        ]
        for ixp_acr, asys, kind, provider in plan:
            self._anchor_plan.setdefault(ixp_acr, []).append((asys, kind, provider))

    # -- shared geometry -------------------------------------------------------

    def _cities_within(self, city: City, low: float, high: float) -> list[City]:
        """Cities whose distance from ``city`` lies in [low, high] km."""
        return self.matrix.within(city.name, low, high)

    def _city_names_within(self, city: City, low: float, high: float) -> set[str]:
        return {c.name for c in self._cities_within(city, low, high)}

    @staticmethod
    def _propensity_weights(candidates: list[PooledNetwork]) -> np.ndarray:
        """Normalized draw weights; uniform when all propensities are 0."""
        weights = np.array([n.propensity for n in candidates], dtype=float)
        total = weights.sum()
        if total <= 0:
            return np.full(len(candidates), 1.0 / len(candidates))
        return weights / total

    @staticmethod
    def _band_probabilities(spec: IXPSpec) -> np.ndarray:
        """Normalized band odds; all-zero ``band_weights`` fall back to
        a uniform draw over the three bands."""
        weights = np.array(spec.band_weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            return np.full(3, 1.0 / 3.0)
        return weights / total

    # -- one IXP -----------------------------------------------------------------

    def _common_ixp_setup(
        self, spec: IXPSpec, rng: np.random.Generator
    ) -> tuple[IXP, list[LookingGlassServer], list, int, int, int]:
        """IXP shell, LGs and membership arithmetic shared by both engines.

        The resolved city travels back as ``ixp.city``.
        """
        city = self.city_db.get(spec.city_name)
        ixp = IXP(
            acronym=spec.acronym,
            full_name=spec.full_name,
            city=city,
            country=spec.country,
            lan=self._lans.allocate(),
            peak_traffic_tbps=spec.peak_traffic_tbps,
        )
        if spec.sites > 1:
            ixp.fabric.set_intersite_rtt("main", "b", float(rng.uniform(0.15, 0.5)))
        self.ixps[spec.acronym] = ixp
        servers = self._attach_lgs(spec, ixp)
        self.lg_servers[spec.acronym] = servers

        anchors = self._anchor_plan.get(spec.acronym, [])
        target_count = round(spec.analyzed_interfaces * self.config.target_scale)
        target_count = max(1, target_count - len(anchors))
        membership_count = max(
            1, round(target_count / (1.0 + self.config.second_interface_fraction))
        )
        remote_members = round(spec.remote_fraction * membership_count)
        direct_members = membership_count - remote_members
        return (
            ixp, servers, anchors, target_count, remote_members, direct_members,
        )

    def _build_ixp(self, spec: IXPSpec) -> None:
        rng = child_rng(self.config.seed, "ixp", spec.acronym)
        ixp, servers, anchors, target_count, remote_members, direct_members = (
            self._common_ixp_setup(spec, rng)
        )

        members = self._draw_members(
            spec, rng, ixp.city, remote_members, direct_members
        )

        dual_lg = spec.has_pch_lg and spec.has_ripe_lg
        produced = 0
        for network, wanted_kind in members:
            iface_count = 1
            if produced + 1 < target_count and rng.random() < self.config.second_interface_fraction:
                iface_count = 2
            for i in range(iface_count):
                if produced >= target_count:
                    break
                self._add_member_interface(
                    spec, ixp, servers, rng, network, wanted_kind, dual_lg, i
                )
                produced += 1
        for asys, kind, provider_name in anchors:
            self._add_anchor_interface(spec, ixp, servers, rng, asys, kind, provider_name)

    def _attach_lgs(self, spec: IXPSpec, ixp: IXP) -> list[LookingGlassServer]:
        servers = []
        if spec.has_pch_lg:
            servers.append(
                LookingGlassServer.create(
                    "PCH", spec.acronym, ixp.fabric, ixp.allocate_address()
                )
            )
        if spec.has_ripe_lg:
            servers.append(
                LookingGlassServer.create(
                    "RIPE", spec.acronym, ixp.fabric, ixp.allocate_address()
                )
            )
        return servers

    def _draw_members(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        city: City,
        remote_members: int,
        direct_members: int,
    ) -> list[tuple[PooledNetwork, str]]:
        """Pick (network, direct|remote-band) pairs for one IXP."""
        continent = city.continent
        chosen: list[tuple[PooledNetwork, str]] = []
        used: set[ASN] = set()

        directs = self.pool.sample_members(rng, continent, direct_members, exclude=used)
        for network in directs:
            used.add(network.asn)
            chosen.append((network, "direct"))

        band_p = self._band_probabilities(spec)
        partner_slots = self._partner_slots(spec, city)
        for index in range(remote_members):
            if index < len(partner_slots):
                partner_city = partner_slots[index]
                network = self._draw_partner_network(spec, rng, partner_city, used)
                if network is not None:
                    used.add(network.asn)
                    chosen.append((network, f"partner:{partner_city.name}"))
                continue
            if rng.random() < self.config.short_remote_fraction:
                band = "short"
            else:
                band = _BANDS[int(rng.choice(3, p=band_p))]
            network = self._draw_remote_network(spec, rng, city, band, used)
            if network is None:
                continue
            used.add(network.asn)
            chosen.append((network, band))
        # Shuffle so remote/direct interleave in address space.
        order = rng.permutation(len(chosen))
        return [chosen[i] for i in order]

    def _partner_slots(self, spec: IXPSpec, city: City) -> list[City]:
        """Partner-IXP cities whose members remote-peer here."""
        partners = _PARTNERSHIPS.get(spec.acronym)
        if not partners:
            return []
        from repro.ixp.partnerships import Partnership

        slots: list[City] = []
        for partner_name, partner_city_name in partners:
            partner_city = self.city_db.get(partner_city_name)
            self.partnerships.append(
                Partnership(
                    ixp_a=spec.acronym,
                    ixp_b=partner_name,
                    city_a=city,
                    city_b=partner_city,
                    carrier="l2carrier",
                )
            )
            slots.extend([partner_city] * _PARTNER_SEATS)
        return slots

    def _draw_partner_network(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        partner_city: City,
        used: set[ASN],
    ) -> PooledNetwork | None:
        """A member of the partner IXP: a network homed near its city.

        Falls back from "within 400 km" to "same continent" to "any unused
        network" — the seat is filled whenever the pool has *any* network
        left; the widened draws are counted as shortfall.
        """
        nearby = self._city_names_within(partner_city, 0.0, 400.0)
        candidates = [
            n
            for n in self.pool.networks
            if n.asn not in used and n.home_city.name in nearby
        ]
        if not candidates:
            candidates = [
                n
                for n in self.pool.networks
                if n.asn not in used
                and n.home_city.continent == partner_city.continent
            ]
        if not candidates:
            self._note_shortfall(spec)
            candidates = [n for n in self.pool.networks if n.asn not in used]
        if not candidates:
            return None
        weights = self._propensity_weights(candidates)
        return candidates[int(rng.choice(len(candidates), p=weights))]

    def _draw_remote_network(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        ixp_city: City,
        band: str,
        used: set[ASN],
    ) -> PooledNetwork | None:
        """A network whose home city sits in the wanted distance band.

        When the band holds no unused candidate the draw widens to the
        whole pool (and is counted as shortfall) instead of silently
        dropping the member; ``_attach_remote`` later routes the widened
        member's circuit through an in-band provider PoP, so the IXP's
        RTT band mix stays calibrated.
        """
        low, high = _BAND_DISTANCES[band]
        eligible_cities = self._city_names_within(ixp_city, low, high)
        candidates = [
            n
            for n in self.pool.networks
            if n.asn not in used and n.home_city.name in eligible_cities
        ]
        if not candidates:
            self._note_shortfall(spec)
            candidates = [n for n in self.pool.networks if n.asn not in used]
        if not candidates:
            return None
        weights = self._propensity_weights(candidates)
        return candidates[int(rng.choice(len(candidates), p=weights))]

    # -- interfaces -------------------------------------------------------------------

    def _draw_behavior(self, rng: np.random.Generator, dual_lg: bool) -> str:
        edges, labels = self.config.rates.class_table(dual_lg)
        return labels[int(np.searchsorted(edges, rng.random(), side="right"))]

    def _make_device(
        self,
        rng: np.random.Generator,
        network: AutonomousSystem,
        spec: IXPSpec,
        behavior: str,
        index: int,
    ) -> Device:
        ttl = TTL_LINUX if rng.random() < 0.5 else TTL_NETWORK_OS
        kwargs: dict = {
            "name": f"rtr-as{network.asn}-{spec.acronym.lower()}-{index}",
            "ttl_init": ttl,
            "processing_ms": float(rng.uniform(0.03, 0.25)),
        }
        if behavior == RARE_TTL:
            kwargs["ttl_init"] = int(rng.choice(TTL_RARE))
        elif behavior == OS_CHANGE:
            kwargs["ttl_after_change"] = (
                TTL_NETWORK_OS if ttl == TTL_LINUX else TTL_LINUX
            )
            span = self.config.window.duration_s
            kwargs["os_change_time"] = float(rng.uniform(0.15, 0.85)) * span
        elif behavior == BLACKHOLE:
            kwargs["respond_probability"] = float(rng.uniform(0.0, 0.10))
        else:
            kwargs["respond_probability"] = float(rng.uniform(0.965, 1.0))
        return Device(**kwargs)

    def _port_congestion(self, rng: np.random.Generator, behavior: str):
        if behavior == CONGESTED:
            return PersistentCongestion(
                floor_ms=float(rng.uniform(2.0, 5.0)),
                spread_ms=float(rng.uniform(350.0, 650.0)),
            )
        if rng.random() < self.config.rates.transient_congestion:
            return TransientCongestion(
                peak_amplitude_ms=float(rng.uniform(0.5, 3.0)),
                peak_hour_utc=float(rng.uniform(0.0, 24.0)),
            )
        return self._no_congestion

    def _add_member_interface(
        self,
        spec: IXPSpec,
        ixp: IXP,
        servers: list[LookingGlassServer],
        rng: np.random.Generator,
        network: PooledNetwork,
        wanted_kind: str,
        dual_lg: bool,
        index: int,
    ) -> None:
        behavior = self._draw_behavior(rng, dual_lg)
        device = self._make_device(rng, network.asys, spec, behavior, index)
        member = ixp.register(network.asys)

        if behavior == STALE:
            self._add_stale_target(
                spec, ixp, servers, network.asys, device,
                base_rtt_ms=float(rng.uniform(1.0, 18.0)),
                extra_hops=int(rng.integers(1, 4)),
            )
            return

        if wanted_kind == "direct":
            iface, base_rtt, km = self._attach_direct(spec, ixp, rng, member, device, behavior)
            is_remote = False
        else:
            iface, base_rtt, km = self._attach_remote(
                spec, ixp, rng, member, device, behavior, wanted_kind, network.home_city
            )
            is_remote = True

        if behavior == LG_BIASED:
            operator = "RIPE" if rng.random() < 0.5 else "PCH"
            bias = max(6.0, 0.12 * base_rtt) + float(rng.uniform(3.0, 25.0))
            iface.port.operator_bias[operator] = bias

        self._publish(spec, ixp, network.asys, iface.address, behavior, rng=rng)
        self._record_truth(
            spec, iface.address, network.asn, is_remote, behavior, base_rtt, km,
        )

    def _record_truth(
        self,
        spec: IXPSpec,
        address: IPv4Address,
        asn: ASN,
        is_remote: bool,
        behavior: str,
        base_rtt_ms: float,
        circuit_km: float,
        on_lan: bool = True,
    ) -> None:
        self.truth[(spec.acronym, address.value)] = InterfaceTruth(
            ixp_acronym=spec.acronym,
            address=address,
            asn=asn,
            is_remote=is_remote,
            behavior=behavior,
            base_rtt_ms=base_rtt_ms,
            circuit_km=circuit_km,
            on_lan=on_lan,
        )

    def _attach_direct(self, spec, ixp, rng, member, device, behavior):
        if rng.random() < self.config.far_metro_fraction:
            tail = float(rng.uniform(2.0, 9.0))
        else:
            tail = float(rng.uniform(0.22, 1.9))
        site = "b" if spec.sites > 1 and rng.random() < 0.4 else "main"
        iface = ixp.add_interface(
            member,
            device,
            PortKind.DIRECT,
            tail_rtt_ms=tail,
            congestion=self._port_congestion(rng, behavior),
            site=site,
        )
        return iface, tail, 0.0

    def _provision_partner_wire(
        self,
        provider: RemotePeeringProvider,
        home_city: City,
        ixp: IXP,
        overhead_ms: float,
    ) -> Pseudowire:
        """Partner-IXP interconnect circuit.

        Inter-IXP interconnects chain several provider segments and detour
        through carrier hubs, so their overhead is well above a
        point-to-point circuit's — which is why the paper sees TOP-IX's
        partner members in the 10-20 ms band despite Padua/Lyon being only
        a few hundred kilometres away.
        """
        wire = Pseudowire(
            customer_city=home_city,
            ixp_city=ixp.city,
            overhead_ms=overhead_ms,
            latency_model=provider.latency_model,
        )
        provider.circuits.append(wire)
        return wire

    def _attach_remote(self, spec, ixp, rng, member, device, behavior, band, home_city):
        provider = self._pick_provider(rng)
        if band.startswith("partner:"):
            home_city = self.city_db.get(band.split(":", 1)[1])
            km = home_city.distance_km(ixp.city)
            wire = self._provision_partner_wire(
                provider, home_city, ixp, overhead_ms=float(rng.uniform(6.5, 11.0))
            )
            iface = ixp.add_interface(
                member,
                device,
                PortKind.REMOTE,
                pseudowire=wire,
                congestion=self._port_congestion(rng, behavior),
            )
            return iface, wire.base_rtt_ms(), km
        else:
            low, high = _BAND_DISTANCES[band]
            km = home_city.distance_km(ixp.city)
            if not low <= km <= high:
                # The member's circuit enters from a provider PoP in the band.
                candidates = self._cities_within(ixp.city, low, high)
                if candidates:
                    home_city = candidates[int(rng.integers(0, len(candidates)))]
                    km = home_city.distance_km(ixp.city)
        wire = provider.provision(home_city, ixp.city)
        iface = ixp.add_interface(
            member,
            device,
            PortKind.REMOTE,
            pseudowire=wire,
            congestion=self._port_congestion(rng, behavior),
        )
        return iface, wire.base_rtt_ms(), km

    def _pick_provider(self, rng: np.random.Generator) -> RemotePeeringProvider:
        choices = _MEMBER_PROVIDER_CHOICES
        return self.providers[choices[int(rng.integers(0, len(choices)))]]

    def _add_stale_target(
        self, spec, ixp, servers, asys, device, base_rtt_ms: float, extra_hops: int
    ) -> None:
        """Publish an address that is not on the LAN (website rot)."""
        address = ixp.allocate_address()
        offlan = OffLanTarget(
            device=device,
            base_rtt_ms=base_rtt_ms,
            extra_hops=extra_hops,
        )
        for server in servers:
            server.register_offlan_target(address, offlan)
        self._publish(spec, ixp, asys, address, STALE)
        self._record_truth(
            spec, address, asys.asn, False, STALE, offlan.base_rtt_ms, 0.0,
            on_lan=False,
        )

    def _publish(
        self,
        spec,
        ixp,
        asys,
        address,
        behavior,
        well_known=False,
        *,
        rng: np.random.Generator | None = None,
        asn_change: tuple[ASN, float] | None = None,
    ) -> None:
        record = InterfaceRecord(
            ixp_acronym=spec.acronym,
            address=address,
            asn=asys.asn,
            policy=asys.policy,
            stale=behavior == STALE,
            well_known=well_known,
        )
        if behavior == ASN_CHANGED:
            if asn_change is None:
                assert rng is not None
                other = self.pool.networks[int(rng.integers(0, len(self.pool.networks)))]
                asn_change = (
                    other.asn,
                    float(rng.uniform(0.3, 0.7)) * self.config.window.duration_s,
                )
            record.asn_after_change, record.asn_change_time = asn_change
        self.directory.add(record)

    def _add_anchor_interface(
        self, spec, ixp, servers, rng, asys: AutonomousSystem, kind: str, provider_name: str
    ) -> None:
        member = ixp.register(asys)
        device = Device(
            name=f"rtr-as{asys.asn}-{spec.acronym.lower()}-anchor",
            ttl_init=TTL_NETWORK_OS,
            processing_ms=0.08,
            respond_probability=0.99,
        )
        if kind == "direct":
            tail = float(rng.uniform(0.3, 1.2))
            iface = ixp.add_interface(member, device, PortKind.DIRECT, tail_rtt_ms=tail)
            base_rtt, km, is_remote = tail, 0.0, False
        else:
            provider = next(p for p in self.providers if p.name == provider_name)
            assert asys.home_city is not None
            wire = provider.provision(asys.home_city, ixp.city)
            iface = ixp.add_interface(member, device, PortKind.REMOTE, pseudowire=wire)
            base_rtt, km, is_remote = (
                wire.base_rtt_ms(),
                asys.home_city.distance_km(ixp.city),
                True,
            )
        self._publish(spec, ixp, asys, iface.address, NORMAL, well_known=True)
        self._record_truth(
            spec, iface.address, asys.asn, is_remote, NORMAL, base_rtt, km,
        )


# ---------------------------------------------------------------------------
# vectorized engine
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _InterfaceDraws:
    """Per-interface stochastic components, drawn as arrays (length n).

    Every quantity is drawn for every slot (in the fixed order listed in
    the module docstring) and selected per behaviour class afterwards —
    the same marginal law as the scalar engine's conditional draws.
    """

    behavior: list[str]
    ttl_linux: np.ndarray
    processing: np.ndarray
    rare_ttl_idx: np.ndarray
    os_change_frac: np.ndarray
    blackhole_respond: np.ndarray
    healthy_respond: np.ndarray
    persistent_floor: np.ndarray
    persistent_spread: np.ndarray
    transient_on: np.ndarray
    transient_amp: np.ndarray
    transient_peak: np.ndarray
    far_metro: np.ndarray
    far_tail: np.ndarray
    near_tail: np.ndarray
    site_b: np.ndarray
    provider_pick: np.ndarray
    partner_overhead: np.ndarray
    relocation_u: np.ndarray
    bias_ripe: np.ndarray
    bias_extra: np.ndarray
    stale_rtt: np.ndarray
    stale_hops: np.ndarray
    asn_other: np.ndarray
    asn_change_frac: np.ndarray


class _VectorWorldBuilder(_WorldBuilder):
    """The vectorized engine: per-IXP array draws, then object assembly.

    All randomness for one IXP is realized up front as numpy arrays; the
    remaining per-interface loop only constructs devices, ports and truth
    records.  Member selection replaces the scalar engine's per-draw
    pool scan with boolean masks over precomputed pool arrays (home-city
    index, propensity) against one city-distance-matrix row per band.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        networks = self.pool.networks
        self._net_city_idx = np.array(
            [self.matrix.index_of(n.home_city.name) for n in networks],
            dtype=np.intp,
        )
        self._net_propensity = np.array(
            [n.propensity for n in networks], dtype=float
        )
        self._net_index_by_asn = {n.asn: i for i, n in enumerate(networks)}
        self._city_continent = np.array(
            [c.continent for c in self.matrix.cities]
        )

    # -- member selection -------------------------------------------------------

    def _weighted_sample_idx(
        self, rng: np.random.Generator, candidates: np.ndarray, count: int
    ) -> np.ndarray:
        """Propensity-weighted sample without replacement from pool indices
        (see :func:`repro.sim.netpool.weighted_index_sample` for the law)."""
        return weighted_index_sample(
            rng, self._net_propensity[candidates], count, indices=candidates
        )

    def _draw_band_members(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        ixp_city: City,
        band: str,
        count: int,
        used: np.ndarray,
    ) -> list[int]:
        """``count`` pool indices homed in ``band``, widening on shortfall."""
        if count <= 0:
            return []
        low, high = _BAND_DISTANCES[band]
        city_mask = self.matrix.band_mask(ixp_city.name, low, high)
        candidates = np.flatnonzero(~used & city_mask[self._net_city_idx])
        picked: list[int] = []
        take = min(count, len(candidates))
        if take:
            chosen = self._weighted_sample_idx(rng, candidates, take)
            used[chosen] = True
            picked.extend(int(i) for i in chosen)
        missing = count - take
        if missing:
            self._note_shortfall(spec, missing)
            widened = np.flatnonzero(~used)
            take = min(missing, len(widened))
            if take:
                chosen = self._weighted_sample_idx(rng, widened, take)
                used[chosen] = True
                picked.extend(int(i) for i in chosen)
        return picked

    def _draw_partner_member(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        partner_city: City,
        used: np.ndarray,
    ) -> int | None:
        """One pool index homed near the partner city (same fallbacks as
        the scalar engine: <= 400 km, same continent, any unused)."""
        near = self.matrix.band_mask(partner_city.name, 0.0, 400.0)
        candidates = np.flatnonzero(~used & near[self._net_city_idx])
        if not len(candidates):
            same_continent = (
                self._city_continent[self._net_city_idx] == partner_city.continent
            )
            candidates = np.flatnonzero(~used & same_continent)
        if not len(candidates):
            self._note_shortfall(spec)
            candidates = np.flatnonzero(~used)
        if not len(candidates):
            return None
        chosen = int(self._weighted_sample_idx(rng, candidates, 1)[0])
        used[chosen] = True
        return chosen

    def _draw_members_arrays(
        self,
        spec: IXPSpec,
        rng: np.random.Generator,
        city: City,
        remote_members: int,
        direct_members: int,
    ) -> list[tuple[PooledNetwork, str]]:
        """Vectorized counterpart of ``_draw_members`` (same draw intent:
        directs, partner seats, banded remotes, interleave shuffle)."""
        networks = self.pool.networks
        used = np.zeros(len(networks), dtype=bool)
        chosen: list[tuple[PooledNetwork, str]] = []

        directs = self.pool.sample_members(rng, city.continent, direct_members)
        for network in directs:
            used[self._net_index_by_asn[network.asn]] = True
            chosen.append((network, "direct"))

        partner_slots = self._partner_slots(spec, city)
        n_partner = min(len(partner_slots), remote_members)
        n_banded = remote_members - n_partner

        short_coin = rng.random(n_banded) < self.config.short_remote_fraction
        band_idx = rng.choice(3, size=n_banded, p=self._band_probabilities(spec))
        band_counts = {"short": int(short_coin.sum())}
        for b, name in enumerate(_BANDS):
            band_counts[name] = int((band_idx[~short_coin] == b).sum())

        for partner_city in partner_slots[:n_partner]:
            index = self._draw_partner_member(spec, rng, partner_city, used)
            if index is not None:
                chosen.append(
                    (networks[index], f"partner:{partner_city.name}")
                )
        for band in ("short", *_BANDS):
            for index in self._draw_band_members(
                spec, rng, city, band, band_counts[band], used
            ):
                chosen.append((networks[index], band))

        order = rng.permutation(len(chosen))
        return [chosen[i] for i in order]

    # -- interface assembly -----------------------------------------------------

    def _draw_interface_arrays(
        self, spec: IXPSpec, rng: np.random.Generator, n: int, dual_lg: bool
    ) -> _InterfaceDraws:
        """All per-interface stochastic components for one IXP at once."""
        edges, labels = self.config.rates.class_table(dual_lg)
        class_idx = np.searchsorted(edges, rng.random(n), side="right")
        return _InterfaceDraws(
            behavior=[labels[k] for k in class_idx],
            ttl_linux=rng.random(n) < 0.5,
            processing=rng.uniform(0.03, 0.25, n),
            rare_ttl_idx=rng.integers(0, len(TTL_RARE), n),
            os_change_frac=rng.uniform(0.15, 0.85, n),
            blackhole_respond=rng.uniform(0.0, 0.10, n),
            healthy_respond=rng.uniform(0.965, 1.0, n),
            persistent_floor=rng.uniform(2.0, 5.0, n),
            persistent_spread=rng.uniform(350.0, 650.0, n),
            transient_on=rng.random(n) < self.config.rates.transient_congestion,
            transient_amp=rng.uniform(0.5, 3.0, n),
            transient_peak=rng.uniform(0.0, 24.0, n),
            far_metro=rng.random(n) < self.config.far_metro_fraction,
            far_tail=rng.uniform(2.0, 9.0, n),
            near_tail=rng.uniform(0.22, 1.9, n),
            site_b=rng.random(n) < 0.4,
            provider_pick=rng.integers(0, len(_MEMBER_PROVIDER_CHOICES), n),
            partner_overhead=rng.uniform(6.5, 11.0, n),
            relocation_u=rng.random(n),
            bias_ripe=rng.random(n) < 0.5,
            bias_extra=rng.uniform(3.0, 25.0, n),
            stale_rtt=rng.uniform(1.0, 18.0, n),
            stale_hops=rng.integers(1, 4, n),
            asn_other=rng.integers(0, len(self.pool.networks), n),
            asn_change_frac=rng.uniform(0.3, 0.7, n),
        )

    def _build_ixp(self, spec: IXPSpec) -> None:
        rng = child_rng(self.config.seed, "ixp", spec.acronym)
        ixp, servers, anchors, target_count, remote_members, direct_members = (
            self._common_ixp_setup(spec, rng)
        )

        members = self._draw_members_arrays(
            spec, rng, ixp.city, remote_members, direct_members
        )

        # Expand members into interface slots (second-interface coins are
        # one array draw), capped at the candidate target like the scalar
        # engine's running `produced` counter.
        second = rng.random(len(members)) < self.config.second_interface_fraction
        slots: list[tuple[PooledNetwork, str, int]] = []
        for (network, wanted_kind), extra in zip(members, second):
            slots.append((network, wanted_kind, 0))
            if extra:
                slots.append((network, wanted_kind, 1))
        slots = slots[:target_count]

        dual_lg = spec.has_pch_lg and spec.has_ripe_lg
        draws = self._draw_interface_arrays(spec, rng, len(slots), dual_lg)
        band_cities = {
            band: self._cities_within(ixp.city, low, high)
            for band, (low, high) in _BAND_DISTANCES.items()
        }
        for i, (network, wanted_kind, index) in enumerate(slots):
            self._realize_interface(
                spec, ixp, servers, network, wanted_kind, index, draws, i,
                band_cities,
            )
        for asys, kind, provider_name in anchors:
            self._add_anchor_interface(
                spec, ixp, servers, rng, asys, kind, provider_name
            )

    def _device_from_draws(
        self,
        network: AutonomousSystem,
        spec: IXPSpec,
        behavior: str,
        index: int,
        d: _InterfaceDraws,
        i: int,
    ) -> Device:
        ttl = TTL_LINUX if d.ttl_linux[i] else TTL_NETWORK_OS
        kwargs: dict = {
            "name": f"rtr-as{network.asn}-{spec.acronym.lower()}-{index}",
            "ttl_init": ttl,
            "processing_ms": float(d.processing[i]),
        }
        if behavior == RARE_TTL:
            kwargs["ttl_init"] = int(TTL_RARE[d.rare_ttl_idx[i]])
        elif behavior == OS_CHANGE:
            kwargs["ttl_after_change"] = (
                TTL_NETWORK_OS if ttl == TTL_LINUX else TTL_LINUX
            )
            kwargs["os_change_time"] = (
                float(d.os_change_frac[i]) * self.config.window.duration_s
            )
        elif behavior == BLACKHOLE:
            kwargs["respond_probability"] = float(d.blackhole_respond[i])
        else:
            kwargs["respond_probability"] = float(d.healthy_respond[i])
        return Device(**kwargs)

    def _congestion_from_draws(
        self, behavior: str, d: _InterfaceDraws, i: int
    ) -> CongestionProcess:
        if behavior == CONGESTED:
            return PersistentCongestion(
                floor_ms=float(d.persistent_floor[i]),
                spread_ms=float(d.persistent_spread[i]),
            )
        if d.transient_on[i]:
            return TransientCongestion(
                peak_amplitude_ms=float(d.transient_amp[i]),
                peak_hour_utc=float(d.transient_peak[i]),
            )
        return self._no_congestion

    def _realize_interface(
        self,
        spec: IXPSpec,
        ixp: IXP,
        servers: list[LookingGlassServer],
        network: PooledNetwork,
        wanted_kind: str,
        index: int,
        d: _InterfaceDraws,
        i: int,
        band_cities: dict[str, list[City]],
    ) -> None:
        """Assemble one interface from precomputed draws (no RNG calls)."""
        behavior = d.behavior[i]
        device = self._device_from_draws(network.asys, spec, behavior, index, d, i)
        member = ixp.register(network.asys)

        if behavior == STALE:
            self._add_stale_target(
                spec, ixp, servers, network.asys, device,
                base_rtt_ms=float(d.stale_rtt[i]),
                extra_hops=int(d.stale_hops[i]),
            )
            return

        congestion = self._congestion_from_draws(behavior, d, i)
        if wanted_kind == "direct":
            tail = float(d.far_tail[i] if d.far_metro[i] else d.near_tail[i])
            site = "b" if spec.sites > 1 and d.site_b[i] else "main"
            iface = ixp.add_interface(
                member, device, PortKind.DIRECT,
                tail_rtt_ms=tail, congestion=congestion, site=site,
            )
            base_rtt, km, is_remote = tail, 0.0, False
        else:
            iface, base_rtt, km = self._attach_remote_from_draws(
                spec, ixp, member, device, congestion, wanted_kind,
                network.home_city, d, i, band_cities,
            )
            is_remote = True

        if behavior == LG_BIASED:
            operator = "RIPE" if d.bias_ripe[i] else "PCH"
            bias = max(6.0, 0.12 * base_rtt) + float(d.bias_extra[i])
            iface.port.operator_bias[operator] = bias

        asn_change = None
        if behavior == ASN_CHANGED:
            asn_change = (
                self.pool.networks[int(d.asn_other[i])].asn,
                float(d.asn_change_frac[i]) * self.config.window.duration_s,
            )
        self._publish(
            spec, ixp, network.asys, iface.address, behavior,
            asn_change=asn_change,
        )
        self._record_truth(
            spec, iface.address, network.asn, is_remote, behavior, base_rtt, km,
        )

    def _attach_remote_from_draws(
        self,
        spec: IXPSpec,
        ixp: IXP,
        member,
        device: Device,
        congestion: CongestionProcess,
        band: str,
        home_city: City,
        d: _InterfaceDraws,
        i: int,
        band_cities: dict[str, list[City]],
    ) -> tuple[MemberInterface, float, float]:
        provider = self.providers[
            _MEMBER_PROVIDER_CHOICES[int(d.provider_pick[i])]
        ]
        if band.startswith("partner:"):
            home_city = self.city_db.get(band.split(":", 1)[1])
            km = home_city.distance_km(ixp.city)
            wire = self._provision_partner_wire(
                provider, home_city, ixp, overhead_ms=float(d.partner_overhead[i])
            )
        else:
            low, high = _BAND_DISTANCES[band]
            km = home_city.distance_km(ixp.city)
            if not low <= km <= high:
                # The member's circuit enters from a provider PoP in the band.
                candidates = band_cities[band]
                if candidates:
                    pick = min(
                        int(d.relocation_u[i] * len(candidates)),
                        len(candidates) - 1,
                    )
                    home_city = candidates[pick]
                    km = home_city.distance_km(ixp.city)
            wire = provider.provision(home_city, ixp.city)
        iface = ixp.add_interface(
            member, device, PortKind.REMOTE,
            pseudowire=wire, congestion=congestion,
        )
        return iface, wire.base_rtt_ms(), km
