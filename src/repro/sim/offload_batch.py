"""Trial-batch realization of the offload world: k seeds, one array program.

``build_offload_views`` realizes a whole seed batch of offload worlds for
the trial-batch engine (``StudyConfig.trial_batch``).  The batch is
struct-of-arrays over the trial axis: everything seed-independent — the
ASN universe, the Euro-IX catalog, tier-2 propensities, the scaffold
address-space/kind layout — is computed once per variant
(:class:`_BatchStatics`), and each seed stacks only its drawn arrays on
top.  Per seed the realization skips everything the study measures never
read: no :class:`~repro.bgp.relationships.ASGraph`, no
``AutonomousSystem`` objects, no route computation, no routing table —
the ~0.3 s of per-trial work that made 16-trial ensembles cost seconds.

Draw-program contract (the bit-identity invariant)
--------------------------------------------------
The batched engine must be **bit-identical per seed** to the per-world
engines, so it cannot widen the random draws themselves: a ``(k, ...)``
stage block is realized as k parallel *per-seed* child streams
(:func:`repro.rand.batch_child_rngs`), each consumed in exactly the
documented order of :mod:`repro.sim.offload_world`.  Concretely,
:class:`_BatchSeedBuilder` subclasses the reference
``_OffloadBuilderBase`` and *inherits* the draw-bearing stages verbatim
(``_build_traffic``, ``_build_memberships``, the ``_Tier2Draws`` /
``_StubDraws`` stage draws); the stages it overrides (giants, tier-2 /
stub materialization, address space) consume the same streams with the
same array shapes in the same order, which ``repro lint
--draw-programs`` verifies statically as a third engine next to
``scalar`` and ``vectorized``.

Customer cones without the graph
--------------------------------
The reference world derives cone index tables from a Kahn level order
over the full provider DAG.  The topology is only three levels deep
(tier-1 ← tier-2 ← stub), so the batch path builds the same tables
directly from the drawn edge arrays: one argsort turns the stub→tier-2
edges into per-tier-2 CSR member lists (own index first — the tier-2's
contributing index is below every stub index, so segments stay
ascending), and tier-1 cones are the union of their direct contributing
customers plus their customer tier-2s' segments.  Output arrays match
the reference tables exactly (``int32``, ascending, own index included).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.ixp.euroix import EuroIXSpec, euroix_catalog
from repro.netflow.collector import FlowCollector
from repro.netflow.traffic import (
    _INBOUND_SHARE,
    TrafficMatrix,
    TrafficMatrixConfig,
    rank_profile_totals,
    split_totals_by_kind,
)
from repro.rand import child_rng
from repro.rand import weighted_top_k
from repro.sim.offload_world import (
    _GIANT_RANKS,
    _GIANTS,
    _REGION_TRAFFIC_MULTIPLIER,
    _REGIONS,
    _STUB_KINDS,
    OffloadWorldConfig,
    _OffloadBuilderBase,
    _StubDraws,
    _Tier2Draws,
)
from repro.types import ASN, NetworkKind, PeeringPolicy

_EMPTY_I32 = np.empty(0, dtype=np.int32)

_STUB_POLICY_VALUES = (
    PeeringPolicy.OPEN, PeeringPolicy.SELECTIVE, PeeringPolicy.RESTRICTIVE,
)

#: Per-kind-slot lookups so per-seed stub scoring is one gather instead of
#: ~30k dict probes.  Values mirror the reference tables bit-for-bit.
_REGION_MULT_TABLE = np.array(
    [_REGION_TRAFFIC_MULTIPLIER[r] for r in _REGIONS]
)
_PIN_KIND_WEIGHT = {
    NetworkKind.CONTENT: 4.0,
    NetworkKind.CDN: 4.0,
    NetworkKind.HOSTING: 2.5,
    NetworkKind.ENTERPRISE: 1.5,
    NetworkKind.TRANSIT: 1.0,
    NetworkKind.ACCESS: 0.35,
    NetworkKind.NREN: 1.0,
    NetworkKind.TIER1: 1.0,
}
_KIND_WEIGHT_BY_SLOT = np.array([_PIN_KIND_WEIGHT[k] for k in _STUB_KINDS])
_KIND_IS_ACCESS = np.array([k is NetworkKind.ACCESS for k in _STUB_KINDS])
_KIND_IS_TRANSIT = np.array([k is NetworkKind.TRANSIT for k in _STUB_KINDS])
_SHARE_BY_SLOT = np.array([_INBOUND_SHARE[k] for k in _STUB_KINDS])
_ACCESS_SHARE = _INBOUND_SHARE[NetworkKind.ACCESS]


@dataclass
class _BatchStatics:
    """Everything seed-independent, computed once per variant."""

    config_key: str
    tier1s: list[ASN]
    rediris: ASN
    geant: ASN
    nrens: tuple[ASN, ...]
    giants: list[ASN]
    direct_peer_cdns: tuple[ASN, ...]
    tier2s: list[ASN]
    stubs: list[int]
    contributing: list
    euroix: tuple[EuroIXSpec, ...]
    mega_carriers: list[ASN]
    tier2_propensity: dict[ASN, float]
    giant_kinds: list[NetworkKind]
    static_policy: dict[int, PeeringPolicy]
    static_region: dict[int, str]
    #: Initial announced space per ASN, ascending-ASN order (stub slots 256).
    base_space: np.ndarray
    #: TIER1/TRANSIT scaffold positions (the non-stub carrier multipliers).
    carrier_static: np.ndarray
    #: Offset of the stub block in the ascending-ASN layout.
    stub_offset: int
    #: Contributing ASN → array index; shared read-only by every seed.
    contrib_index: dict
    #: ``arange(contributing_count, dtype=int32)`` shared by the views.
    contrib_arange: np.ndarray
    #: ``_INBOUND_SHARE`` of the giants + tier-2s (the static head of the
    #: contributing list); the stub tail is gathered per seed by kind code.
    head_share: np.ndarray


def _build_statics(config: OffloadWorldConfig) -> _BatchStatics:
    cfg = config
    giant_count = len(_GIANTS)
    stub_count = cfg.contributing_count - giant_count - cfg.tier2_count
    tier1s = [ASN(101 + i) for i in range(cfg.tier1_count)]
    rediris = ASN(766)
    geant = ASN(900)
    nrens = tuple(ASN(901 + i) for i in range(cfg.nren_count))
    giants = [ASN(2001 + i) for i in range(giant_count)]
    cdns = tuple(ASN(2101 + i) for i in range(6))
    tier2s = [ASN(3001 + i) for i in range(cfg.tier2_count)]
    stubs = list(range(10_001, 10_001 + stub_count))
    giant_kinds = [
        NetworkKind.CDN if i % 2 else NetworkKind.CONTENT
        for i in range(giant_count)
    ]

    probe = _OffloadBuilderBase(cfg)  # for the shared propensity formula
    tier2_propensity: dict[ASN, float] = {}
    for i, tier2 in enumerate(tier2s):
        propensity = probe._tier2_propensity(i)
        if propensity is not None:
            tier2_propensity[tier2] = propensity

    static_policy: dict[int, PeeringPolicy] = {rediris: PeeringPolicy.SELECTIVE}
    static_region: dict[int, str] = {rediris: "europe"}
    for i, tier1 in enumerate(tier1s):
        static_policy[tier1] = PeeringPolicy.RESTRICTIVE
        static_region[tier1] = "north_america" if i % 2 else "europe"
    static_policy[geant] = PeeringPolicy.SELECTIVE
    static_region[geant] = "europe"
    for nren in nrens:
        static_policy[nren] = PeeringPolicy.SELECTIVE
        static_region[nren] = "europe"
    for giant, (_, policy) in zip(giants, _GIANTS):
        static_policy[giant] = policy
    for cdn in cdns:
        static_policy[cdn] = PeeringPolicy.OPEN
        static_region[cdn] = "europe"

    # Ascending-ASN scaffold for the address-space stage: tier-1s, RedIRIS,
    # GÉANT, NRENs, giants, peered CDNs, tier-2s, stubs — the exact order
    # ``ASGraph.ases()`` iterates, which fixes the multiplier draw order.
    blocks = (
        np.full(cfg.tier1_count, float(2 ** 22)),
        np.array([float(2 ** 20), float(2 ** 18)]),
        np.full(cfg.nren_count, float(2 ** 17)),
        np.full(giant_count, float(2 ** 19)),
        np.full(6, float(2 ** 17)),
        np.full(cfg.tier2_count, float(2 ** 16)),
        np.full(stub_count, 256.0),
    )
    base_space = np.concatenate(blocks)
    stub_offset = base_space.size - stub_count
    carrier_static = np.zeros(base_space.size, dtype=bool)
    carrier_static[: cfg.tier1_count] = True
    carrier_static[stub_offset - cfg.tier2_count: stub_offset] = True

    contributing = [*giants, *tier2s, *stubs]
    if len(contributing) != cfg.contributing_count:
        raise ConfigurationError(
            f"contributing count {len(contributing)} != "
            f"{cfg.contributing_count}"
        )
    head_share = np.concatenate([
        np.array([_INBOUND_SHARE[k] for k in giant_kinds]),
        np.full(cfg.tier2_count, _INBOUND_SHARE[NetworkKind.TRANSIT]),
    ])
    return _BatchStatics(
        config_key=repr(replace(cfg, seed=0)),
        tier1s=tier1s,
        rediris=rediris,
        geant=geant,
        nrens=nrens,
        giants=giants,
        direct_peer_cdns=cdns,
        tier2s=tier2s,
        stubs=stubs,
        contributing=contributing,
        euroix=euroix_catalog(),
        mega_carriers=tier2s[: cfg.mega_carrier_count],
        tier2_propensity=tier2_propensity,
        giant_kinds=giant_kinds,
        static_policy=static_policy,
        static_region=static_region,
        base_space=base_space,
        carrier_static=carrier_static,
        stub_offset=stub_offset,
        contrib_index={a: i for i, a in enumerate(contributing)},
        contrib_arange=np.arange(len(contributing), dtype=np.int32),
        head_share=head_share,
    )


@dataclass
class OffloadWorldView:
    """One seed's lightweight world: the exact surface the measures read.

    Duck-types :class:`~repro.sim.offload_world.OffloadWorld` for
    ``PeerGroups.build``, :class:`OffloadEstimator`, the greedy expansion
    and the economics collector arithmetic.  Values are bit-identical to
    the built world's; what is *absent* is the graph, AS paths and the
    routing table (``collector.flow_records`` raises — no study measure
    calls it).  ``region_of`` covers every network whose region the
    measures can read (scaffold tiers, giants, tier-2s, IXP-goer stubs);
    non-goer stub regions stay in the stage draw arrays.
    """

    config: OffloadWorldConfig
    rediris: ASN
    transit_providers: tuple[ASN, ASN]
    tier1s: tuple[ASN, ...]
    geant: ASN
    nrens: tuple[ASN, ...]
    giants: tuple[ASN, ...]
    direct_peer_cdns: tuple[ASN, ...]
    euroix: tuple[EuroIXSpec, ...]
    memberships: dict[str, frozenset[ASN]]
    contributing: list
    matrix: TrafficMatrix
    collector: FlowCollector
    region_of: dict
    _contrib_index: dict
    _cones: dict
    _static_policy: dict[int, PeeringPolicy]
    _tier2_draws: _Tier2Draws
    _stub_policy_codes: np.ndarray
    _address_space: np.ndarray
    #: Shared ``arange(len(contributing), dtype=int32)``; single-network
    #: cones are served as one-element slices of it.
    _contrib_arange: np.ndarray

    def contributing_index(self, asn: ASN) -> int | None:
        """Index of ``asn`` in the contributing arrays, or None."""
        return self._contrib_index.get(asn)

    def policy_of(self, asn: ASN) -> PeeringPolicy:
        """Published peering policy, resolved from the stage draws."""
        value = int(asn)
        if value >= 10_001:
            return _STUB_POLICY_VALUES[
                int(self._stub_policy_codes[value - 10_001])
            ]
        if value >= 3001:
            i = value - 3001
            return self._tier2_draws.policy(
                i, i < self.config.mega_carrier_count
            )
        return self._static_policy[value]

    def cone_contrib_indices(self, asn: ASN) -> np.ndarray:
        """Contributing-array indices covered by ``asn``'s customer cone."""
        got = self._cones.get(asn)
        if got is not None:
            return got
        index = self._contrib_index.get(asn)
        if index is None:
            got = _EMPTY_I32
        else:
            # Giants and stubs have no customers: their cone is themselves,
            # served as a slice of one shared arange (no allocation).
            got = self._contrib_arange[index: index + 1]
        self._cones[asn] = got
        return got

    def contributing_mask_for_members(
        self, members: frozenset[ASN]
    ) -> np.ndarray:
        """Boolean offloadable mask over contributing networks."""
        mask = np.zeros(len(self.contributing), dtype=bool)
        # Scattering True is commutative over member order.  # repro-lint: ok[det-set-iter]
        for member in members:
            mask[self.cone_contrib_indices(member)] = True
        return mask

    def total_address_space(self) -> float:
        """Announced space of the whole world (Figure 10's 2.6 B)."""
        return float(self._address_space.sum())

    def address_space_by_asn(self) -> np.ndarray:
        """Final announced space, ascending-ASN order (tests compare it)."""
        return self._address_space


class _BatchSeedBuilder(_OffloadBuilderBase):
    """One seed of a trial batch, drawn like the reference, built as arrays.

    Inherits the draw-bearing stages (traffic, memberships) and the stage
    draws from the reference base class; the overridden stages consume
    identical streams but materialize index arrays instead of graph
    objects.  ``repro lint --draw-programs`` inventories this class as
    the ``batched`` engine and fails on any three-way stream divergence.
    """

    def __init__(
        self, config: OffloadWorldConfig, statics: _BatchStatics
    ) -> None:
        super().__init__(config)
        self._static = statics

    # -- overridden stages (same draws, array materialization) ----------------

    def _build_giants(self, tier1s: list[ASN]) -> list[ASN]:
        keys = self._stage_rng("giants").random((len(_GIANTS), len(tier1s)))
        self._giant_tier1_picks = np.argsort(keys, axis=1)[:, :2]
        giants = self._static.giants
        self._giant_kinds = list(self._static.giant_kinds)
        for giant in giants:
            self.region_of[giant] = "north_america"
            self.ixp_propensity[giant] = 50.0
        return giants

    def _materialize_tier2s(
        self, tier1s: list[ASN], draws: _Tier2Draws
    ) -> list[ASN]:
        cfg = self.config
        tier2s = self._static.tier2s
        regions = [_REGIONS[i] for i in draws.region_idx.tolist()]
        self.region_of.update(zip(tier2s, regions))
        self.mega_carriers = list(self._static.mega_carriers)
        self.ixp_propensity.update(self._static.tier2_propensity)
        # Uplink edges in (tier-2 index, tier-1 index) space for the cones.
        col = np.arange(draws.uplink_order.shape[1])
        take = col[None, :] < draws.uplink_count[:, None]
        self._tier2_uplink_cust = np.repeat(
            np.arange(cfg.tier2_count), draws.uplink_count
        )
        self._tier2_uplink_prov = draws.uplink_order[take]
        return tier2s

    def _materialize_stubs(
        self, tier1s: list[ASN], tier2s: list[ASN], draws: _StubDraws
    ) -> list[int]:
        cfg = self.config
        stubs = self._static.stubs

        big = draws.big_eyeball
        tier1_only = draws.tier1_only
        normal = ~big & ~tier1_only
        stub_arr = np.asarray(stubs, dtype=np.int64)
        self._big_pos = np.flatnonzero(big)
        self._t1o_pos = np.flatnonzero(tier1_only)
        self.big_eyeballs = [ASN(a) for a in stub_arr[big].tolist()]
        self.tier1_only_stubs = [ASN(a) for a in stub_arr[tier1_only].tolist()]
        self.tier1_only_stubs_set = set(self.tier1_only_stubs)

        # Big eyeballs: two tier-1s each, often plus one mega-carrier.
        self._eyeball_t1 = draws.eyeball_order[:, :2]
        if self.mega_carriers:
            homed = draws.eyeball_mega_homed
            self._eyeball_mega_cust = self._big_pos[homed]
            self._eyeball_mega_prov = (
                draws.eyeball_mega_pick_u[homed] * len(self.mega_carriers)
            ).astype(np.int64)
        else:
            self._eyeball_mega_cust = np.empty(0, dtype=np.int64)
            self._eyeball_mega_prov = np.empty(0, dtype=np.int64)

        # Tier-1-only stubs: 1-3 distinct tier-1s by ascending key.
        t1o_counts = np.minimum(draws.provider_count[tier1_only], 3)
        col = np.arange(draws.tier1_only_order.shape[1])
        take = col[None, :] < t1o_counts[:, None]
        self._t1o_cust = np.repeat(self._t1o_pos, t1o_counts)
        self._t1o_t1 = draws.tier1_only_order[take]

        # Normal stubs: the vectorized engine's pool arithmetic, but in
        # tier-2 *index* space (pool position == tier-2 index for the mega
        # and global pools; the regional pools concatenate index runs).
        normal_pos = np.flatnonzero(normal)
        region_codes = draws.region_idx[normal]
        tier2_region_idx = self._tier2_draws.region_idx
        local_members = [
            np.flatnonzero(tier2_region_idx == r)
            for r in range(len(_REGIONS))
        ]
        local_sizes = np.array([len(m) for m in local_members])
        local_concat = (
            np.concatenate(local_members)
            if cfg.tier2_count else np.empty(0, dtype=np.int64)
        )
        local_offsets = np.concatenate(([0], np.cumsum(local_sizes)[:-1]))
        mega_count = len(self.mega_carriers)
        u = draws.pool_u[normal]
        local_len = local_sizes[region_codes]
        cat_mega = (u < 0.15) & (mega_count > 0)
        cat_local = ~cat_mega & (u < 0.85) & (local_len > 0)
        cat_global = ~cat_mega & ~cat_local
        pool_len = np.where(
            cat_mega, mega_count,
            np.where(cat_local, local_len, cfg.tier2_count),
        )
        counts = draws.provider_count[normal]
        idx = np.minimum(
            (draws.pick_u * pool_len[:, None]).astype(np.int64),
            np.maximum(pool_len[:, None] - 1, 0),
        )
        provider_mat = np.empty_like(idx)
        provider_mat[cat_mega] = idx[cat_mega]
        provider_mat[cat_local] = local_concat[
            local_offsets[region_codes[cat_local], None] + idx[cat_local]
        ]
        provider_mat[cat_global] = idx[cat_global]
        # Per-row dedupe (<= 3 picks): index equality is ASN equality.
        col = np.arange(3)
        take = col[None, :] < counts[:, None]
        take[:, 1] &= provider_mat[:, 1] != provider_mat[:, 0]
        take[:, 2] &= (provider_mat[:, 2] != provider_mat[:, 0]) & (
            provider_mat[:, 2] != provider_mat[:, 1]
        )
        self._normal_cust = np.repeat(normal_pos, take.sum(axis=1))
        self._normal_prov = provider_mat[take]

        # Only IXP-goer stubs ever have their region read (the membership
        # pools); everyone else's region stays in the draw arrays.
        goer_idx = np.flatnonzero(normal & draws.ixpgoer)
        goer_regions = draws.region_idx[goer_idx].tolist()
        goer_propensity = draws.propensity[goer_idx].tolist()
        for i, r, p in zip(goer_idx.tolist(), goer_regions, goer_propensity):
            stub = stubs[i]
            self.region_of[stub] = _REGIONS[r]
            self.ixp_propensity[stub] = p
        self._stub_policy_codes = np.where(
            draws.policy_u < 0.62, 0, np.where(draws.policy_u < 0.90, 1, 2)
        )
        return stubs

    def _pin_head_to_tier1_only(
        self, totals: np.ndarray, contributing: list, rng,
        kinds: list[NetworkKind],
    ) -> None:
        """The reference head-pinning with the pool weights as one gather.

        Draw-free relative to the base implementation: ``weighted_top_k``
        consumes exactly ``len(pool)`` uniforms either way, and the weight
        values are the identical float products, so the picks — and
        therefore every downstream draw — are bit-identical.
        """
        cfg = self.config
        if not self.tier1_only_stubs:
            return
        draws = self._stub_draws
        giant_count = len(_GIANTS)
        base = giant_count + cfg.tier2_count
        pool = (base + self._t1o_pos).tolist()
        kind_weights = _KIND_WEIGHT_BY_SLOT[
            draws.kind_idx[self._t1o_pos]
        ]
        weights = (
            _REGION_MULT_TABLE[draws.region_idx[self._t1o_pos]] * kind_weights
        )
        draw_count = min(cfg.head_pin_count, len(pool))
        picks = weighted_top_k(rng, weights, draw_count)
        picks = sorted(
            picks.tolist(), key=lambda i: -float(kind_weights[i])
        )
        chosen = iter(pool[int(i)] for i in picks)
        order = np.argsort(totals)[::-1]
        giant_rank_set = set(_GIANT_RANKS[:giant_count])
        pinned: set[int] = set()
        for rank in range(1, cfg.head_pin_count + 1):
            if rank in giant_rank_set:
                continue
            holder = int(order[rank - 1])
            if holder < giant_count or holder in pinned:
                continue
            if contributing[holder] in self.tier1_only_stubs_set:
                pinned.add(holder)
                continue
            try:
                eyeball = next(chosen)
            except StopIteration:
                break
            while eyeball == holder or eyeball in pinned:
                try:
                    eyeball = next(chosen)
                except StopIteration:
                    return
            totals[holder], totals[eyeball] = totals[eyeball], totals[holder]
            pinned.add(eyeball)

    def _build_traffic(self, contributing: list) -> TrafficMatrix:
        """The reference traffic pipeline with the shares as one gather.

        Same stream (``(seed, "traffic")``), same draw order — totals,
        permutation, head-pinning uniforms, split noise.  Only the
        ``_INBOUND_SHARE`` lookup changes representation: the share array
        is gathered by kind *code* from tables built from the same dict,
        so the values (and every downstream float) are bit-identical.
        """
        cfg = self.config
        traffic_cfg = cfg.traffic or TrafficMatrixConfig(seed=cfg.seed)
        rng = child_rng(cfg.seed, "traffic")
        count = len(contributing)
        totals = rank_profile_totals(count, traffic_cfg, rng)
        totals = totals[rng.permutation(count)]
        totals = totals * self._region_multipliers(contributing)

        self._pin_giants(totals)
        self._pin_head_to_tier1_only(totals, contributing, rng, kinds=None)

        draws = self._stub_draws
        stub_share = _SHARE_BY_SLOT[draws.kind_idx]
        stub_share[draws.big_eyeball] = _ACCESS_SHARE
        base_share = np.concatenate([self._static.head_share, stub_share])
        return split_totals_by_kind(
            totals, None, traffic_cfg, rng, base_share=base_share
        )

    def _scale_address_space(self) -> np.ndarray:
        """The reference multiplier draws over the static ASN layout."""
        cfg = self.config
        st = self._static
        rng = self._stage_rng("addrspace")
        draws = self._stub_draws
        space = st.base_space.copy()
        count = space.size

        big_mask = np.zeros(count, dtype=bool)
        big_mask[st.stub_offset + self._big_pos] = True
        stub_access = _KIND_IS_ACCESS[draws.kind_idx]
        stub_transit = _KIND_IS_TRANSIT[draws.kind_idx]
        # Big-eyeball slots are forced ACCESS kind; both masks exclude big
        # slots below exactly as the reference does.
        access_mask = np.zeros(count, dtype=bool)
        access_mask[st.stub_offset:] = stub_access
        access_mask &= ~big_mask
        carrier_mask = st.carrier_static.copy()
        carrier_mask[st.stub_offset:] = stub_transit
        carrier_mask &= ~big_mask

        space[access_mask] = np.floor(
            space[access_mask]
            * rng.uniform(10, 80, size=int(access_mask.sum()))
        )
        space[carrier_mask] = np.floor(
            space[carrier_mask]
            * rng.uniform(4, 40, size=int(carrier_mask.sum()))
        )
        other_total = float(space[~big_mask].sum())
        big_total_target = (
            cfg.big_eyeball_space_share
            / (1.0 - cfg.big_eyeball_space_share)
            * other_total
        )
        if self.big_eyeballs:
            per_eyeball_weight = rng.lognormal(
                0.0, 0.8, size=len(self.big_eyeballs)
            )
            per_eyeball_weight /= per_eyeball_weight.sum()
            big_positions = np.flatnonzero(big_mask)
            space[big_positions] = np.maximum(
                1.0, np.floor(big_total_target * per_eyeball_weight)
            )
        scale = cfg.total_address_space / float(space.sum())
        return np.maximum(1, np.floor(space * scale).astype(np.int64))

    # -- cone index tables from the drawn edges -------------------------------

    def _cone_tables(self) -> dict:
        """Per-candidate cone index arrays, straight from the edge draws.

        Matches the reference Kahn tables exactly: ``int32``, ascending,
        the owner's own contributing index included.  The provider DAG is
        three levels deep, so tier-2 cones are one sorted CSR build and
        tier-1 cones one gather over their customer tier-2s' segments.
        """
        cfg = self.config
        st = self._static
        giant_count = len(st.giants)
        n2 = cfg.tier2_count
        base = giant_count + n2
        total = base + len(st.stubs)

        # stub → tier-2 edges in contributing-index space.
        cust2 = np.concatenate([
            base + self._normal_cust, base + self._eyeball_mega_cust,
        ])
        prov2 = np.concatenate([self._normal_prov, self._eyeball_mega_prov])
        order = np.argsort(prov2 * np.int64(total) + cust2)
        cust2_sorted = cust2[order]
        member_counts = np.bincount(prov2, minlength=n2)
        seg_len = member_counts + 1
        seg_start = np.concatenate(([0], np.cumsum(seg_len)))[:-1]
        values = np.empty(int(seg_len.sum()), dtype=np.int32)
        own_slots = np.zeros(values.size, dtype=bool)
        own_slots[seg_start] = True
        values[own_slots] = (giant_count + np.arange(n2)).astype(np.int32)
        values[~own_slots] = cust2_sorted.astype(np.int32)

        cones: dict = {}
        for j, tier2 in enumerate(st.tier2s):
            s = int(seg_start[j])
            cones[tier2] = values[s: s + int(seg_len[j])]

        # tier-1 cones: direct contributing customers + the cones of their
        # customer tier-2s (which carry the transitive stub members).
        direct_cust = np.concatenate([
            np.repeat(np.arange(giant_count), 2),
            giant_count + self._tier2_uplink_cust,
            base + np.repeat(self._big_pos, 2),
            base + self._t1o_cust,
        ])
        direct_prov = np.concatenate([
            self._giant_tier1_picks.ravel(),
            self._tier2_uplink_prov,
            self._eyeball_t1.ravel(),
            self._t1o_t1,
        ])
        seg_lens = seg_len[self._tier2_uplink_cust]
        starts = np.repeat(seg_start[self._tier2_uplink_cust], seg_lens)
        offsets = np.arange(seg_lens.sum()) - np.repeat(
            np.cumsum(seg_lens) - seg_lens, seg_lens
        )
        indirect_cust = values[starts + offsets]
        indirect_prov = np.repeat(self._tier2_uplink_prov, seg_lens)
        all_cust = np.concatenate([direct_cust, indirect_cust])
        all_prov = np.concatenate([direct_prov, indirect_prov])
        # Dedup by scatter: one (tier-1, member) bitmap, then flatnonzero
        # per tier-1 yields the sorted unique members directly.
        covered = np.zeros((len(st.tier1s), total), dtype=bool)
        covered[all_prov, all_cust] = True
        for t, tier1 in enumerate(st.tier1s):
            cones[tier1] = np.flatnonzero(covered[t]).astype(np.int32)
        return cones

    # -- realization ----------------------------------------------------------

    def build_view(self) -> OffloadWorldView:
        """Realize this seed: the documented stage order, no graph."""
        cfg = self.config
        st = self._static
        self.region_of.update(st.static_region)
        giants = self._build_giants(st.tier1s)
        self._tier2_draws = _Tier2Draws.draw(self)
        tier2s = self._materialize_tier2s(st.tier1s, self._tier2_draws)
        self._stub_draws = _StubDraws.draw(self, st.tier1s)
        stubs = self._materialize_stubs(st.tier1s, tier2s, self._stub_draws)
        contributing = st.contributing  # validated once per variant
        matrix = self._build_traffic(contributing)
        memberships = self._build_memberships(
            st.rediris, st.tier1s, giants, tier2s, stubs
        )
        address_space = self._scale_address_space()
        cones = self._cone_tables()
        collector = FlowCollector(
            table=None,
            matrix=matrix,
            counterparties=contributing,
            days=cfg.days,
        )
        return OffloadWorldView(
            config=cfg,
            rediris=st.rediris,
            transit_providers=(st.tier1s[0], st.tier1s[1]),
            tier1s=tuple(st.tier1s),
            geant=st.geant,
            nrens=st.nrens,
            giants=tuple(giants),
            direct_peer_cdns=st.direct_peer_cdns,
            euroix=st.euroix,
            memberships=memberships,
            contributing=contributing,
            matrix=matrix,
            collector=collector,
            region_of=self.region_of,
            _contrib_index=st.contrib_index,
            _cones=cones,
            _static_policy=st.static_policy,
            _tier2_draws=self._tier2_draws,
            _stub_policy_codes=self._stub_policy_codes,
            _address_space=address_space,
            _contrib_arange=st.contrib_arange,
        )


def build_offload_views(
    configs: Sequence[OffloadWorldConfig],
) -> list[OffloadWorldView]:
    """Realize one world view per config, sharing statics per variant.

    The trial axis: configs differing only in ``seed`` share one
    :class:`_BatchStatics`; each seed then stacks its drawn arrays on the
    shared scaffold.  Each view is bit-identical to
    ``build_offload_world`` on the same config for everything the study
    measures read (the equivalence suite asserts memberships, traffic,
    cones, policies and address space).
    """
    statics: dict[str, _BatchStatics] = {}
    views: list[OffloadWorldView] = []
    resume_gc = gc.isenabled()
    if resume_gc:
        gc.disable()
    try:
        for config in configs:
            key = repr(replace(config, seed=0))
            shared = statics.get(key)
            if shared is None:
                shared = statics[key] = _build_statics(config)
            views.append(_BatchSeedBuilder(config, shared).build_view())
    finally:
        if resume_gc:
            gc.enable()
    return views
