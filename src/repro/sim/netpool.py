"""The global pool of networks that populate IXP memberships.

Networks differ in how many IXPs they join (Figure 4a shows IXP counts
from 1 to 18 with a heavy skew toward 1), what business they run
(Section 3.2: the remote peers include transit, access and hosting
networks), their advertised peering policy, and where they live.  The pool
generator encodes those distributions once so that the detection and
offload worlds draw from consistent populations.

Three generation engines produce the same distributions:

* ``"vectorized"`` (default) draws every attribute as one array over the
  whole pool — continent, city-within-continent, kind, policy,
  bicontinental coin + partner continent, address space, in that fixed
  order — so a 5,600-network pool costs a handful of numpy calls;
* ``"columnar"`` consumes the *identical* draws (both engines realize
  :func:`_draw_pool_columns`, so the lint-verified draw program is the
  same code object) but keeps the pool as struct-of-arrays columns — no
  per-network :class:`PooledNetwork` / ``AutonomousSystem`` objects are
  created until a caller explicitly materializes an index.  This is the
  backend the 10⁵–10⁶-network mega worlds are built on: a 1M-network
  pool is eight numpy arrays, not a million Python objects;
* ``"scalar"`` replays the seed implementation's per-network loop and is
  kept as the statistical reference.

``vectorized`` and ``columnar`` pools are bit-identical entry for entry
(``tests/test_sim_netpool.py`` pins it); the scalar engine consumes the
same seed in a different order, so it agrees in distribution only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.errors import ConfigurationError
from repro.geo.cities import City, CityDB
from repro.rand import make_rng
from repro.types import ASN, NetworkKind, PeeringPolicy

#: Continent mix of IXP-going networks: the studied IXPs are mostly
#: European, so the pool leans EU.
_CONTINENT_WEIGHTS = {
    "EU": 0.46,
    "NA": 0.18,
    "SA": 0.12,
    "AS": 0.18,
    "AF": 0.03,
    "OC": 0.03,
}

#: Business mix, loosely following PeeringDB's composition.
_KIND_WEIGHTS = {
    NetworkKind.ACCESS: 0.34,
    NetworkKind.TRANSIT: 0.16,
    NetworkKind.CONTENT: 0.14,
    NetworkKind.HOSTING: 0.16,
    NetworkKind.CDN: 0.05,
    NetworkKind.ENTERPRISE: 0.12,
    NetworkKind.NREN: 0.03,
}

#: Peering-policy mix (Lodhi et al., "Using PeeringDB...", CCR 2014 report
#: open policies dominating).
_POLICY_WEIGHTS = {
    PeeringPolicy.OPEN: 0.62,
    PeeringPolicy.SELECTIVE: 0.28,
    PeeringPolicy.RESTRICTIVE: 0.10,
}

#: Mean announced log2(address space) by business type.
_ADDRESS_SPACE_MEANS = {
    NetworkKind.ACCESS: 15.0,      # ~ a /17
    NetworkKind.TRANSIT: 16.0,
    NetworkKind.CONTENT: 12.0,
    NetworkKind.HOSTING: 13.0,
    NetworkKind.CDN: 14.0,
    NetworkKind.ENTERPRISE: 10.0,
    NetworkKind.NREN: 16.0,
}


@dataclass(frozen=True, slots=True)
class NetworkPoolConfig:
    """Knobs for pool generation."""

    size: int = 5600
    seed: int = 0
    first_asn: int = 10_000
    #: Zipf exponent of the "joins many IXPs" propensity.
    propensity_exponent: float = 0.66
    #: Fraction of networks whose scope spans every continent.
    global_scope_fraction: float = 0.04
    #: Fraction with a two-continent scope.
    bicontinental_fraction: float = 0.18
    #: ``"vectorized"`` (array draws, default), ``"columnar"`` (same
    #: draws, struct-of-arrays storage, lazy views) or ``"scalar"``
    #: (per-network reference loop).
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError("pool size must be positive")
        if self.first_asn <= 0:
            raise ConfigurationError("first ASN must be positive")
        if not 0 <= self.global_scope_fraction <= 1:
            raise ConfigurationError("fractions must be in [0, 1]")
        if self.engine not in ("vectorized", "scalar", "columnar"):
            raise ConfigurationError(f"unknown pool engine {self.engine!r}")


@dataclass(slots=True)
class PooledNetwork:
    """One pool entry: the AS plus its IXP-joining characteristics."""

    asys: AutonomousSystem
    propensity: float
    scope: frozenset[str]  # continent codes the network will peer in

    @property
    def asn(self) -> ASN:
        """ASN shortcut."""
        return self.asys.asn

    @property
    def home_city(self) -> City:
        """Home city shortcut (pool networks always have one)."""
        assert self.asys.home_city is not None
        return self.asys.home_city


@dataclass
class NetworkPool:
    """The generated pool, with sampling helpers for world builders."""

    networks: list[PooledNetwork]
    _by_asn: dict[ASN, PooledNetwork] = field(default_factory=dict)
    _eligible_cache: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_asn:
            self._by_asn = {n.asn: n for n in self.networks}

    def __len__(self) -> int:
        return len(self.networks)

    def get(self, asn: ASN) -> PooledNetwork:
        """Pool entry for ``asn``."""
        try:
            return self._by_asn[asn]
        except KeyError:
            raise ConfigurationError(f"AS{asn} not in pool") from None

    def eligible_for(self, continent: str) -> np.ndarray:
        """Indices (into ``networks``) whose scope includes ``continent``.

        Returns an ASN-sorted **index array**, not objects — at pool
        sizes in the 10⁵–10⁶ range the old ``list[PooledNetwork]``
        return was an O(n) object path on every continent filter.
        Pools are treated as immutable after generation, so the result
        is cached per continent (world builders ask once per IXP).
        Callers that want the entries themselves use
        :meth:`eligible_networks`.
        """
        cached = self._eligible_cache.get(continent)
        if cached is None:
            # Networks are generated in ascending-ASN order, so index
            # order *is* ASN order — same ordering the old object list
            # had after its sort.
            found = [
                i for i, n in enumerate(self.networks) if continent in n.scope
            ]
            cached = np.array(found, dtype=np.int64)
            self._eligible_cache[continent] = cached
        return cached

    def eligible_networks(self, continent: str) -> list[PooledNetwork]:
        """Compat shim over :meth:`eligible_for`: the entries, ASN-sorted."""
        return [self.networks[i] for i in self.eligible_for(continent)]

    def sample_members(
        self,
        rng: np.random.Generator,
        continent: str,
        count: int,
        exclude: set[ASN] | None = None,
        candidates: list[PooledNetwork] | None = None,
    ) -> list[PooledNetwork]:
        """Draw ``count`` distinct members for an IXP on ``continent``.

        Draws are propensity-weighted without replacement, so high-
        propensity networks recur across IXPs — that recurrence *is* the
        IXP-count distribution of Figure 4a.
        """
        if candidates is not None:
            pool = candidates
            if exclude:
                pool = [n for n in pool if n.asn not in exclude]
            if count > len(pool):
                raise ConfigurationError(
                    f"cannot draw {count} members from {len(pool)} "
                    "eligible networks"
                )
            weights = np.array([n.propensity for n in pool], dtype=float)
            idx = weighted_index_sample(rng, weights, count)
            return [pool[i] for i in idx]
        eligible = self.eligible_for(continent)
        if exclude:
            # Propensity (mutable on the objects) is read per call; only
            # the immutable ASN column is needed for the exclusion mask.
            keep = np.array(
                [self.networks[i].asn not in exclude for i in eligible]
            )
            eligible = eligible[keep]
        if count > len(eligible):
            raise ConfigurationError(
                f"cannot draw {count} members from {len(eligible)} "
                "eligible networks"
            )
        weights = np.array(
            [self.networks[i].propensity for i in eligible], dtype=float
        )
        idx = weighted_index_sample(rng, weights, count)
        return [self.networks[i] for i in eligible[idx]]


#: Continent order defining the scope bitmask bits of the columnar pool.
SCOPE_CONTINENTS: tuple[str, ...] = tuple(_CONTINENT_WEIGHTS)


@dataclass
class ColumnarNetworkPool:
    """Struct-of-arrays pool: the mega-scale backend.

    Holds the same population as a :class:`NetworkPool` generated with
    the vectorized engine — bit-identical draws — but as columns:

    * ``asn``            int64, ascending (``first_asn + arange``)
    * ``continent_idx``  index into :data:`SCOPE_CONTINENTS`
    * ``city_idx``       index into the continent's name-sorted city list
    * ``kind_idx`` / ``policy_idx``  indices into the weight-table orders
    * ``propensity``     float64 Zipf-by-rank weights
    * ``scope_mask``     uint8 bitmask over :data:`SCOPE_CONTINENTS`
    * ``address_space``  int64 announced IPv4 space

    No per-network Python object exists until :meth:`network` is called
    for an explicit index; world builders at the 10⁵–10⁶ scale never
    call it.  Sampling returns index arrays and consumes the exact
    draw stream of :meth:`NetworkPool.sample_members` over the same
    eligible sets, so small-n worlds agree bit-for-bit across backends.
    """

    config: NetworkPoolConfig
    asn: np.ndarray
    continent_idx: np.ndarray
    city_idx: np.ndarray
    kind_idx: np.ndarray
    policy_idx: np.ndarray
    propensity: np.ndarray
    scope_mask: np.ndarray
    address_space: np.ndarray
    cities_by_continent: dict[str, list[City]]
    _eligible_cache: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.asn)

    def eligible_for(self, continent: str) -> np.ndarray:
        """ASN-sorted indices whose scope covers ``continent`` (cached)."""
        cached = self._eligible_cache.get(continent)
        if cached is None:
            try:
                bit = 1 << SCOPE_CONTINENTS.index(continent)
            except ValueError:
                raise ConfigurationError(
                    f"unknown continent {continent!r}"
                ) from None
            cached = np.flatnonzero(self.scope_mask & bit).astype(np.int64)
            self._eligible_cache[continent] = cached
        return cached

    def sample_member_indices(
        self,
        rng: np.random.Generator,
        continent: str,
        count: int,
        exclude_asns: "set[ASN] | np.ndarray | None" = None,
    ) -> np.ndarray:
        """Index-array twin of :meth:`NetworkPool.sample_members`.

        Identical eligible set, identical weight vector, identical
        :func:`weighted_index_sample` call — so the consumed draws (and
        therefore the selected ASNs) match the object backend exactly.
        ``exclude_asns`` may be a set or an ASN array.
        """
        eligible = self.eligible_for(continent)
        if exclude_asns is not None and len(exclude_asns):
            banned = np.array(sorted(exclude_asns), dtype=np.int64)
            eligible = eligible[~np.isin(self.asn[eligible], banned)]
        if count > len(eligible):
            raise ConfigurationError(
                f"cannot draw {count} members from {len(eligible)} "
                "eligible networks"
            )
        weights = self.propensity[eligible]
        idx = weighted_index_sample(rng, weights, count)
        return eligible[idx]

    def scope_of(self, i: int) -> frozenset[str]:
        """The continent-code scope of entry ``i`` (decoded from the mask)."""
        mask = int(self.scope_mask[i])
        return frozenset(
            code for bit, code in enumerate(SCOPE_CONTINENTS)
            if mask & (1 << bit)
        )

    def network(self, i: int) -> PooledNetwork:
        """Materialize entry ``i`` as a :class:`PooledNetwork` on demand.

        The lazy index view: bit-identical to the object the vectorized
        engine would have built at the same position.
        """
        continent = SCOPE_CONTINENTS[int(self.continent_idx[i])]
        city = self.cities_by_continent[continent][int(self.city_idx[i])]
        kinds = list(_KIND_WEIGHTS)
        policies = list(_POLICY_WEIGHTS)
        return _make_network(
            asn=ASN(int(self.asn[i])),
            city=city,
            kind=kinds[int(self.kind_idx[i])],
            policy=policies[int(self.policy_idx[i])],
            propensity=float(self.propensity[i]),
            scope=self.scope_of(i),
            address_space=int(self.address_space[i]),
        )

    def materialize(self) -> NetworkPool:
        """Full object-backed pool (small-n equivalence tests only)."""
        return NetworkPool(
            networks=[self.network(i) for i in range(len(self))]
        )


def weighted_index_sample(
    rng: np.random.Generator,
    weights: np.ndarray,
    count: int,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """``count`` distinct draws from ``indices``, weighted by ``weights``.

    ``indices`` defaults to ``arange(len(weights))``; ``weights`` is
    aligned with it.  The draw law matches the scalar engines' one-at-a-
    time loop: positive-weight entries are drawn (weighted) before any
    zero-weight entry, zero-weight entries are drawn uniformly once the
    positives are exhausted, and an all-zero vector falls back to a fully
    uniform draw — a bare ``rng.choice(p=...)`` would produce NaN weights
    or raise when the positives are fewer than ``count``.
    """
    if indices is None:
        indices = np.arange(len(weights))
    total = weights.sum()
    if total <= 0:  # all zero: uniform
        return rng.choice(indices, size=count, replace=False)
    nonzero = indices[weights > 0]
    if count > len(nonzero):
        zeros = indices[weights <= 0]
        extra = rng.choice(zeros, size=count - len(nonzero), replace=False)
        return np.concatenate([nonzero, extra])
    return rng.choice(indices, size=count, replace=False, p=weights / total)


def _weighted_choice(rng: np.random.Generator, table: dict) -> object:
    keys = list(table.keys())
    weights = np.array([table[k] for k in keys], dtype=float)
    weights /= weights.sum()
    return keys[int(rng.choice(len(keys), p=weights))]


def generate_network_pool(
    city_db: CityDB, config: NetworkPoolConfig | None = None
) -> NetworkPool | ColumnarNetworkPool:
    """Generate the network pool deterministically from ``config.seed``."""
    config = config or NetworkPoolConfig()
    if config.engine == "scalar":
        return _generate_scalar(city_db, config)
    if config.engine == "columnar":
        return _draw_pool_columns(city_db, config)
    return _generate_vectorized(city_db, config)


def _make_network(
    asn: ASN,
    city: City,
    kind: NetworkKind,
    policy: PeeringPolicy,
    propensity: float,
    scope: frozenset[str],
    address_space: int,
) -> PooledNetwork:
    asys = AutonomousSystem(
        asn=asn,
        name=f"{kind}-{city.name.lower().replace(' ', '')}-{asn}",
        kind=kind,
        home_city=city,
        policy=policy,
        address_space=address_space,
    )
    return PooledNetwork(asys=asys, propensity=propensity, scope=scope)


def _draw_pool_columns(
    city_db: CityDB, config: NetworkPoolConfig
) -> ColumnarNetworkPool:
    """The shared array draw program: one draw per attribute over the pool.

    Draw order (fixed; see the module docstring): rank permutation,
    continent, city-within-continent, kind, policy, bicontinental coin,
    partner continent, address-space normal deviates.  Both the
    vectorized and the columnar engine realize this function, so their
    draw programs are one code object and parity is structural.
    """
    rng = make_rng(config.seed)
    size = config.size
    continents = list(_CONTINENT_WEIGHTS)
    continent_w = np.array([_CONTINENT_WEIGHTS[c] for c in continents])
    continent_w /= continent_w.sum()
    kinds = list(_KIND_WEIGHTS)
    kind_w = np.array([_KIND_WEIGHTS[k] for k in kinds], dtype=float)
    kind_w /= kind_w.sum()
    policies = list(_POLICY_WEIGHTS)
    policy_w = np.array([_POLICY_WEIGHTS[p] for p in policies], dtype=float)
    policy_w /= policy_w.sum()
    #: Name-sorted per-continent city lists — the same population the
    #: scalar engine's ``city_db.sample`` draws from uniformly.
    cities_by_continent = {c: city_db.by_continent(c) for c in continents}
    for continent, cities in cities_by_continent.items():
        if not cities:
            raise ConfigurationError(f"no cities on continent {continent!r}")

    ranks = rng.permutation(size)
    continent_idx = rng.choice(len(continents), size=size, p=continent_w)
    city_counts = np.array(
        [len(cities_by_continent[continents[i]]) for i in continent_idx]
    )
    city_idx = rng.integers(0, city_counts)
    kind_idx = rng.choice(len(kinds), size=size, p=kind_w)
    policy_idx = rng.choice(len(policies), size=size, p=policy_w)
    bicontinental = rng.random(size) < config.bicontinental_fraction
    other_idx = rng.choice(len(continents), size=size, p=continent_w)
    space_z = rng.normal(loc=0.0, scale=1.0, size=size)

    propensity = (1.0 + ranks) ** (-config.propensity_exponent)
    means = np.array([_ADDRESS_SPACE_MEANS[kinds[i]] for i in kind_idx])
    log2_size = np.clip(means + 1.5 * space_z, 8.0, 22.0)
    address_space = (2.0**log2_size).astype(np.int64)

    # Scope as a bitmask over SCOPE_CONTINENTS: all bits for the global
    # top ranks, home|partner for bicontinentals, home otherwise.
    top_global = int(config.global_scope_fraction * size)
    home_bit = np.left_shift(1, continent_idx).astype(np.uint8)
    other_bit = np.left_shift(1, other_idx).astype(np.uint8)
    scope_mask = np.where(bicontinental, home_bit | other_bit, home_bit)
    scope_mask = np.where(
        ranks < top_global,
        np.uint8((1 << len(continents)) - 1),
        scope_mask,
    ).astype(np.uint8)

    return ColumnarNetworkPool(
        config=config,
        asn=config.first_asn + np.arange(size, dtype=np.int64),
        continent_idx=continent_idx.astype(np.int16),
        city_idx=city_idx.astype(np.int32),
        kind_idx=kind_idx.astype(np.int16),
        policy_idx=policy_idx.astype(np.int16),
        propensity=propensity,
        scope_mask=scope_mask,
        address_space=address_space,
        cities_by_continent=cities_by_continent,
    )


def _generate_vectorized(
    city_db: CityDB, config: NetworkPoolConfig
) -> NetworkPool:
    """Array-draw engine: the columnar draws, materialized as objects."""
    columns = _draw_pool_columns(city_db, config)
    networks = [columns.network(i) for i in range(len(columns))]
    return NetworkPool(networks=networks)


def _generate_scalar(city_db: CityDB, config: NetworkPoolConfig) -> NetworkPool:
    """Per-network loop engine: the seed implementation, kept as reference."""
    rng = make_rng(config.seed)
    continents = list(_CONTINENT_WEIGHTS)
    continent_w = np.array([_CONTINENT_WEIGHTS[c] for c in continents])
    continent_w /= continent_w.sum()

    # Propensity is assigned by rank: shuffle ranks so ASN order carries no
    # information, then weight rank r as (r+1)^-exponent.
    ranks = rng.permutation(config.size)
    networks: list[PooledNetwork] = []
    for i in range(config.size):
        continent = str(_weighted_choice(rng, _CONTINENT_WEIGHTS))
        city = city_db.sample(rng, 1, continent=continent)[0]
        kind = _weighted_choice(rng, _KIND_WEIGHTS)
        policy = _weighted_choice(rng, _POLICY_WEIGHTS)
        propensity = float((1 + ranks[i]) ** (-config.propensity_exponent))
        scope = _draw_scope(rng, continent, ranks[i], config, continents, continent_w)
        networks.append(
            _make_network(
                asn=ASN(config.first_asn + i),
                city=city,
                kind=kind,  # type: ignore[arg-type]
                policy=policy,  # type: ignore[arg-type]
                propensity=propensity,
                scope=scope,
                address_space=_draw_address_space(rng, kind),  # type: ignore[arg-type]
            )
        )
    return NetworkPool(networks=networks)


def _draw_scope(
    rng: np.random.Generator,
    home_continent: str,
    rank: int,
    config: NetworkPoolConfig,
    continents: list[str],
    continent_w: np.ndarray,
) -> frozenset[str]:
    """Continental scope: highest-propensity networks go global."""
    top_global = int(config.global_scope_fraction * config.size)
    if rank < top_global:
        return frozenset(continents)
    if rng.random() < config.bicontinental_fraction:
        other = continents[int(rng.choice(len(continents), p=continent_w))]
        return frozenset({home_continent, other})
    return frozenset({home_continent})


def _draw_address_space(rng: np.random.Generator, kind: NetworkKind) -> int:
    """Announced IPv4 space by business type (log-normal within type)."""
    log2_size = rng.normal(loc=_ADDRESS_SPACE_MEANS[kind], scale=1.5)
    log2_size = float(np.clip(log2_size, 8.0, 22.0))
    return int(2 ** log2_size)
