"""The global pool of networks that populate IXP memberships.

Networks differ in how many IXPs they join (Figure 4a shows IXP counts
from 1 to 18 with a heavy skew toward 1), what business they run
(Section 3.2: the remote peers include transit, access and hosting
networks), their advertised peering policy, and where they live.  The pool
generator encodes those distributions once so that the detection and
offload worlds draw from consistent populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asys import AutonomousSystem
from repro.errors import ConfigurationError
from repro.geo.cities import City, CityDB
from repro.rand import make_rng
from repro.types import ASN, NetworkKind, PeeringPolicy

#: Continent mix of IXP-going networks: the studied IXPs are mostly
#: European, so the pool leans EU.
_CONTINENT_WEIGHTS = {
    "EU": 0.46,
    "NA": 0.18,
    "SA": 0.12,
    "AS": 0.18,
    "AF": 0.03,
    "OC": 0.03,
}

#: Business mix, loosely following PeeringDB's composition.
_KIND_WEIGHTS = {
    NetworkKind.ACCESS: 0.34,
    NetworkKind.TRANSIT: 0.16,
    NetworkKind.CONTENT: 0.14,
    NetworkKind.HOSTING: 0.16,
    NetworkKind.CDN: 0.05,
    NetworkKind.ENTERPRISE: 0.12,
    NetworkKind.NREN: 0.03,
}

#: Peering-policy mix (Lodhi et al., "Using PeeringDB...", CCR 2014 report
#: open policies dominating).
_POLICY_WEIGHTS = {
    PeeringPolicy.OPEN: 0.62,
    PeeringPolicy.SELECTIVE: 0.28,
    PeeringPolicy.RESTRICTIVE: 0.10,
}


@dataclass(frozen=True, slots=True)
class NetworkPoolConfig:
    """Knobs for pool generation."""

    size: int = 5600
    seed: int = 0
    first_asn: int = 10_000
    #: Zipf exponent of the "joins many IXPs" propensity.
    propensity_exponent: float = 0.66
    #: Fraction of networks whose scope spans every continent.
    global_scope_fraction: float = 0.04
    #: Fraction with a two-continent scope.
    bicontinental_fraction: float = 0.18

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError("pool size must be positive")
        if self.first_asn <= 0:
            raise ConfigurationError("first ASN must be positive")
        if not 0 <= self.global_scope_fraction <= 1:
            raise ConfigurationError("fractions must be in [0, 1]")


@dataclass(slots=True)
class PooledNetwork:
    """One pool entry: the AS plus its IXP-joining characteristics."""

    asys: AutonomousSystem
    propensity: float
    scope: frozenset[str]  # continent codes the network will peer in

    @property
    def asn(self) -> ASN:
        """ASN shortcut."""
        return self.asys.asn

    @property
    def home_city(self) -> City:
        """Home city shortcut (pool networks always have one)."""
        assert self.asys.home_city is not None
        return self.asys.home_city


@dataclass
class NetworkPool:
    """The generated pool, with sampling helpers for world builders."""

    networks: list[PooledNetwork]
    _by_asn: dict[ASN, PooledNetwork] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_asn:
            self._by_asn = {n.asn: n for n in self.networks}

    def __len__(self) -> int:
        return len(self.networks)

    def get(self, asn: ASN) -> PooledNetwork:
        """Pool entry for ``asn``."""
        try:
            return self._by_asn[asn]
        except KeyError:
            raise ConfigurationError(f"AS{asn} not in pool") from None

    def eligible_for(self, continent: str) -> list[PooledNetwork]:
        """Networks whose scope includes ``continent``, ASN-sorted."""
        found = [n for n in self.networks if continent in n.scope]
        return sorted(found, key=lambda n: n.asn)

    def sample_members(
        self,
        rng: np.random.Generator,
        continent: str,
        count: int,
        exclude: set[ASN] | None = None,
        candidates: list[PooledNetwork] | None = None,
    ) -> list[PooledNetwork]:
        """Draw ``count`` distinct members for an IXP on ``continent``.

        Draws are propensity-weighted without replacement, so high-
        propensity networks recur across IXPs — that recurrence *is* the
        IXP-count distribution of Figure 4a.
        """
        pool = candidates if candidates is not None else self.eligible_for(continent)
        if exclude:
            pool = [n for n in pool if n.asn not in exclude]
        if count > len(pool):
            raise ConfigurationError(
                f"cannot draw {count} members from {len(pool)} eligible networks"
            )
        weights = np.array([n.propensity for n in pool], dtype=float)
        weights /= weights.sum()
        idx = rng.choice(len(pool), size=count, replace=False, p=weights)
        return [pool[i] for i in idx]


def _weighted_choice(rng: np.random.Generator, table: dict) -> object:
    keys = list(table.keys())
    weights = np.array([table[k] for k in keys], dtype=float)
    weights /= weights.sum()
    return keys[int(rng.choice(len(keys), p=weights))]


def generate_network_pool(
    city_db: CityDB, config: NetworkPoolConfig | None = None
) -> NetworkPool:
    """Generate the network pool deterministically from ``config.seed``."""
    config = config or NetworkPoolConfig()
    rng = make_rng(config.seed)
    continents = list(_CONTINENT_WEIGHTS)
    continent_w = np.array([_CONTINENT_WEIGHTS[c] for c in continents])
    continent_w /= continent_w.sum()

    # Propensity is assigned by rank: shuffle ranks so ASN order carries no
    # information, then weight rank r as (r+1)^-exponent.
    ranks = rng.permutation(config.size)
    networks: list[PooledNetwork] = []
    for i in range(config.size):
        asn = ASN(config.first_asn + i)
        continent = str(_weighted_choice(rng, _CONTINENT_WEIGHTS))
        city = city_db.sample(rng, 1, continent=continent)[0]
        kind = _weighted_choice(rng, _KIND_WEIGHTS)
        policy = _weighted_choice(rng, _POLICY_WEIGHTS)
        propensity = float((1 + ranks[i]) ** (-config.propensity_exponent))
        scope = _draw_scope(rng, continent, ranks[i], config, continents, continent_w)
        asys = AutonomousSystem(
            asn=asn,
            name=f"{kind}-{city.name.lower().replace(' ', '')}-{asn}",
            kind=kind,  # type: ignore[arg-type]
            home_city=city,
            policy=policy,  # type: ignore[arg-type]
            address_space=_draw_address_space(rng, kind),  # type: ignore[arg-type]
        )
        networks.append(PooledNetwork(asys=asys, propensity=propensity, scope=scope))
    return NetworkPool(networks=networks)


def _draw_scope(
    rng: np.random.Generator,
    home_continent: str,
    rank: int,
    config: NetworkPoolConfig,
    continents: list[str],
    continent_w: np.ndarray,
) -> frozenset[str]:
    """Continental scope: highest-propensity networks go global."""
    top_global = int(config.global_scope_fraction * config.size)
    if rank < top_global:
        return frozenset(continents)
    if rng.random() < config.bicontinental_fraction:
        other = continents[int(rng.choice(len(continents), p=continent_w))]
        return frozenset({home_continent, other})
    return frozenset({home_continent})


def _draw_address_space(rng: np.random.Generator, kind: NetworkKind) -> int:
    """Announced IPv4 space by business type (log-normal within type)."""
    means = {
        NetworkKind.ACCESS: 15.0,      # ~ a /17
        NetworkKind.TRANSIT: 16.0,
        NetworkKind.CONTENT: 12.0,
        NetworkKind.HOSTING: 13.0,
        NetworkKind.CDN: 14.0,
        NetworkKind.ENTERPRISE: 10.0,
        NetworkKind.NREN: 16.0,
    }
    log2_size = rng.normal(loc=means[kind], scale=1.5)
    log2_size = float(np.clip(log2_size, 8.0, 22.0))
    return int(2 ** log2_size)
