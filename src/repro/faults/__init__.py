"""Deterministic fault injection: timed chaos for campaigns and billing.

The paper's risk argument is dynamic — a remote peer is one pseudowire
away from falling back to transit, and 95th-percentile billing is exactly
the metric that punishes transient failover bursts (Section 5); Nomikos
et al. further show real remote-peering inference must survive noisy,
flapping measurement conditions.  This package turns those dynamics into
reproducible inputs: a :class:`FaultSchedule` of timed, seeded events
(pseudowire dark windows, IXP port flaps, looking-glass outages,
rate-limit storms, probe-loss bursts) drawn from the repo's named child
RNG streams, plus the deterministic retry/backoff planner campaigns use
to complete under LG outages.

Fault streams (see :mod:`repro.rand` for the discipline):

* ``(seed, "faults", "pseudowire-dark", ixp, address)`` — dark windows
  per remote interface (transit-fallback RTT while dark);
* ``(seed, "faults", "port-flap", ixp, address)`` — hard-down windows
  per candidate interface;
* ``(seed, "faults", "lg-outage", server)`` / ``(seed, "faults",
  "rate-limit-storm", server)`` — unavailability windows per LG server;
* ``(seed, "faults", "probe-loss", ixp)`` — loss bursts per IXP LAN;
* ``(seed, "faults", "backoff", ixp, operator)`` — the retry planner's
  jitter draws (consumed identically by the scalar and batch probe
  engines, so retry counts agree bit-for-bit across engines).
"""

from repro.faults.retry import RetryPlan, RetryPolicy, plan_retries
from repro.faults.schedule import (
    FAULT_KINDS,
    LG_OUTAGE,
    PORT_FLAP,
    PROBE_LOSS,
    PSEUDOWIRE_DARK,
    RATE_LIMIT_STORM,
    FaultConfig,
    FaultEvent,
    FaultSchedule,
    ProbeFaults,
    build_fault_schedule,
    draw_windows,
    merge_windows,
    window_mask,
    window_overlap_fractions,
)

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultEvent",
    "FaultSchedule",
    "LG_OUTAGE",
    "PORT_FLAP",
    "PROBE_LOSS",
    "PSEUDOWIRE_DARK",
    "ProbeFaults",
    "RATE_LIMIT_STORM",
    "RetryPlan",
    "RetryPolicy",
    "build_fault_schedule",
    "draw_windows",
    "merge_windows",
    "plan_retries",
    "window_mask",
    "window_overlap_fractions",
]
