"""Deterministic bounded retry with exponential backoff.

A looking-glass outage or rate-limit storm makes a query slot fail; the
client retries with exponential backoff until an attempt lands outside
the outage or the attempt budget is exhausted.  The planner is *pure*:
given the planned query times, an availability predicate and one
dedicated RNG stream it computes every slot's effective send time,
attempt count and served/dropped verdict in a single vectorized pass —
so the scalar and batch probe engines, which share the stream and call
it with identical inputs, produce bit-identical retry plans.

The jitter draw has a *fixed shape* — ``(slots, max_attempts - 1)``
uniforms regardless of how many slots actually retry — which is what
makes the plan independent of the outage pattern's sparsity and therefore
reproducible across engines and resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MINUTE


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff for one query slot.

    ``timeout_s`` is how long an unanswered attempt blocks before the
    client declares it failed (modeled, not slept).  The worst-case
    cumulative backoff (every attempt used, maximum jitter) must stay
    within one minute so retried queries never spill into the next
    per-server rate-limit slot — the politeness ledger validates the
    *planned* schedule, and this bound keeps the effective one inside it.
    """

    max_attempts: int = 4
    base_backoff_s: float = 2.0
    backoff_multiplier: float = 2.0
    max_jitter_s: float = 1.0
    timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_backoff_s < 0 or self.max_jitter_s < 0:
            raise ConfigurationError("backoff and jitter cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.worst_case_delay_s() > MINUTE:
            raise ConfigurationError(
                "worst-case cumulative backoff exceeds the one-minute "
                "query slot; lower max_attempts or the backoff terms"
            )

    def backoffs_s(self) -> np.ndarray:
        """Deterministic backoff before each retry (len max_attempts-1)."""
        exponents = np.arange(self.max_attempts - 1, dtype=float)
        return self.base_backoff_s * self.backoff_multiplier ** exponents

    def worst_case_delay_s(self) -> float:
        """Latest possible offset of the final attempt from the slot."""
        retries = self.max_attempts - 1
        return float(self.backoffs_s().sum()) + retries * self.max_jitter_s


@dataclass(frozen=True, slots=True)
class RetryPlan:
    """The planner's verdict for every query slot, in slot order."""

    effective_s: np.ndarray  # float[n]: send time of the winning attempt
    served: np.ndarray       # bool[n]: False when every attempt hit an outage
    attempts: np.ndarray     # int[n] >= 1: attempts consumed (incl. success)

    @property
    def retries(self) -> int:
        """Total extra attempts beyond the first, across all slots."""
        return int((self.attempts - 1).sum())

    @property
    def dropped(self) -> int:
        """Slots whose every attempt landed inside an outage."""
        return int((~self.served).sum())


def plan_retries(
    times_s: np.ndarray,
    unavailable: Callable[[np.ndarray], np.ndarray],
    policy: RetryPolicy,
    rng: np.random.Generator,
) -> RetryPlan:
    """Plan every slot's retry chain against an availability predicate.

    ``times_s`` holds the planned query times (1-D, slot order);
    ``unavailable(times)`` returns a same-shaped boolean mask that is True
    when the server cannot answer at those instants.  The first attempt
    fires at the planned time; each retry waits the policy's exponential
    backoff plus a jittered delay drawn from ``rng``.  A slot whose every
    attempt is unavailable is *dropped* (served=False); its effective time
    is the final attempt's, which is when the client gave up.
    """
    times = np.asarray(times_s, dtype=float).ravel()
    n = times.size
    retries = policy.max_attempts - 1
    # Fixed-shape draw: exactly (n, retries) uniforms regardless of how
    # many slots retry, so the plan is a pure function of (times, stream).
    jitter = (
        rng.random((n, retries)) * policy.max_jitter_s
        if retries
        else np.zeros((n, 0))
    )
    delays = policy.backoffs_s()[None, :] + jitter
    offsets = np.concatenate(
        [np.zeros((n, 1)), np.cumsum(delays, axis=1)], axis=1
    )
    attempt_times = times[:, None] + offsets
    up = ~np.asarray(unavailable(attempt_times), dtype=bool)
    first_up = np.argmax(up, axis=1)
    served = up.any(axis=1)
    attempts = np.where(served, first_up + 1, policy.max_attempts)
    winner = np.where(served, first_up, policy.max_attempts - 1)
    effective = attempt_times[np.arange(n), winner]
    return RetryPlan(
        effective_s=effective,
        served=served,
        attempts=attempts.astype(np.int64),
    )
