"""Seeded fault schedules: timed chaos windows over a campaign.

Every fault is a *window* — an interval of sim time during which some
component misbehaves — drawn from a dedicated child RNG stream, so a
schedule is a pure function of ``(seed, FaultConfig, world)``.  Window
counts follow a Poisson law in the event rate, starts are uniform over
the span, and durations are exponential; the ``duration_scale`` knob is
applied *after* drawing, so on a fixed seed scaling it up only stretches
the same windows — unions grow monotonically, which is what makes the
failover scenario's billing error provably monotone in dark-window
duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.layer2.failover import FailoverState
from repro.rand import child_rng
from repro.units import DAY, FIVE_MINUTES, HOUR, MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.detection_world import DetectionWorld

PSEUDOWIRE_DARK = "pseudowire-dark"
PORT_FLAP = "port-flap"
LG_OUTAGE = "lg-outage"
RATE_LIMIT_STORM = "rate-limit-storm"
PROBE_LOSS = "probe-loss"

FAULT_KINDS = (
    PSEUDOWIRE_DARK,
    PORT_FLAP,
    LG_OUTAGE,
    RATE_LIMIT_STORM,
    PROBE_LOSS,
)

#: Shared empty window set — a valid (even-length, sorted) edge array.
_NO_EDGES = np.zeros(0)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One timed fault, for reporting and event-trace assertions."""

    kind: str
    ixp: str
    target: str  # interface address, LG server name, or LAN acronym
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Knobs for fault generation.  Rates are events per 30 days.

    ``intensity`` scales every event *rate* together (0 disables all
    faults); ``duration_scale`` stretches every drawn *duration* without
    re-drawing starts or counts, so sweeping it on a fixed seed yields
    nested window unions.
    """

    intensity: float = 1.0
    duration_scale: float = 1.0
    #: Pseudowire dark windows per remote interface (transit fallback).
    dark_rate: float = 0.4
    dark_mean_s: float = 4 * HOUR
    #: Hard port flaps per candidate interface (no replies while down).
    flap_rate: float = 1.2
    flap_mean_s: float = 2 * MINUTE
    #: Looking-glass outages per server (queries fail, retries fire).
    lg_outage_rate: float = 1.0
    lg_outage_mean_s: float = 45 * MINUTE
    #: Rate-limit storms per server (indistinguishable from outages to
    #: the client: the query slot fails and the retry planner takes over).
    storm_rate: float = 2.0
    storm_mean_s: float = 5 * MINUTE
    #: Probe-loss bursts per IXP LAN, degrading response probability.
    loss_rate: float = 3.0
    loss_mean_s: float = 20 * MINUTE
    #: Fraction of response probability removed inside a loss burst.
    loss_severity: float = 0.75
    #: Transit-detour RTT while dark: base RTT is multiplied by this ...
    fallback_rtt_factor: float = 2.2
    #: ... plus a flat per-hop penalty for the longer AS path.
    fallback_extra_ms: float = 8.0
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        if self.intensity < 0 or self.duration_scale < 0:
            raise ConfigurationError(
                "intensity and duration_scale cannot be negative"
            )
        rates = (self.dark_rate, self.flap_rate, self.lg_outage_rate,
                 self.storm_rate, self.loss_rate)
        means = (self.dark_mean_s, self.flap_mean_s, self.lg_outage_mean_s,
                 self.storm_mean_s, self.loss_mean_s)
        if any(r < 0 for r in rates) or any(m <= 0 for m in means):
            raise ConfigurationError(
                "fault rates must be >= 0 and mean durations > 0"
            )
        if not 0.0 <= self.loss_severity <= 1.0:
            raise ConfigurationError("loss_severity must be in [0, 1]")
        if self.fallback_rtt_factor < 1.0 or self.fallback_extra_ms < 0:
            raise ConfigurationError(
                "fallback penalty must not shorten the path"
            )

    @property
    def active(self) -> bool:
        """Whether this config can produce any fault at all."""
        return self.intensity > 0


def merge_windows(starts_s: np.ndarray, durations_s: np.ndarray) -> np.ndarray:
    """Merge possibly-overlapping windows into flat sorted edges.

    Returns ``[s0, e0, s1, e1, ...]`` with disjoint, sorted intervals;
    membership is then a single ``searchsorted`` parity test
    (:func:`window_mask`).  Zero-length windows vanish.
    """
    starts = np.asarray(starts_s, dtype=float)
    durs = np.asarray(durations_s, dtype=float)
    if starts.shape != durs.shape:
        raise ConfigurationError("starts and durations must align")
    keep = durs > 0
    starts, durs = starts[keep], durs[keep]
    if starts.size == 0:
        return _NO_EDGES
    order = np.argsort(starts, kind="stable")
    starts, ends = starts[order], (starts + durs)[order]
    edges: list[float] = []
    cur_start, cur_end = float(starts[0]), float(ends[0])
    for s, e in zip(starts[1:], ends[1:]):
        if s <= cur_end:
            cur_end = max(cur_end, float(e))
        else:
            edges.extend((cur_start, cur_end))
            cur_start, cur_end = float(s), float(e)
    edges.extend((cur_start, cur_end))
    return np.asarray(edges)


def window_mask(edges: np.ndarray, times_s: np.ndarray) -> np.ndarray:
    """True where ``times_s`` falls inside any window (parity test)."""
    times = np.asarray(times_s, dtype=float)
    if edges.size == 0:
        return np.zeros(times.shape, dtype=bool)
    return np.searchsorted(edges, times, side="right") % 2 == 1


def draw_windows(
    rng: np.random.Generator,
    rate_per_month: float,
    mean_duration_s: float,
    span_s: float,
    intensity: float = 1.0,
    duration_scale: float = 1.0,
) -> np.ndarray:
    """Draw one component's fault windows as merged flat edges.

    Count ~ Poisson(rate x intensity x span/30d), starts uniform over the
    span, durations exponential with the given mean.  ``duration_scale``
    multiplies durations *after* the draw, so scale sweeps on one seed
    share counts and starts and only stretch the windows (clipped to the
    span) — the resulting unions are nested across scales.
    """
    expected = rate_per_month * intensity * span_s / (30 * DAY)
    if expected <= 0:
        return _NO_EDGES
    count = int(rng.poisson(expected))
    starts = rng.uniform(0.0, span_s, size=count)
    durations = rng.exponential(mean_duration_s, size=count) * duration_scale
    ends = np.minimum(starts + durations, span_s)
    return merge_windows(starts, ends - starts)


def window_overlap_fractions(
    edges: np.ndarray, bin_count: int, bin_s: float = FIVE_MINUTES
) -> np.ndarray:
    """Per-bin fraction of each time bin covered by the windows.

    Bin ``i`` spans ``[i*bin_s, (i+1)*bin_s)``.  Computed from the
    coverage primitive ``covered(t)`` (total window time in ``[0, t]``),
    which is exact — no sampling — so scaling windows up can only raise
    every bin's fraction.
    """
    if bin_count < 0:
        raise ConfigurationError("bin_count cannot be negative")
    bounds = np.arange(bin_count + 1, dtype=float) * bin_s
    if edges.size == 0:
        return np.zeros(bin_count)
    starts, ends = edges[0::2], edges[1::2]
    cumdur = np.concatenate([[0.0], np.cumsum(ends - starts)])
    # Windows fully ended by each boundary, plus the partial current one.
    done = np.searchsorted(ends, bounds, side="right")
    covered = cumdur[done]
    partial_idx = np.minimum(done, starts.size - 1)
    partial = np.clip(
        bounds - starts[partial_idx],
        0.0,
        (ends - starts)[partial_idx],
    )
    covered = covered + np.where(done < starts.size, partial, 0.0)
    # Clip the float residue: a fully-covered bin must be exactly 1.0 so
    # downstream fallback series never exceed their offload component.
    return np.clip(np.diff(covered) / bin_s, 0.0, 1.0)


@dataclass(frozen=True, slots=True)
class ProbeFaults:
    """The probe-path slice of a schedule for one IXP LAN.

    Passed into the LG server / batch sweep engines alongside the world
    (never stored on it).  ``flap_edges`` is keyed by interface address
    value; ``failover`` carries the dark windows and transit penalties.
    """

    loss_edges: np.ndarray = field(default_factory=lambda: _NO_EDGES)
    loss_severity: float = 0.0
    flap_edges: dict[int, np.ndarray] = field(default_factory=dict)
    failover: FailoverState = FailoverState()


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """Every fault window of one campaign, fully materialized.

    All window sets are merged flat edge arrays (see
    :func:`merge_windows`).  ``server_down`` is the per-server union of
    LG outages and rate-limit storms — the client cannot tell them
    apart, it only sees failed query slots.
    """

    span_s: float
    config: FaultConfig
    failover: FailoverState = FailoverState()
    #: acronym -> address value -> hard-down windows.
    flaps: dict[str, dict[int, np.ndarray]] = field(default_factory=dict)
    #: acronym -> LAN-wide probe-loss burst windows.
    loss: dict[str, np.ndarray] = field(default_factory=dict)
    #: LG server name -> merged outage+storm windows.
    server_down: dict[str, np.ndarray] = field(default_factory=dict)
    events: tuple[FaultEvent, ...] = ()

    def probe_faults(self, acronym: str) -> ProbeFaults:
        """The probe-path fault slice for one IXP's sweeps."""
        return ProbeFaults(
            loss_edges=self.loss.get(acronym, _NO_EDGES),
            loss_severity=self.config.loss_severity,
            flap_edges=self.flaps.get(acronym, {}),
            failover=self.failover,
        )

    def server_down_fn(self, name: str) -> Callable[[np.ndarray], np.ndarray]:
        """Availability predicate for one LG server (for the retry planner)."""
        edges = self.server_down.get(name, _NO_EDGES)
        return lambda times_s: window_mask(edges, times_s)

    def events_of_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind == kind)


def _edge_events(
    kind: str, ixp: str, target: str, edges: np.ndarray
) -> list[FaultEvent]:
    return [
        FaultEvent(kind=kind, ixp=ixp, target=target,
                   start_s=float(edges[i]), end_s=float(edges[i + 1]))
        for i in range(0, edges.size, 2)
    ]


def build_fault_schedule(
    config: FaultConfig, seed: int, world: "DetectionWorld"
) -> FaultSchedule:
    """Materialize a world's fault schedule from its dedicated streams.

    Iteration is over *sorted* keys, and each component draws from its own
    ``(seed, "faults", kind, ...)`` stream, so the schedule is identical
    regardless of world build engine or iteration quirks — and adding a
    fault kind never perturbs the others.
    """
    span = world.window.duration_s
    if not config.active:
        return FaultSchedule(span_s=span, config=config)
    events: list[FaultEvent] = []
    failover_windows: dict[int, tuple[np.ndarray, float]] = {}
    flaps: dict[str, dict[int, np.ndarray]] = {}
    loss: dict[str, np.ndarray] = {}
    server_down: dict[str, np.ndarray] = {}

    for acronym in sorted(world.ixps):
        edges = draw_windows(
            child_rng(seed, "faults", PROBE_LOSS, acronym),
            config.loss_rate, config.loss_mean_s, span,
            config.intensity, config.duration_scale,
        )
        if edges.size:
            loss[acronym] = edges
            events += _edge_events(PROBE_LOSS, acronym, acronym, edges)

    for acronym in sorted(world.lg_servers):
        for server in world.lg_servers[acronym]:
            outages = draw_windows(
                child_rng(seed, "faults", LG_OUTAGE, server.name),
                config.lg_outage_rate, config.lg_outage_mean_s, span,
                config.intensity, config.duration_scale,
            )
            storms = draw_windows(
                child_rng(seed, "faults", RATE_LIMIT_STORM, server.name),
                config.storm_rate, config.storm_mean_s, span,
                config.intensity, config.duration_scale,
            )
            events += _edge_events(LG_OUTAGE, acronym, server.name, outages)
            events += _edge_events(
                RATE_LIMIT_STORM, acronym, server.name, storms
            )
            merged = merge_windows(
                np.concatenate([outages[0::2], storms[0::2]]),
                np.concatenate(
                    [outages[1::2] - outages[0::2],
                     storms[1::2] - storms[0::2]]
                ),
            )
            if merged.size:
                server_down[server.name] = merged

    for (acronym, addr_value) in sorted(world.truth):
        truth = world.truth[(acronym, addr_value)]
        flap_edges = draw_windows(
            child_rng(seed, "faults", PORT_FLAP, acronym, addr_value),
            config.flap_rate, config.flap_mean_s, span,
            config.intensity, config.duration_scale,
        )
        if flap_edges.size:
            flaps.setdefault(acronym, {})[addr_value] = flap_edges
            events += _edge_events(
                PORT_FLAP, acronym, str(truth.address), flap_edges
            )
        if truth.is_remote and truth.on_lan:
            dark_edges = draw_windows(
                child_rng(seed, "faults", PSEUDOWIRE_DARK, acronym,
                          addr_value),
                config.dark_rate, config.dark_mean_s, span,
                config.intensity, config.duration_scale,
            )
            if dark_edges.size:
                extra_ms = (
                    truth.base_rtt_ms * (config.fallback_rtt_factor - 1.0)
                    + config.fallback_extra_ms
                )
                failover_windows[addr_value] = (dark_edges, extra_ms)
                events += _edge_events(
                    PSEUDOWIRE_DARK, acronym, str(truth.address), dark_edges
                )

    events.sort(key=lambda e: (e.start_s, e.kind, e.ixp, e.target))
    return FaultSchedule(
        span_s=span,
        config=config,
        failover=FailoverState(windows=failover_windows),
        flaps=flaps,
        loss=loss,
        server_down=server_down,
        events=tuple(events),
    )
