"""Command-line entry points: ``repro-detect``, ``repro-offload``,
``repro-econ``, ``repro-ensemble``, ``repro-offload-ensemble`` — and the
``repro <command>`` dispatcher that fronts them all.

Each command builds the corresponding synthetic world, runs the study, and
prints the paper-shaped report as plain text.  The unified multi-seed
front end is ``repro study detection|offload|economics|joint``: every
study runs on the shared engine (seed × grid expansion, per-variant world
caching, process-pool fan-out, resumable ``--out`` artifacts).
``detection`` and ``offload`` are the Section 3/4 ensembles (``repro
ensemble`` and ``repro offload-ensemble`` are their long-standing
aliases, byte-for-byte identical reports); ``economics`` chains
Sections 3+4+5 — measured offload curve → decay fit → 95th-percentile
billing → eq. 14 viability vote — across seeds; ``joint`` replays each
seed's measured detection confusion onto the offload world's peer map
and prices the oracle-vs-detected gap.  ``repro scenarios list|run``
fronts the scenario library (:mod:`repro.experiments.scenarios`): the
ROADMAP's scenario backlog as named presets.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import render_table
from repro.core.detection import CampaignConfig, ProbeCampaign
from repro.core.detection.classify import BAND_LABELS
from repro.core.economics import (
    CostModel,
    CostParameters,
    fit_exponential_decay,
    viability_condition,
)
from repro.core.offload import (
    GROUP_LABELS,
    OffloadEstimator,
    PeerGroups,
    greedy_expansion,
)
from repro.ixp.catalog import paper_catalog
from repro.sim import (
    DetectionWorldConfig,
    OffloadWorldConfig,
    build_detection_world,
    build_offload_world,
)
from repro.units import format_rate


def detect_main(argv: list[str] | None = None) -> int:
    """Run the Section 3 detection study and print per-IXP findings."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Ping-based detection of remote peering at the 22 "
        "studied IXPs (synthetic world).",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed")
    parser.add_argument(
        "--threshold-ms", type=float, default=10.0,
        help="remoteness threshold (paper: 10 ms)",
    )
    parser.add_argument(
        "--ixps", nargs="*", default=None,
        help="restrict to these IXP acronyms (default: all 22)",
    )
    args = parser.parse_args(argv)

    specs = paper_catalog()
    if args.ixps:
        specs = tuple(s for s in specs if s.acronym in set(args.ixps))
        if not specs:
            parser.error("no matching IXPs")
    world = build_detection_world(
        DetectionWorldConfig(seed=args.seed, specs=specs)
    )
    config = CampaignConfig(
        seed=args.seed, remoteness_threshold_ms=args.threshold_ms
    )
    result = ProbeCampaign(world, config).run()

    bands = result.band_counts_by_ixp()
    rows = []
    for acronym in sorted(bands):
        counts = bands[acronym]
        remote = sum(v for k, v in counts.items() if k != "<10ms")
        rows.append([acronym, *(counts[label] for label in BAND_LABELS), remote])
    print(render_table(
        ["IXP", *BAND_LABELS, "remote"],
        rows,
        title="Analyzed interfaces by minimum-RTT band",
    ))
    print()
    print(f"analyzed interfaces : {result.analyzed_count()}")
    print(f"identified networks : {len(result.identified_networks())}")
    print(f"remotely peering    : {len(result.remotely_peering_networks())}")
    print(f"IXPs with remote peering: "
          f"{len(result.ixps_with_remote_peering())}/{len(result.studied_ixps())} "
          f"({result.remote_spread_fraction():.0%})")
    return 0


def offload_main(argv: list[str] | None = None) -> int:
    """Run the Section 4 offload study and print the greedy expansion."""
    parser = argparse.ArgumentParser(
        prog="repro-offload",
        description="Transit-offload potential of a RedIRIS-like NREN over "
        "the 65 Euro-IX IXPs (synthetic world).",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed")
    parser.add_argument(
        "--group", type=int, default=4, choices=(1, 2, 3, 4),
        help="peer group (paper Section 4.2)",
    )
    parser.add_argument(
        "--max-ixps", type=int, default=10, help="greedy expansion depth"
    )
    args = parser.parse_args(argv)

    world = build_offload_world(OffloadWorldConfig(seed=args.seed))
    estimator = OffloadEstimator(world, PeerGroups.build(world))
    all_ixps = estimator.reachable_ixps()
    fi, fo = estimator.offload_fractions(all_ixps, args.group)
    print(f"peer group {args.group} ({GROUP_LABELS[args.group]})")
    print(f"candidates after exclusions: {estimator.groups.candidate_count()}")
    print(f"max offload at {len(all_ixps)} IXPs: "
          f"inbound {fi:.1%}, outbound {fo:.1%}")
    print()
    rows = []
    for step in greedy_expansion(estimator, args.group, max_ixps=args.max_ixps):
        rows.append([
            step.rank,
            step.ixp,
            format_rate(step.gained_total_bps),
            format_rate(step.remaining_total_bps),
        ])
    print(render_table(
        ["#", "IXP", "gained", "remaining transit"],
        rows,
        title="Greedy IXP expansion",
    ))
    return 0


def report_main(argv: list[str] | None = None) -> int:
    """Run every study and write one combined plain-text report."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Run the detection, offload, and economics studies and "
        "write a combined report.",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed")
    parser.add_argument(
        "--output", "-o", default="-",
        help="output file (default: stdout)",
    )
    parser.add_argument(
        "--small", action="store_true",
        help="use the small scenarios (seconds instead of ~20 s)",
    )
    args = parser.parse_args(argv)

    from repro.core.detection import CampaignConfig, ProbeCampaign
    from repro.reporting import (
        detection_report,
        economics_report,
        offload_report,
    )
    from repro.sim import scenarios

    world = scenarios.mini3(args.seed) if args.small else scenarios.paper22(args.seed)
    result = ProbeCampaign(world, CampaignConfig(seed=args.seed)).run()
    offload_world = (
        scenarios.rediris_small(args.seed) if args.small
        else scenarios.rediris(args.seed)
    )
    estimator = OffloadEstimator(offload_world, PeerGroups.build(offload_world))

    divider = "\n\n" + "=" * 72 + "\n\n"
    text = divider.join([
        detection_report(world, result),
        offload_report(estimator),
        economics_report(estimator),
    ])
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    return 0


def econ_main(argv: list[str] | None = None) -> int:
    """Evaluate the Section 5 viability condition for given prices."""
    parser = argparse.ArgumentParser(
        prog="repro-econ",
        description="Economic viability of remote peering vs transit and "
        "direct peering (paper eq. 14).",
    )
    parser.add_argument("--transit-price", "-p", type=float, default=5.0)
    parser.add_argument("--direct-fixed", "-g", type=float, default=1.0)
    parser.add_argument("--direct-unit", "-u", type=float, default=0.5)
    parser.add_argument("--remote-fixed", "-H", type=float, default=0.25)
    parser.add_argument("--remote-unit", "-v", type=float, default=1.5)
    parser.add_argument(
        "--decay", "-b", type=float, default=None,
        help="transit decay rate b; default: fit it from the offload world",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    b = args.decay
    if b is None:
        import numpy as np

        from repro.core.offload import remaining_traffic_series

        world = build_offload_world(OffloadWorldConfig(seed=args.seed))
        estimator = OffloadEstimator(world, PeerGroups.build(world))
        series = remaining_traffic_series(estimator, 4, max_ixps=20)
        fit = fit_exponential_decay(np.array(series))
        b = fit.rate
        print(f"fitted b = {b:.3f} from the offload world "
              f"(floor {fit.floor:.0%} of traffic stays on transit)")
    params = CostParameters(
        p=args.transit_price, g=args.direct_fixed, u=args.direct_unit,
        h=args.remote_fixed, v=args.remote_unit, b=b,
    )
    model = CostModel(params)
    verdict = viability_condition(params)
    print(f"optimal direct-peering IXPs  ñ = {model.optimal_direct():.2f}")
    print(f"optimal remote extension     m̃ = {model.optimal_remote_extra():.2f}")
    print(f"viability ratio g(p-v)/(h(p-u)) = {verdict.ratio:.2f} "
          f"vs e^b = {verdict.threshold:.2f}")
    print(f"remote peering viable: {'YES' if verdict.viable else 'NO'}")
    return 0


def ensemble_main(argv: list[str] | None = None) -> int:
    """Run a multi-seed (optionally multi-config) detection ensemble."""
    parser = argparse.ArgumentParser(
        prog="repro-ensemble",
        description="Multi-seed ensemble of the detection study: "
        "mean ± 95% CI for precision, recall, per-filter discards and "
        "per-IXP remote fractions.",
    )
    parser.add_argument(
        "--scenario", choices=("mini3", "paper22"), default="mini3",
        help="world to replicate (default: the fast 3-IXP mini world)",
    )
    parser.add_argument(
        "--ixps", nargs="*", default=None,
        help="override the scenario with these IXP acronyms",
    )
    parser.add_argument(
        "--seeds", type=int, default=16,
        help="number of trial seeds (default: 16)",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="first seed (seeds are offset..offset+N-1)",
    )
    parser.add_argument(
        "--threshold-ms", type=float, nargs="*", default=None,
        help="remoteness threshold grid (default: just 10 ms)",
    )
    parser.add_argument(
        "--engine", choices=("vectorized", "scalar"), default="vectorized",
        help="world-builder engine (default: vectorized)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="trial processes (0 = one per core, 1 = inline)",
    )
    parser.add_argument(
        "--trial-batch", type=int, default=1,
        help="seeds per trial batch (results are bit-identical per seed; "
        ">1 groups same-variant seeds and suspends GC per group)",
    )
    parser.add_argument(
        "--per-ixp", action="store_true",
        help="also print per-IXP detected remote fractions",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: completed trials are written as JSONL "
        "and skipped on rerun (resumable ensembles)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    if args.trial_batch < 1:
        parser.error("--trial-batch must be at least 1")
    if args.threshold_ms and any(t <= 0 for t in args.threshold_ms):
        parser.error("--threshold-ms values must be positive")

    from repro.experiments import (
        EnsembleConfig,
        grid_variants,
        render_ensemble_report,
        run_ensemble,
    )
    from repro.sim.scenarios import detection_preset_specs

    if args.ixps:
        from repro.errors import ConfigurationError
        from repro.ixp.catalog import spec_by_acronym

        try:
            # Resolve each name individually so typos fail loudly instead
            # of silently shrinking the ensemble.
            specs = tuple(spec_by_acronym(name) for name in dict.fromkeys(args.ixps))
        except ConfigurationError as error:
            parser.error(str(error))
    else:
        specs = detection_preset_specs(args.scenario)
    world = DetectionWorldConfig(specs=specs, engine=args.engine)
    axes = {}
    if args.threshold_ms:
        # Dedup: repeated values would produce same-named variants.
        axes["campaign.remoteness_threshold_ms"] = tuple(
            dict.fromkeys(args.threshold_ms)
        )
    config = EnsembleConfig(
        seeds=tuple(range(args.seed_offset, args.seed_offset + args.seeds)),
        variants=grid_variants(world=world, axes=axes),
        workers=args.workers,
        trial_batch=args.trial_batch,
    )
    result = run_ensemble(config, out_dir=args.out)
    print(render_ensemble_report(result, per_ixp=args.per_ixp))
    return 0


def offload_ensemble_main(argv: list[str] | None = None) -> int:
    """Run a multi-seed (optionally multi-config) offload ensemble."""
    parser = argparse.ArgumentParser(
        prog="repro-offload-ensemble",
        description="Multi-seed ensemble of the Section 4 offload study: "
        "mean ± 95% CI offload fractions, offloadable-network counts and "
        "the greedy IXP expansion consensus across seeds × config grid.",
    )
    parser.add_argument(
        "--scenario", choices=("small", "paper65"), default="paper65",
        help="world scale: the full 29,570-network paper world (default) "
        "or the ~3k-network small world",
    )
    parser.add_argument(
        "--seeds", type=int, default=16,
        help="number of trial seeds (default: 16)",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="first seed (seeds are offset..offset+N-1)",
    )
    parser.add_argument(
        "--groups", type=int, nargs="*", default=(4,), choices=(1, 2, 3, 4),
        help="peer groups to study (default: group 4)",
    )
    parser.add_argument(
        "--member-tier2-fraction", type=float, nargs="*", default=None,
        help="grid axis over OffloadWorldConfig.member_tier2_fraction",
    )
    parser.add_argument(
        "--tier1-only-stub-fraction", type=float, nargs="*", default=None,
        help="grid axis over OffloadWorldConfig.tier1_only_stub_fraction",
    )
    parser.add_argument(
        "--max-ixps", type=int, default=8, help="greedy expansion depth"
    )
    parser.add_argument(
        "--engine", choices=("vectorized", "scalar"), default="vectorized",
        help="offload-world engine (default: vectorized)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="trial processes (0 = one per core, 1 = inline)",
    )
    parser.add_argument(
        "--trial-batch", type=int, default=1,
        help="seeds per trial batch: >1 realizes same-variant seed "
        "batches as one array program (bit-identical per seed, "
        "several times faster at paper scale)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: completed trials are written as JSONL "
        "and skipped on rerun (resumable ensembles)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    if args.trial_batch < 1:
        parser.error("--trial-batch must be at least 1")
    if args.max_ixps < 1:
        parser.error("--max-ixps must be at least 1")
    if not args.groups:
        parser.error("--groups needs at least one group")

    from repro.experiments import (
        OffloadEnsembleConfig,
        offload_grid_variants,
        render_offload_ensemble_report,
        run_offload_ensemble,
    )
    from repro.sim.scenarios import offload_preset_config

    world = offload_preset_config(args.scenario, engine=args.engine)
    axes = {}
    if args.member_tier2_fraction:
        axes["world.member_tier2_fraction"] = tuple(
            dict.fromkeys(args.member_tier2_fraction)
        )
    if args.tier1_only_stub_fraction:
        axes["world.tier1_only_stub_fraction"] = tuple(
            dict.fromkeys(args.tier1_only_stub_fraction)
        )
    from repro.errors import ConfigurationError

    try:
        # Grid values feed straight into OffloadWorldConfig validation;
        # surface bad fractions as argparse errors, not tracebacks.
        config = OffloadEnsembleConfig(
            seeds=tuple(range(args.seed_offset, args.seed_offset + args.seeds)),
            variants=offload_grid_variants(
                world=world,
                axes=axes,
                groups=tuple(dict.fromkeys(args.groups)),
                max_ixps=args.max_ixps,
            ),
            workers=args.workers,
            trial_batch=args.trial_batch,
        )
    except ConfigurationError as error:
        parser.error(str(error))
    result = run_offload_ensemble(config, out_dir=args.out)
    print(render_offload_ensemble_report(result))
    return 0


def economics_study_main(argv: list[str] | None = None) -> int:
    """Run the Sections 3+4+5 economics ensemble: savings CIs + eq. 14 vote."""
    parser = argparse.ArgumentParser(
        prog="repro-study-economics",
        description="Multi-seed ensemble of the end-to-end economics "
        "pipeline: per-seed offload world -> measured decay fit -> "
        "95th-percentile billing -> eq. 14 viability; reports mean ± 95% "
        "CI transit-bill savings and the viability vote across seeds.",
    )
    parser.add_argument(
        "--scenario", choices=("small", "paper65"), default="small",
        help="world scale: the ~3k-network small world (default, seconds) "
        "or the full 29,570-network paper world",
    )
    parser.add_argument(
        "--seeds", type=int, default=16,
        help="number of trial seeds (default: 16)",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="first seed (seeds are offset..offset+N-1)",
    )
    parser.add_argument(
        "--group", type=int, default=4, choices=(1, 2, 3, 4),
        help="peer group (paper Section 4.2; default: 4)",
    )
    parser.add_argument(
        "--max-ixps", type=int, default=20,
        help="depth of the fitted remaining-traffic series (default: 20)",
    )
    parser.add_argument("--transit-price", "-p", type=float, default=5.0)
    parser.add_argument("--direct-fixed", "-g", type=float, default=1.0)
    parser.add_argument("--direct-unit", "-u", type=float, default=0.5)
    parser.add_argument("--remote-fixed", "-H", type=float, default=0.25)
    parser.add_argument("--remote-unit", "-v", type=float, default=1.5)
    parser.add_argument(
        "--price-per-mbps", type=float, default=1.0,
        help="billing price for the NetFlow 95th-percentile bill",
    )
    parser.add_argument(
        "--engine", choices=("vectorized", "scalar"), default="vectorized",
        help="offload-world engine (default: vectorized)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="trial processes (0 = one per core, 1 = inline)",
    )
    parser.add_argument(
        "--trial-batch", type=int, default=1,
        help="seeds per trial batch: >1 realizes same-variant seed "
        "batches as one array program (bit-identical per seed)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: completed trials are written as JSONL "
        "and skipped on rerun (resumable ensembles)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    if args.trial_batch < 1:
        parser.error("--trial-batch must be at least 1")

    from repro.errors import ConfigurationError, EconomicsError
    from repro.experiments import (
        EconomicsEnsembleConfig,
        EconomicsVariant,
        render_economics_ensemble_report,
        run_economics_ensemble,
    )
    from repro.sim.scenarios import offload_preset_config

    try:
        config = EconomicsEnsembleConfig(
            seeds=tuple(range(args.seed_offset, args.seed_offset + args.seeds)),
            variants=(
                EconomicsVariant(
                    name=args.scenario,
                    world=offload_preset_config(
                        args.scenario, engine=args.engine
                    ),
                    group=args.group,
                    max_ixps=args.max_ixps,
                    transit_price=args.transit_price,
                    direct_fixed=args.direct_fixed,
                    direct_unit=args.direct_unit,
                    remote_fixed=args.remote_fixed,
                    remote_unit=args.remote_unit,
                    price_per_mbps=args.price_per_mbps,
                ),
            ),
            workers=args.workers,
            trial_batch=args.trial_batch,
        )
    except (ConfigurationError, EconomicsError) as error:
        parser.error(str(error))
    result = run_economics_ensemble(config, out_dir=args.out)
    print(render_economics_ensemble_report(result))
    return 0


def joint_study_main(argv: list[str] | None = None) -> int:
    """Run the joint detection→offload ensemble: gap + billing error CIs."""
    parser = argparse.ArgumentParser(
        prog="repro-study-joint",
        description="Multi-seed joint detection->offload study: per seed, "
        "run the Section 3 campaign, replay its measured confusion onto "
        "the offload world's peer map, and feed the *detected* remote-peer "
        "set into the offload estimator and the 95th-percentile bill; "
        "reports mean ± 95% CI precision/recall, the offload fraction via "
        "the detected set, the oracle-vs-detected gap, and billing savings.",
    )
    parser.add_argument(
        "--preset", choices=("small", "paper"), default="small",
        help="world family: mini3 detection + ~3k-AS offload world "
        "(default, seconds) or the full paper-scale pair",
    )
    parser.add_argument(
        "--seeds", type=int, default=16,
        help="number of trial seeds (default: 16)",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="first seed (seeds are offset..offset+N-1)",
    )
    parser.add_argument(
        "--group", type=int, default=4, choices=(1, 2, 3, 4),
        help="peer group (paper Section 4.2; default: 4)",
    )
    parser.add_argument(
        "--remote-fraction", type=float, default=None,
        help="oracle remote share of candidate members (default: the "
        "detection world's measured ground-truth remote fraction)",
    )
    parser.add_argument(
        "--price-per-mbps", type=float, default=1.0,
        help="billing price for the NetFlow 95th-percentile bill",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="trial processes (0 = one per core, 1 = inline)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: completed trials are written as JSONL "
        "and skipped on rerun (resumable ensembles)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.workers < 0:
        parser.error("--workers cannot be negative")

    from repro.errors import ConfigurationError
    from repro.experiments import (
        JointEnsembleConfig,
        JointVariant,
        render_joint_ensemble_report,
        run_joint_ensemble,
    )
    from repro.sim.scenarios import joint_preset_configs

    try:
        detection_world, offload_world = joint_preset_configs(args.preset)
        config = JointEnsembleConfig(
            seeds=tuple(range(args.seed_offset,
                              args.seed_offset + args.seeds)),
            variants=(
                JointVariant(
                    name=args.preset,
                    detection_world=detection_world,
                    offload_world=offload_world,
                    group=args.group,
                    remote_fraction=args.remote_fraction,
                    price_per_mbps=args.price_per_mbps,
                ),
            ),
            workers=args.workers,
        )
    except ConfigurationError as error:
        parser.error(str(error))
    result = run_joint_ensemble(config, out_dir=args.out)
    print(render_joint_ensemble_report(result))
    return 0


def mega_study_main(argv: list[str] | None = None) -> int:
    """Run the mega-scale Euro-IX expansion study (10⁵+ network worlds)."""
    parser = argparse.ArgumentParser(
        prog="repro-study-mega",
        description="Multi-seed mega-scale expansion study: a CAIDA-style "
        "tiered world over a columnar 10⁵+-network pool and the full "
        "Euro-IX catalog, dispatched to workers over zero-copy "
        "shared-memory transport; reports mean ± 95% CI covered-traffic "
        "fractions and the greedy IXP expansion.",
    )
    parser.add_argument(
        "--scenario", choices=("mega-smoke", "mega"), default="mega-smoke",
        help="world scale: the ~20k-network CI smoke world (default) or "
        "the 100k-network mega world",
    )
    parser.add_argument(
        "--seeds", type=int, default=4,
        help="number of trial seeds (default: 4)",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="first seed (seeds are offset..offset+N-1)",
    )
    parser.add_argument(
        "--max-ixps", type=int, default=8, help="greedy expansion depth"
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="trial processes (0 = one per core, 1 = inline)",
    )
    parser.add_argument(
        "--transport", choices=("shm", "pickle"), default="shm",
        help="world transport to workers: zero-copy shared-memory "
        "segments (default) or per-group pickling",
    )
    parser.add_argument(
        "--strict-transport", action="store_true",
        help="fail (exit 1) if any trial fell back from shared-memory "
        "to pickle transport",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: completed trials are written as JSONL "
        "and skipped on rerun (resumable studies)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    if args.max_ixps < 1:
        parser.error("--max-ixps must be at least 1")

    from repro.errors import ConfigurationError
    from repro.experiments import MegaStudy, MegaVariant
    from repro.experiments.engine import StudyConfig, run_study
    from repro.sim.scenarios import mega_preset_config

    try:
        study = MegaStudy(
            variants=(
                MegaVariant(
                    name=args.scenario,
                    world=mega_preset_config(args.scenario),
                    max_ixps=args.max_ixps,
                ),
            ),
        )
        config = StudyConfig(
            seeds=tuple(range(args.seed_offset, args.seed_offset + args.seeds)),
            workers=args.workers,
            out_dir=args.out,
            transport=args.transport,
        )
    except ConfigurationError as error:
        parser.error(str(error))
    result = run_study(study, config)

    def _pct(ci) -> str:
        if ci is None:
            return "n/a"
        return f"{ci.mean:.1%} ± {ci.half_width:.1%}"

    rows = []
    for variant in study.variant_names():
        stats = result.streaming.get(variant, {})
        covered = stats.get("covered_fraction")
        five = stats.get("five_ixp_share")
        members = stats.get("covered_networks")
        rows.append([
            variant,
            _pct(covered),
            _pct(five),
            "n/a" if members is None else f"{members.mean:,.0f}",
        ])
    trials = len(result.trials) + len(result.failures)
    print(render_table(
        ["variant", "covered traffic", "5-IXP share", "covered networks"],
        rows,
        title=(
            f"Mega expansion: {trials} trials "
            f"({len(study.variants)} variant(s) x {args.seeds} seed(s), "
            f"{result.wall_s:.1f} s wall, transport={args.transport})"
        ),
    ))
    if result.trials:
        first = result.trials[0]
        print(
            f"\nWorld: {first.network_count:,} networks, "
            f"{first.member_total:,} IXP memberships "
            f"(build {first.build_s:.2f} s, trial {first.study_s:.2f} s)."
        )
        print("Greedy expansion (seed "
              f"{first.seed}): {' -> '.join(first.expansion)}")
    note = result.coverage_note()
    if note:
        print(f"\nNote: {note}")
    if args.strict_transport and result.transport_fallbacks:
        print(
            f"error: --strict-transport set and {result.transport_fallbacks} "
            "trial(s) fell back to pickle transport",
            file=sys.stderr,
        )
        return 1
    return 0


def lint_main(argv: list[str] | None = None) -> int:
    """``repro lint`` — the determinism & draw-stream static analysis.

    Lazy import: the devtools package is developer tooling and must not
    slow down study start-up.
    """
    from repro.devtools.lint.cli import lint_main as run_lint

    return run_lint(argv)


def serve_main(argv: list[str] | None = None) -> int:
    """``repro serve`` — the study engine as a long-running HTTP service.

    Lazy import: the serve package spins up scheduler threads and an
    asyncio loop, none of which belongs in study start-up.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve studies over HTTP: POST /studies submits a "
        "declarative study request onto a priority job queue, GET "
        "/studies/{id}?watch=1 streams progress, and repeated identical "
        "submissions are answered from the content-addressed result "
        "store without recomputing a single trial.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address",
    )
    parser.add_argument(
        "--port", type=int, default=8072,
        help="TCP port (0 = ephemeral; default: 8072)",
    )
    parser.add_argument(
        "--store", default="runs/store", metavar="DIR",
        help="content-addressed artifact store + job journal "
        "(default: runs/store)",
    )
    parser.add_argument(
        "--threads", type=int, default=2,
        help="concurrent studies (each may fan out its own trial "
        "processes; default: 2)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the end-to-end service smoke (ephemeral port, temp "
        "store) and exit 0 on success instead of serving",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        from repro.serve.smoke import run_smoke

        return run_smoke()
    if args.threads < 1:
        parser.error("--threads must be at least 1")
    from repro.serve import serve

    return serve(
        host=args.host, port=args.port, store_dir=args.store,
        threads=args.threads,
    )


def scenarios_main(argv: list[str] | None = None) -> int:
    """``repro scenarios list|run <name>`` — the scenario-library front end."""
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="Named, parameterized study grids: the ROADMAP's "
        "scenario backlog as runnable presets on the study engine.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("list", help="show every registered scenario")
    runner = sub.add_parser("run", help="run one scenario preset")
    runner.add_argument("name", help="scenario name (see `scenarios list`)")
    runner.add_argument(
        "--preset", choices=("small", "paper"), default="small",
        help="world scale (default: small, seconds; paper = full scale)",
    )
    runner.add_argument(
        "--seeds", type=int, default=16,
        help="number of trial seeds (default: 16)",
    )
    runner.add_argument(
        "--seed-offset", type=int, default=0,
        help="first seed (seeds are offset..offset+N-1)",
    )
    runner.add_argument(
        "--workers", type=int, default=0,
        help="trial processes (0 = one per core, 1 = inline)",
    )
    runner.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: completed trials are written as JSONL "
        "and skipped on rerun (resumable ensembles)",
    )
    args = parser.parse_args(argv)

    from repro.errors import ConfigurationError
    from repro.experiments.scenarios import SCENARIOS, get_scenario

    if args.action == "list":
        rows = []
        for scenario in SCENARIOS.values():
            run = scenario.build(preset="small", seeds=(0,))
            rows.append([
                scenario.name,
                scenario.study_kind,
                len(run.study.variant_names()),
                scenario.description,
            ])
        print(render_table(
            ["scenario", "study", "variants", "description"],
            rows,
            title="Scenario library (presets: small, paper)",
        ))
        return 0

    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    try:
        run = get_scenario(args.name).build(
            preset=args.preset,
            seeds=tuple(range(args.seed_offset,
                              args.seed_offset + args.seeds)),
            workers=args.workers,
        )
    except ConfigurationError as error:
        parser.error(str(error))
    _, report = run.execute(args.out)
    print(report)
    return 0


#: The ``repro study`` sub-dispatcher: one entry point per study kind.
#: ``detection`` and ``offload`` are the existing ensemble commands (so
#: their reports are byte-identical to ``repro ensemble`` /
#: ``repro offload-ensemble`` on the same arguments); ``economics`` is
#: the Sections 3+4+5 pipeline; ``joint`` chains detection into offload
#: and billing with the measured confusion replayed onto the peer map.
_STUDIES = {}  # populated below (after the mains are defined)


def study_main(argv: list[str] | None = None) -> int:
    """``repro study <kind> [args...]`` — the unified study front end."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Run a multi-seed study: detection (Section 3), "
        "offload (Section 4), economics (Sections 3+4+5) or joint (the "
        "detection->offload->billing chain with measured detection errors "
        "propagated into the peer map).  All studies share the engine's "
        "seed grids, world caching, parallelism and resumable --out "
        "artifacts.",
    )
    parser.add_argument("kind", choices=sorted(_STUDIES))
    parser.add_argument("args", nargs=argparse.REMAINDER)
    parsed = parser.parse_args(argv)
    return _STUDIES[parsed.kind](parsed.args)


#: Subcommands of the ``repro`` dispatcher.
_COMMANDS = {
    "detect": detect_main,
    "offload": offload_main,
    "offload-ensemble": offload_ensemble_main,
    "econ": econ_main,
    "report": report_main,
    "ensemble": ensemble_main,
    "scenarios": scenarios_main,
    "serve": serve_main,
    "study": study_main,
    "lint": lint_main,
}

_STUDIES.update({
    "detection": ensemble_main,
    "offload": offload_ensemble_main,
    "economics": economics_study_main,
    "joint": joint_study_main,
    "mega": mega_study_main,
})


def main(argv: list[str] | None = None) -> int:
    """``repro <command> [args...]`` — dispatch to the study entry points."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remote-peering reproduction studies.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("args", nargs=argparse.REMAINDER)
    parsed = parser.parse_args(argv)
    return _COMMANDS[parsed.command](parsed.args)


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
