"""Looking-glass servers and the rate-limited client that drives them.

The campaign's vantage points: PCH and RIPE NCC operate LG servers at IXP
locations; an HTML query triggers 5 (PCH) or 3 (RIPE) pings from inside
the IXP subnet (Section 3.1).
"""

from repro.lg.server import LookingGlassServer, OffLanTarget, PCH_PINGS, RIPE_PINGS
from repro.lg.client import LookingGlassClient, QueryResult
from repro.lg.batch import ProbePlan, compile_probe_plan, run_sweeps

__all__ = [
    "LookingGlassServer",
    "OffLanTarget",
    "PCH_PINGS",
    "RIPE_PINGS",
    "LookingGlassClient",
    "QueryResult",
    "ProbePlan",
    "compile_probe_plan",
    "run_sweeps",
]
