"""Vectorized batch probe engine for looking-glass sweep campaigns.

The scalar path (:meth:`LookingGlassServer.query`) simulates one probe per
Python call — fine for interactive queries, far too slow for the
four-month campaign's ~300k probes.  This module compiles each
(LG server x target list) sweep into a numpy *probe plan* and realizes
every round's stochastic components as array draws.

Array layout
------------
A :class:`ProbePlan` holds one row per target, in sweep order (index ``j``
below).  All static per-(server, target) quantities are 1-D arrays of
length ``N = len(addresses)``:

* ``base_rtt_ms[j]``   — deterministic path RTT: port tails + switch
  crossing + inter-site backhaul + this operator's LAG/ECMP bias for
  on-LAN targets; the off-LAN detour RTT for stale registry entries.
* ``respond_prob[j]``, ``processing_ms[j]`` — the answering device's ICMP
  behaviour (blackholing probability, slow-path mean).
* ``ttl_init[j]``, ``ttl_after[j]``, ``os_change_s[j]`` — reply-TTL
  schedule; ``os_change_s`` is ``+inf`` when the device never changes OS.
* ``extra_hops[j]``    — IP hops the reply crosses outside the LAN.
* ``reachable[j]``     — False when the address is published but answers
  nowhere (probes time out).

Congestion is *grouped*: targets sharing a congestion process are listed
once under that process, so the common ``NoCongestion`` case costs
nothing and each distinct process does one vectorized draw per sweep.

Execution (:func:`run_sweeps`) broadcasts the plan over ``R`` rounds and
``P`` pings per query into ``(R, N, P)`` arrays — probe send times follow
the campaign discipline exactly (queries one minute apart within a round,
pings one second apart within a query).  Stochastic components are drawn
in a fixed, documented order from the per-(seed, ixp, operator) stream
(see :mod:`repro.rand`): queueing jitter, then each congestion group in
plan order, then response loss, then slow-path processing.  The result is
one struct-of-arrays :class:`ReplyBatch` per target instead of ~300k
:class:`EchoReply` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.delaymodel.congestion import CongestionProcess, NoCongestion
from repro.delaymodel.jitter import JitterModel
from repro.lg.server import LookingGlassServer
from repro.net.addr import IPv4Address
from repro.net.icmp import ReplyBatch
from repro.units import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.schedule import ProbeFaults


@dataclass(slots=True)
class ProbePlan:
    """A compiled (LG server x target list) sweep: all static quantities."""

    server_name: str
    operator: str
    pings_per_query: int
    addresses: list[IPv4Address]
    reachable: np.ndarray      # bool[N]
    base_rtt_ms: np.ndarray    # float[N]
    respond_prob: np.ndarray   # float[N]
    processing_ms: np.ndarray  # float[N]
    ttl_init: np.ndarray       # int[N]
    ttl_after: np.ndarray      # int[N]
    os_change_s: np.ndarray    # float[N], +inf when the OS never changes
    extra_hops: np.ndarray     # int[N]
    #: (process, target indices) pairs: the LG port's own process first
    #: (if any), then target-port processes in first-seen target order.
    #: A target index never repeats inside one group, so fancy-indexed
    #: accumulation applies every endpoint's contribution.
    congestion_groups: list[tuple[CongestionProcess, np.ndarray]]
    jitter: JitterModel

    def __len__(self) -> int:
        return len(self.addresses)


def compile_probe_plan(
    server: LookingGlassServer, addresses: list[IPv4Address]
) -> ProbePlan:
    """Compile the static per-target arrays for one server's sweep."""
    n = len(addresses)
    reachable = np.zeros(n, dtype=bool)
    base_rtt = np.zeros(n, dtype=float)
    respond_prob = np.zeros(n, dtype=float)
    processing = np.zeros(n, dtype=float)
    ttl_init = np.ones(n, dtype=np.int64)
    ttl_after = np.ones(n, dtype=np.int64)
    os_change = np.full(n, np.inf)
    extra_hops = np.zeros(n, dtype=np.int64)
    # The LG port's own congestion gets a dedicated group (it applies to
    # every on-LAN target); target-port processes are grouped by value.
    # Keeping the two endpoints in separate groups guarantees a target
    # index never repeats inside one group's fancy index, so each endpoint
    # contributes its own independent draw — matching the scalar path even
    # when both ports carry equal-valued processes.
    lg_indices: list[int] = []
    group_indices: dict[CongestionProcess, list[int]] = {}

    fabric = server.fabric
    lg_congestion = server.port.profile.congestion
    for j, address in enumerate(addresses):
        if fabric.has_address(address):
            port = fabric.port_for(address)
            device = port.interface.device
            base_rtt[j] = fabric.base_path_rtt_ms(
                server.port, port
            ) + port.operator_bias.get(server.operator, 0.0)
            extra_hops[j] = device.reply_extra_hops
            if not isinstance(lg_congestion, NoCongestion):
                lg_indices.append(j)
            if not isinstance(port.profile.congestion, NoCongestion):
                group_indices.setdefault(port.profile.congestion, []).append(j)
        else:
            offlan = server.offlan_targets.get(address.value)
            if offlan is None:
                continue  # published but unreachable: every probe times out
            device = offlan.device
            base_rtt[j] = offlan.base_rtt_ms
            extra_hops[j] = offlan.extra_hops
        reachable[j] = True
        respond_prob[j] = device.respond_probability
        processing[j] = device.processing_ms
        ttl_init[j] = device.ttl_init
        if device.ttl_after_change is not None:
            ttl_after[j] = device.ttl_after_change
            os_change[j] = device.os_change_time
        else:
            ttl_after[j] = device.ttl_init

    return ProbePlan(
        server_name=server.name,
        operator=server.operator,
        pings_per_query=server.pings_per_query,
        addresses=list(addresses),
        reachable=reachable,
        base_rtt_ms=base_rtt,
        respond_prob=respond_prob,
        processing_ms=processing,
        ttl_init=ttl_init,
        ttl_after=ttl_after,
        os_change_s=os_change,
        extra_hops=extra_hops,
        congestion_groups=(
            [(lg_congestion, np.array(lg_indices, dtype=np.intp))]
            if lg_indices
            else []
        )
        + [
            (process, np.array(indices, dtype=np.intp))
            for process, indices in group_indices.items()
        ],
        jitter=fabric.jitter,
    )


def sweep_query_times(plan: ProbePlan, starts: np.ndarray) -> np.ndarray:
    """Per-round query times, ``(R, N)``: one query per target per minute."""
    starts = np.asarray(starts, dtype=float)
    return starts[:, None] + np.arange(len(plan), dtype=float)[None, :] * MINUTE


@dataclass(slots=True)
class SweepFaults:
    """A probe-fault slice compiled against one plan's target order.

    The schedule keys faults by interface address; a sweep works in plan
    index space.  Compiling once per sweep keeps :func:`run_sweeps` free
    of dict lookups — and every fault application below is *draw-free*
    (masks and addends over already-drawn arrays), so a faulted sweep
    consumes exactly the same RNG draws as a clean one.
    """

    loss_edges: np.ndarray          # merged flat edges, possibly empty
    loss_severity: float
    flap_by_index: dict[int, np.ndarray]
    dark_by_index: dict[int, tuple[np.ndarray, float]]


def compile_sweep_faults(
    plan: ProbePlan, faults: "ProbeFaults"
) -> SweepFaults:
    """Re-key one IXP's :class:`ProbeFaults` by plan target index."""
    flap_by_index: dict[int, np.ndarray] = {}
    dark_by_index: dict[int, tuple[np.ndarray, float]] = {}
    for j, address in enumerate(plan.addresses):
        flap_edges = faults.flap_edges.get(address.value)
        if flap_edges is not None and flap_edges.size:
            flap_by_index[j] = flap_edges
        dark = faults.failover.windows.get(address.value)
        if dark is not None and dark[0].size:
            dark_by_index[j] = dark
    return SweepFaults(
        loss_edges=faults.loss_edges,
        loss_severity=faults.loss_severity,
        flap_by_index=flap_by_index,
        dark_by_index=dark_by_index,
    )


def _edge_mask(edges: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Vectorized membership test against merged flat window edges."""
    return np.searchsorted(edges, times, side="right") % 2 == 1


def run_sweeps(
    plan: ProbePlan,
    starts: np.ndarray,
    rng: np.random.Generator,
    query_times: np.ndarray | None = None,
    served: np.ndarray | None = None,
    faults: SweepFaults | None = None,
) -> list[ReplyBatch]:
    """Realize all rounds of one plan; returns per-target reply batches.

    ``starts`` holds the R round start times.  ``query_times`` accepts the
    ``(R, N)`` grid from :func:`sweep_query_times` when the caller already
    computed it (e.g. to validate the rate-limit ledger up front, or to
    substitute the retry planner's *effective* send times); otherwise it
    is derived from ``starts``.  ``served`` is an optional ``(R, N)`` mask
    of slots the retry planner gave up on (their probes time out);
    ``faults`` applies scheduled chaos as draw-free masks and addends, so
    ``faults=None`` sweeps are byte-identical with or without this code
    path compiled in.

    Stochastic draw order (fixed so a given stream is reproducible):
    jitter, congestion groups in plan order, response loss, processing.
    """
    if query_times is None:
        query_times = sweep_query_times(plan, starts)
    rounds, n = query_times.shape
    pings = plan.pings_per_query
    # Probe send times: pings are spaced one second apart within a query.
    sent = query_times[:, :, None] + np.arange(pings, dtype=float)[None, None, :]

    rtt = plan.base_rtt_ms[None, :, None] + plan.jitter.sample_batch_ms(
        rng, (rounds, n, pings)
    )
    for process, indices in plan.congestion_groups:
        rtt[:, indices, :] += process.delay_batch_ms(sent[:, indices, :], rng)

    if faults is not None:
        # Transit-detour RTT while a target's pseudowire is dark.
        for j, (edges, extra_ms) in faults.dark_by_index.items():
            rtt[:, j, :] += extra_ms * _edge_mask(edges, sent[:, j, :])

    respond_prob = np.broadcast_to(
        plan.respond_prob[None, :, None], (rounds, n, pings)
    )
    if faults is not None and faults.loss_severity > 0 and faults.loss_edges.size:
        # Loss bursts degrade response probability; the uniform draw is
        # the same single array either way, so later draws never shift.
        in_burst = _edge_mask(faults.loss_edges, sent)
        respond_prob = np.where(
            in_burst, respond_prob * (1.0 - faults.loss_severity), respond_prob
        )
    answered = rng.random((rounds, n, pings)) < respond_prob
    answered &= plan.reachable[None, :, None]
    if faults is not None:
        for j, edges in faults.flap_by_index.items():
            answered[:, j, :] &= ~_edge_mask(edges, sent[:, j, :])
    if served is not None:
        answered &= served[:, :, None]

    ttl_stamp = np.where(
        sent >= plan.os_change_s[None, :, None],
        plan.ttl_after[None, :, None],
        plan.ttl_init[None, :, None],
    )
    ttl = ttl_stamp - plan.extra_hops[None, :, None]
    answered &= ttl > 0  # replies that die in transit look like timeouts

    rtt += rng.exponential(1.0, (rounds, n, pings)) * plan.processing_ms[None, :, None]

    # Target-major views so each measurement slices one contiguous row.
    flat = rounds * pings
    rtt_t = np.ascontiguousarray(rtt.transpose(1, 0, 2)).reshape(n, flat)
    ttl_t = np.ascontiguousarray(ttl.transpose(1, 0, 2)).reshape(n, flat)
    sent_t = np.ascontiguousarray(sent.transpose(1, 0, 2)).reshape(n, flat)
    answered_t = np.ascontiguousarray(answered.transpose(1, 0, 2)).reshape(n, flat)

    if n == 0:
        return []
    # One concatenated gather for the whole sweep: boolean indexing a 2-D
    # array walks row-major, so the answered replies come out grouped by
    # target in probe order; per-target batches are then views into the
    # three flat arrays (no per-target masking pass).
    counts = answered_t.sum(axis=1)
    boundaries = np.cumsum(counts)[:-1]
    rtt_parts = np.split(rtt_t[answered_t], boundaries)
    ttl_parts = np.split(ttl_t[answered_t], boundaries)
    sent_parts = np.split(sent_t[answered_t], boundaries)
    return [
        ReplyBatch(rtt_ms=r, ttl=t, sent_at_s=s)
        for r, t, s in zip(rtt_parts, ttl_parts, sent_parts)
    ]
