"""Looking-glass servers attached to IXP peering LANs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.layer2.fabric import PeeringFabric
from repro.layer2.port import Port, PortProfile
from repro.net.addr import IPv4Address
from repro.net.device import Device, TTL_LINUX
from repro.net.icmp import EchoReply, reply_for_probe
from repro.types import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.schedule import ProbeFaults

#: Pings issued per HTML query (Section 3.1, "Measurement overhead").
PCH_PINGS = 5
RIPE_PINGS = 3


def _in_windows(edges: np.ndarray, time_s: float) -> bool:
    """Whether ``time_s`` falls inside a merged window set (see faults)."""
    if edges.size == 0:
        return False
    return bool(np.searchsorted(edges, time_s, side="right") % 2 == 1)


@dataclass(slots=True)
class OffLanTarget:
    """A published address that is *not* on the peering LAN.

    Stale registry entries resolve to a device somewhere behind a router:
    probes still get answers, but the reply crosses ``extra_hops`` IP hops
    (so its TTL arrives decremented — the TTL-match filter's signature)
    and the RTT includes the off-LAN detour.
    """

    device: Device
    base_rtt_ms: float
    extra_hops: int = 1

    def __post_init__(self) -> None:
        if self.base_rtt_ms < 0:
            raise ConfigurationError("base RTT cannot be negative")
        if self.extra_hops < 1:
            raise ConfigurationError("an off-LAN target needs >= 1 extra hop")


@dataclass(slots=True)
class LookingGlassServer:
    """One LG server: a vantage point with a port on the peering fabric."""

    name: str
    operator: str  # "PCH" or "RIPE"
    ixp_acronym: str
    fabric: PeeringFabric
    port: Port
    pings_per_query: int
    offlan_targets: dict[int, OffLanTarget] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.operator not in ("PCH", "RIPE"):
            raise ConfigurationError(f"unknown LG operator {self.operator!r}")
        if self.pings_per_query <= 0:
            raise ConfigurationError("pings_per_query must be positive")

    @classmethod
    def create(
        cls,
        operator: str,
        ixp_acronym: str,
        fabric: PeeringFabric,
        address: IPv4Address,
        site: str = "main",
        tail_rtt_ms: float = 0.05,
    ) -> "LookingGlassServer":
        """Build an LG server and attach its own port to ``fabric``."""
        device = Device(
            name=f"lg-{operator.lower()}-{ixp_acronym}", ttl_init=TTL_LINUX
        )
        iface = device.add_interface(address)
        port = Port(
            interface=iface,
            kind=PortKind.DIRECT,
            profile=PortProfile(tail_rtt_ms=tail_rtt_ms),
        )
        fabric.attach(port, site=site)
        pings = PCH_PINGS if operator == "PCH" else RIPE_PINGS
        return cls(
            name=f"{operator}@{ixp_acronym}",
            operator=operator,
            ixp_acronym=ixp_acronym,
            fabric=fabric,
            port=port,
            pings_per_query=pings,
        )

    def register_offlan_target(
        self, address: IPv4Address, target: OffLanTarget
    ) -> None:
        """Declare that probes to ``address`` leave the LAN (stale entry)."""
        self.offlan_targets[address.value] = target

    def query(
        self,
        target: IPv4Address,
        time_s: float,
        rng: np.random.Generator,
        faults: "ProbeFaults | None" = None,
    ) -> list[EchoReply]:
        """Answer one HTML query: issue the operator's ping burst.

        Returns the replies that came back (possibly empty).  Probes are
        spaced one second apart, as LG ping implementations do.  An
        optional :class:`~repro.faults.schedule.ProbeFaults` slice makes
        probes see the scheduled chaos: flapped ports time out, loss
        bursts degrade response probability, and dark pseudowires answer
        over the transit detour.
        """
        replies: list[EchoReply] = []
        for i in range(self.pings_per_query):
            sent_at = time_s + float(i)
            observation = self._probe_once(target, sent_at, rng, faults)
            if observation is not None:
                replies.append(observation)
        return replies

    def _probe_once(
        self,
        target: IPv4Address,
        sent_at: float,
        rng: np.random.Generator,
        faults: "ProbeFaults | None" = None,
    ) -> EchoReply | None:
        respond_override: float | None = None
        if faults is not None:
            flap_edges = faults.flap_edges.get(target.value)
            if flap_edges is not None and _in_windows(flap_edges, sent_at):
                return None  # port is hard-down: the probe times out
            if faults.loss_severity > 0 and _in_windows(
                faults.loss_edges, sent_at
            ):
                base = self._respond_probability_for(target)
                respond_override = base * (1.0 - faults.loss_severity)
        if self.fabric.has_address(target):
            port = self.fabric.port_for(target)
            path_rtt = self.fabric.path_rtt_ms(
                self.port, port, sent_at, rng,
                failover=faults.failover if faults is not None else None,
            )
            path_rtt += port.operator_bias.get(self.operator, 0.0)
            obs = reply_for_probe(
                device=port.interface.device,
                target_address=str(target),
                path_rtt_ms=path_rtt,
                sent_at_s=sent_at,
                rng=rng,
                respond_probability=respond_override,
            )
            return obs.reply
        offlan = self.offlan_targets.get(target.value)
        if offlan is None:
            return None  # address unreachable: probe times out
        # The probe exits the LAN via a router; add jitter for the detour.
        path_rtt = offlan.base_rtt_ms + self.fabric.jitter.sample_ms(rng)
        obs = reply_for_probe(
            device=offlan.device,
            target_address=str(target),
            path_rtt_ms=path_rtt,
            sent_at_s=sent_at,
            rng=rng,
            reply_extra_hops=offlan.extra_hops,
            respond_probability=respond_override,
        )
        return obs.reply

    def _respond_probability_for(self, target: IPv4Address) -> float:
        """The target device's baseline response probability."""
        if self.fabric.has_address(target):
            return self.fabric.port_for(target).interface.device.respond_probability
        offlan = self.offlan_targets.get(target.value)
        if offlan is None:
            return 0.0
        return offlan.device.respond_probability
