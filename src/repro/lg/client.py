"""The measurement client that drives LG servers politely.

Section 3.1 ("Measurement overhead"): at most one HTML query per minute per
LG server, measurements spread over four months.  The client enforces the
rate limit against *simulated* time, so a mis-scheduled campaign fails
loudly instead of silently hammering a server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import RateLimitError
from repro.lg.server import LookingGlassServer
from repro.net.addr import IPv4Address
from repro.net.icmp import EchoReply
from repro.units import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.retry import RetryPlan
    from repro.faults.schedule import ProbeFaults


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The outcome of one HTML query to one LG server."""

    server_name: str
    operator: str
    target: IPv4Address
    sent_at_s: float
    replies: tuple[EchoReply, ...]

    @property
    def reply_count(self) -> int:
        """How many pings were answered."""
        return len(self.replies)


@dataclass
class LookingGlassClient:
    """Rate-limited front end to a set of LG servers."""

    min_interval_s: float = MINUTE
    _last_query_at: dict[str, float] = field(default_factory=dict)
    _query_counts: dict[str, int] = field(default_factory=dict)
    _retry_counts: dict[str, int] = field(default_factory=dict)
    _dropped_counts: dict[str, int] = field(default_factory=dict)

    def submit(
        self,
        server: LookingGlassServer,
        target: IPv4Address,
        time_s: float,
        rng: np.random.Generator,
        effective_s: float | None = None,
        served: bool = True,
        faults: "ProbeFaults | None" = None,
    ) -> QueryResult:
        """Submit one HTML query, enforcing the per-server rate limit.

        The rate limit is enforced on the *planned* slot ``time_s``; under
        a fault schedule the retry planner may shift the actual send to
        ``effective_s`` (bounded so it stays within the slot — see
        :class:`~repro.faults.retry.RetryPolicy`) or declare the slot
        unservable (``served=False``), in which case the query is counted
        as dropped and no probes are sent.
        """
        last = self._last_query_at.get(server.name)
        # The 1 ms tolerance absorbs float rounding of minute-spaced
        # schedules at large simulated timestamps.
        if last is not None and time_s - last < self.min_interval_s - 1e-3:
            raise RateLimitError(
                f"{server.name}: query at t={time_s:.0f}s violates the "
                f"{self.min_interval_s:.0f}s per-server interval "
                f"(previous at t={last:.0f}s)"
            )
        self._last_query_at[server.name] = time_s
        self._query_counts[server.name] = self._query_counts.get(server.name, 0) + 1
        if not served:
            # Dropped slots are tallied once per sweep via record_retries
            # (both engines record the identical plan), not per submit.
            return QueryResult(
                server_name=server.name,
                operator=server.operator,
                target=target,
                sent_at_s=time_s,
                replies=(),
            )
        sent_at = time_s if effective_s is None else effective_s
        replies = server.query(target, sent_at, rng, faults)
        return QueryResult(
            server_name=server.name,
            operator=server.operator,
            target=target,
            sent_at_s=sent_at,
            replies=tuple(replies),
        )

    def record_sweep(self, server_name: str, times_s: np.ndarray) -> None:
        """Enter a vectorized sweep's query times into the rate-limit ledger.

        The batch probe engine issues a whole campaign's queries to one
        server in a single call, so the ledger validates the entire schedule
        at once: the sorted query times must keep the per-server minimum
        interval among themselves *and* against any previously recorded
        query.  A violation anywhere in the schedule fails the sweep before
        a single simulated probe is sent.
        """
        times = np.sort(np.asarray(times_s, dtype=float).ravel())
        if times.size == 0:
            return
        tolerance = self.min_interval_s - 1e-3
        gaps = np.diff(times)
        if gaps.size and float(gaps.min()) < tolerance:
            at = int(np.argmin(gaps))
            raise RateLimitError(
                f"{server_name}: queries at t={times[at]:.0f}s and "
                f"t={times[at + 1]:.0f}s violate the "
                f"{self.min_interval_s:.0f}s per-server interval"
            )
        last = self._last_query_at.get(server_name)
        if last is not None and float(times[0]) - last < tolerance:
            raise RateLimitError(
                f"{server_name}: query at t={times[0]:.0f}s violates the "
                f"{self.min_interval_s:.0f}s per-server interval "
                f"(previous at t={last:.0f}s)"
            )
        self._last_query_at[server_name] = float(times[-1])
        self._query_counts[server_name] = (
            self._query_counts.get(server_name, 0) + int(times.size)
        )

    def record_retries(self, server_name: str, plan: "RetryPlan") -> None:
        """Add one retry plan's tallies to the per-server counters.

        The batch engine plans a whole sweep's retries in one call; the
        scalar engine records the identical plan before submitting slot by
        slot — both engines therefore report the same counts.
        """
        self._retry_counts[server_name] = (
            self._retry_counts.get(server_name, 0) + plan.retries
        )
        self._dropped_counts[server_name] = (
            self._dropped_counts.get(server_name, 0) + plan.dropped
        )

    def queries_sent(self, server_name: str) -> int:
        """Number of queries submitted to one server so far."""
        return self._query_counts.get(server_name, 0)

    def retries(self, server_name: str) -> int:
        """Extra query attempts (beyond the first) against one server."""
        return self._retry_counts.get(server_name, 0)

    def queries_dropped(self, server_name: str) -> int:
        """Query slots abandoned after exhausting the retry budget."""
        return self._dropped_counts.get(server_name, 0)
