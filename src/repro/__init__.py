"""repro — a reproduction of *Remote Peering: More Peering without
Internet Flattening* (Castro, Cardona, Gorinsky, Francois; CoNEXT 2014).

The package has three layers:

* **substrates** (``repro.geo``, ``repro.net``, ``repro.layer2``,
  ``repro.bgp``, ``repro.ixp``, ``repro.registry``, ``repro.lg``,
  ``repro.netflow``, ``repro.delaymodel``) — everything the paper's
  measurements run on top of;
* **worlds** (``repro.sim``) — deterministic synthetic Internets
  calibrated to the paper's datasets (the 22 studied IXPs; the RedIRIS
  offload setting);
* **core** (``repro.core.detection``, ``repro.core.offload``,
  ``repro.core.economics``) — the paper's contributions: the ping-based
  remote-peering detector with its six filters, the traffic-offload
  estimator, and the economic-viability model.

Quickstart::

    from repro import build_detection_world, ProbeCampaign

    world = build_detection_world()
    result = ProbeCampaign(world).run()
    print(result.remote_spread_fraction())  # ~0.91 in the paper
"""

from repro.core.detection import (
    CampaignConfig,
    CampaignResult,
    FilterConfig,
    FilterPipeline,
    ProbeCampaign,
    REMOTENESS_THRESHOLD_MS,
)
from repro.core.economics import CostModel, CostParameters, fit_exponential_decay
from repro.core.offload import (
    OffloadEstimator,
    PeerGroups,
    greedy_expansion,
    greedy_reachability,
)
from repro.sim import (
    DetectionWorldConfig,
    OffloadWorldConfig,
    build_detection_world,
    build_offload_world,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FilterConfig",
    "FilterPipeline",
    "ProbeCampaign",
    "REMOTENESS_THRESHOLD_MS",
    "CostModel",
    "CostParameters",
    "fit_exponential_decay",
    "OffloadEstimator",
    "PeerGroups",
    "greedy_expansion",
    "greedy_reachability",
    "DetectionWorldConfig",
    "OffloadWorldConfig",
    "build_detection_world",
    "build_offload_world",
    "__version__",
]
