"""JSON-lines serialization of campaign results.

Format: one header line (kind, version, campaign metadata), then one line
per analyzed interface.  Versioned so later releases can evolve the schema
without breaking stored datasets.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.detection.results import AnalyzedInterface, CampaignResult
from repro.errors import AnalysisError
from repro.net.addr import IPv4Address
from repro.types import ASN

_FORMAT_VERSION = 1


def _interface_to_record(iface: AnalyzedInterface) -> dict:
    return {
        "ixp": iface.ixp_acronym,
        "address": str(iface.address),
        "min_rtt_ms": iface.min_rtt_ms,
        "per_operator_min_ms": list(map(list, iface.per_operator_min_ms)),
        "asn": iface.asn,
        "source": iface.identification_source,
        "replies": iface.reply_count,
    }


def _interface_from_record(record: dict) -> AnalyzedInterface:
    try:
        return AnalyzedInterface(
            ixp_acronym=record["ixp"],
            address=IPv4Address.parse(record["address"]),
            min_rtt_ms=float(record["min_rtt_ms"]),
            per_operator_min_ms=tuple(
                (op, float(v)) for op, v in record["per_operator_min_ms"]
            ),
            asn=ASN(record["asn"]) if record["asn"] is not None else None,
            identification_source=record["source"],
            reply_count=int(record["replies"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise AnalysisError(f"malformed interface record: {exc}") from exc


def save_analyzed_interfaces(
    interfaces: list[AnalyzedInterface], path: str | Path
) -> None:
    """Write analyzed interfaces to a JSON-lines file."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for iface in interfaces:
            handle.write(json.dumps(_interface_to_record(iface)) + "\n")


def load_analyzed_interfaces(path: str | Path) -> list[AnalyzedInterface]:
    """Read analyzed interfaces from a JSON-lines file."""
    path = Path(path)
    interfaces: list[AnalyzedInterface] = []
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if line:
                interfaces.append(_interface_from_record(json.loads(line)))
    return interfaces


def save_result(result: CampaignResult, path: str | Path) -> None:
    """Persist a full campaign result (header + interface lines)."""
    path = Path(path)
    header = {
        "kind": "repro-campaign-result",
        "version": _FORMAT_VERSION,
        "threshold_ms": result.threshold_ms,
        "candidate_count": result.candidate_count,
        "discard_counts": result.discard_counts,
    }
    with path.open("w", encoding="ascii") as handle:
        handle.write(json.dumps(header) + "\n")
        for iface in result.analyzed:
            handle.write(json.dumps(_interface_to_record(iface)) + "\n")


def load_result(path: str | Path) -> CampaignResult:
    """Load a campaign result saved by :func:`save_result`."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header_line = handle.readline().strip()
        if not header_line:
            raise AnalysisError(f"{path}: empty dataset")
        header = json.loads(header_line)
        if header.get("kind") != "repro-campaign-result":
            raise AnalysisError(f"{path}: not a campaign-result dataset")
        if header.get("version") != _FORMAT_VERSION:
            raise AnalysisError(
                f"{path}: unsupported format version {header.get('version')}"
            )
        interfaces = [
            _interface_from_record(json.loads(line))
            for line in handle
            if line.strip()
        ]
    return CampaignResult(
        analyzed=interfaces,
        discard_counts=dict(header["discard_counts"]),
        threshold_ms=float(header["threshold_ms"]),
        candidate_count=int(header["candidate_count"]),
    )
