"""Dataset import/export.

The paper published its measurement data (Section 3.1's final note); this
package reproduces that artifact: campaign results and analyzed-interface
datasets serialize to JSON-lines files that round-trip losslessly, so
downstream analyses can run without re-simulating.
"""

from repro.io.datasets import (
    load_result,
    save_result,
    load_analyzed_interfaces,
    save_analyzed_interfaces,
)

__all__ = [
    "load_result",
    "save_result",
    "load_analyzed_interfaces",
    "save_analyzed_interfaces",
]
