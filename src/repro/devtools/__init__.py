"""Developer tooling that ships with the repo but never runs in studies.

Currently one subsystem: :mod:`repro.devtools.lint`, the AST-based
static-analysis suite behind ``repro lint`` / ``make lint``.
"""
