"""``repro lint``: AST static analysis for the repro's core contracts.

Four rule families (see README.md in this directory for the full
determinism contract):

1. **determinism** — the simulation packages may not touch global RNG
   state, wall clocks, OS entropy, or hash-order iteration;
2. **draw-stream discipline** — ``(seed, tag, ...)`` child-stream tags
   are literal, and scalar/vectorized engines create identical streams;
3. **process-pool purity** — study workers are module-level pure
   functions;
4. **report stability** — renderers format floats with explicit
   precision and never iterate unordered containers into output.
"""

from repro.devtools.lint.cli import lint_main
from repro.devtools.lint.drawprograms import (
    DrawProgram,
    DrawSite,
    extract_draw_programs,
    parity_failures,
    render_draw_programs,
)
from repro.devtools.lint.drawstream import draw_parity_violations
from repro.devtools.lint.framework import (
    Checker,
    LintReport,
    Violation,
    all_checkers,
    lint_files,
    lint_source,
    render_json,
    render_text,
    rule_catalog,
)

__all__ = [
    "Checker",
    "DrawProgram",
    "DrawSite",
    "LintReport",
    "Violation",
    "all_checkers",
    "draw_parity_violations",
    "extract_draw_programs",
    "lint_files",
    "lint_main",
    "lint_source",
    "parity_failures",
    "render_draw_programs",
    "render_json",
    "render_text",
    "rule_catalog",
]
