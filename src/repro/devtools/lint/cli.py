"""``repro lint`` — run the determinism & draw-stream static analysis.

Exit status is 1 when any violation survives suppressions, so
``make lint`` and CI can gate on it.  ``--draw-programs`` prints the
statically extracted per-engine stream-order table instead of linting
(and still fails when engines diverge, so the table is never stale
documentation of a broken invariant).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.devtools.lint.drawprograms import (
    extract_draw_programs,
    parity_failures,
    render_draw_programs,
)
from repro.devtools.lint.drawstream import draw_parity_violations
from repro.devtools.lint.framework import (
    LintReport,
    lint_files,
    render_json,
    render_text,
    rule_catalog,
)


def _src_root() -> Path:
    """The ``src/`` directory holding the live ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def lint_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST static analysis for the repro's determinism, "
        "draw-stream, pool-purity and report-stability contracts.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: the live repro tree)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="violation output format (default: text)",
    )
    parser.add_argument(
        "--draw-programs", action="store_true",
        help="print the per-engine RNG stream-order table and exit "
        "(nonzero when engines diverge)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its summary and exit",
    )
    args = parser.parse_args(argv)

    src_root = _src_root()

    if args.list_rules:
        for rule, summary in rule_catalog().items():
            print(f"{rule:24} {summary}")
        return 0

    if args.draw_programs:
        programs = extract_draw_programs(src_root)
        print(render_draw_programs(programs))
        return 1 if parity_failures(programs) else 0

    paths = [Path(p) for p in args.paths] if args.paths \
        else [src_root / "repro"]
    report = lint_files(paths, display_root=src_root)
    # The parity check is whole-project: it reads the engine modules from
    # the live tree regardless of which paths were linted.
    report = LintReport(
        violations=sorted(
            report.violations + draw_parity_violations(src_root),
            key=lambda v: (v.path, v.line, v.col, v.rule),
        ),
        files_checked=report.files_checked,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 1 if report.violations else 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    import sys

    sys.exit(lint_main())
