"""The tiny AST lint framework behind ``repro lint``.

One :class:`Checker` subclass per rule family.  A checker is an
``ast.NodeVisitor`` that declares the rule ids it may emit and the
package prefixes it audits; the engine parses each file once, runs every
applicable checker over the shared tree, and filters the collected
violations through ``# repro-lint: ok[rule-id]`` suppression comments.

The framework is deliberately small: no plugins, no configuration file,
no severity levels.  Every rule is repo-specific and load-bearing — a
violation either breaks a documented invariant (cross-engine draw
identity, pickle-safe workers, byte-stable reports) or it is suppressed
in place with a comment saying why it cannot.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Sequence

#: ``# repro-lint: ok[rule-a, rule-b]`` — or ``ok[*]`` for every rule.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ok\[([^\]]*)\]")


@dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a checker may need about the file under analysis.

    ``relpath`` is the package-relative posix path (``repro/sim/x.py``)
    used for rule scoping; ``path`` is the display path reported to the
    user (repo-relative for real files, the fixture name in tests).
    """

    path: str
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def module_str_constants(self) -> dict[str, str]:
        """Module-level ``NAME = "literal"`` bindings (for tag resolution)."""
        constants: dict[str, str] = {}
        for node in self.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                constants[node.targets[0].id] = node.value.value
        return constants


class Checker(ast.NodeVisitor):
    """Base class for one rule family.

    Subclasses set :attr:`rules` (rule id -> one-line summary) and
    :attr:`packages` (relpath prefixes the family audits; empty tuple
    means every file), then visit nodes and call :meth:`report`.
    """

    rules: ClassVar[dict[str, str]] = {}
    packages: ClassVar[tuple[str, ...]] = ()

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: list[Violation] = []

    @classmethod
    def handles(cls, relpath: str) -> bool:
        return not cls.packages or any(
            relpath.startswith(prefix) for prefix in cls.packages
        )

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.rules:
            raise ValueError(f"{type(self).__name__} does not declare {rule!r}")
        self.violations.append(Violation(
            rule=rule,
            path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        ))

    def run(self) -> list[Violation]:
        self.visit(self.ctx.tree)
        return self.violations


def collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if ids:
            out[lineno] = ids
    return out


def _is_suppressed(
    violation: Violation,
    suppressions: dict[int, frozenset[str]],
    lines: list[str],
) -> bool:
    """True when a suppression covers the violation's line.

    A suppression comment applies to its own line and, when it sits on a
    comment-only line, to the next code line below it — so multi-line
    statements can carry the comment just above them.
    """
    candidates = [violation.line]
    above = violation.line - 1
    while above >= 1 and lines[above - 1].lstrip().startswith("#"):
        candidates.append(above)
        above -= 1
    for lineno in candidates:
        ids = suppressions.get(lineno)
        if ids and ("*" in ids or violation.rule in ids):
            return True
    return False


def all_checkers() -> list[type[Checker]]:
    """Every registered checker class (imported lazily to avoid cycles)."""
    from repro.devtools.lint import determinism, poolpurity, reportrules
    from repro.devtools.lint import drawstream

    return [
        determinism.DeterminismChecker,
        determinism.SetIterationChecker,
        drawstream.DrawTagChecker,
        poolpurity.PoolPurityChecker,
        poolpurity.SharedMemoryChecker,
        reportrules.ReportFloatChecker,
        reportrules.ReportSetIterationChecker,
    ]


def rule_catalog() -> dict[str, str]:
    """Every rule id -> summary, including the project-level checks."""
    from repro.devtools.lint.drawstream import PROJECT_RULES

    catalog: dict[str, str] = {}
    for checker in all_checkers():
        catalog.update(checker.rules)
    catalog.update(PROJECT_RULES)
    return dict(sorted(catalog.items()))


def lint_source(
    source: str,
    relpath: str,
    *,
    path: str | None = None,
    checkers: Sequence[type[Checker]] | None = None,
) -> list[Violation]:
    """Lint one in-memory source blob as if it lived at ``relpath``."""
    tree = ast.parse(source)
    ctx = FileContext(
        path=path or relpath, relpath=relpath, source=source, tree=tree
    )
    suppressions = collect_suppressions(source)
    violations: list[Violation] = []
    for checker_cls in checkers if checkers is not None else all_checkers():
        if checker_cls.handles(relpath):
            violations.extend(checker_cls(ctx).run())
    violations = [
        v for v in violations
        if not _is_suppressed(v, suppressions, ctx.lines)
    ]
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def package_relpath(path: Path) -> str:
    """Posix path from the ``repro`` package root (``repro/sim/x.py``).

    Files outside the package (tests, benchmarks) keep their name-only
    path, which matches no scoped rule family.
    """
    parts = path.resolve().parts
    if "repro" in parts:
        index = parts.index("repro")
        return "/".join(parts[index:])
    return path.name


def iter_python_files(roots: Iterable[Path]) -> list[Path]:
    files: set[Path] = set()
    for root in roots:
        root = Path(root)
        if root.is_file() and root.suffix == ".py":
            files.add(root.resolve())
        elif root.is_dir():
            files.update(p.resolve() for p in root.rglob("*.py"))
    return sorted(files)


@dataclass
class LintReport:
    """The result of one lint run: violations plus file accounting."""

    violations: list[Violation]
    files_checked: int


def lint_files(
    paths: Iterable[Path],
    *,
    checkers: Sequence[type[Checker]] | None = None,
    display_root: Path | None = None,
) -> LintReport:
    """Lint every python file under ``paths``."""
    files = iter_python_files(paths)
    violations: list[Violation] = []
    for file_path in files:
        display = str(file_path)
        if display_root is not None:
            try:
                display = file_path.relative_to(
                    Path(display_root).resolve()
                ).as_posix()
            except ValueError:
                pass
        violations.extend(lint_source(
            file_path.read_text(encoding="utf-8"),
            package_relpath(file_path),
            path=display,
            checkers=checkers,
        ))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return LintReport(violations=violations, files_checked=len(files))


def render_text(report: LintReport) -> str:
    lines = [v.render() for v in report.violations]
    noun = "file" if report.files_checked == 1 else "files"
    if report.violations:
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} {noun} checked"
        )
    else:
        lines.append(f"OK: {report.files_checked} {noun} clean")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps({
        "files_checked": report.files_checked,
        "violations": [v.as_dict() for v in report.violations],
    }, indent=2)
