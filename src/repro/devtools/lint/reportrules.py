"""Rule family 4 — byte-stable report rendering.

The renderers in ``reporting/`` are snapshot material: ``make test``
holds ``ensembles.py`` to byte-for-byte golden files, and every report
is diffed across engines and resumes.  Two things silently destabilize
them: float formatting without an explicit precision (``str(float)``
and ``round()`` render value-dependent widths — ``0.3`` vs ``0.301``),
and iterating unordered containers into output rows.

Rules
-----
``rpt-round``
    ``round()`` in a renderer is almost always formatting; a rounded
    float still renders with variable width.  Use ``f"{x:.3f}"``.
``rpt-float-format``
    An f-string interpolation of a provably-float expression without a
    format spec renders ``repr``-width output.
``rpt-set-iter``
    Same analysis as ``det-set-iter``, scoped to the renderers: hash
    order must never reach report rows.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.determinism import SetIterationChecker
from repro.devtools.lint.framework import Checker


class ReportFloatChecker(Checker):
    """Unparameterized float formatting in the renderers."""

    packages = ("repro/reporting/",)
    rules = {
        "rpt-round":
            "round() in a renderer; use an explicit format spec",
        "rpt-float-format":
            "float interpolated without a format spec",
    }

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "round":
            self.report(node, "rpt-round",
                        "round() renders variable width (0.3 vs 0.301); "
                        "format with an explicit spec like f'{x:.3f}'")
        self.generic_visit(node)

    def _is_floatish(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_floatish(node.left) or self._is_floatish(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_floatish(node.operand)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("float", "round")
        return False

    def visit_FormattedValue(self, node: ast.FormattedValue) -> None:
        if node.format_spec is None and self._is_floatish(node.value):
            self.report(node, "rpt-float-format",
                        "float interpolated without a format spec; use "
                        "f'{x:.3f}' (or :g with intent) so report width "
                        "is value-independent")
        self.generic_visit(node)


class ReportSetIterationChecker(SetIterationChecker):
    """``rpt-set-iter``: hash-order iteration feeding report output."""

    packages = ("repro/reporting/",)
    rules = {
        "rpt-set-iter":
            "iteration over a bare set feeding report output",
    }
    rule_id = "rpt-set-iter"
