"""Rule family 1 — determinism in the simulation packages.

Everything under ``sim/``, ``lg/``, ``faults/``, ``bgp/``, ``netflow/``
and ``delaymodel/`` must be a pure function of explicit seeds: the
cross-engine equivalence suites compare draws bit-for-bit, so a single
``random.random()``, wall-clock read, or set-ordering iteration silently
breaks reproducibility in a way no unit test pins down.

Rules
-----
``det-random``
    The stdlib ``random`` module is banned outright (process-global,
    unseeded state).  Use ``repro.rand.make_rng`` / ``child_rng``.
``det-np-random``
    ``np.random.*`` calls other than ``default_rng(seed)`` hit numpy's
    legacy global state.  ``default_rng()`` with no argument seeds from
    OS entropy and is equally banned.
``det-wallclock``
    ``time.time()``, ``datetime.now()`` and friends make draws depend on
    when the study ran.  Simulated time comes from the campaign window.
``det-entropy``
    ``os.urandom`` / ``uuid.uuid4`` / ``secrets`` are entropy sources by
    design — never reproducible.
``det-popitem``
    ``dict.popitem()`` (and set ``pop``) removes an *arbitrary* element;
    arbitrary order feeding draws or output is exactly the bug class the
    engines guard against.
``det-set-iter``
    Iterating a bare ``set``/``frozenset`` yields hash order, which
    varies across processes (string hash randomization).  Wrap the
    iteration in ``sorted(...)`` or iterate an ordered container.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.framework import Checker, FileContext

#: The simulation packages held to the determinism contract.
AUDITED_PACKAGES = (
    "repro/sim/",
    "repro/lg/",
    "repro/faults/",
    "repro/bgp/",
    "repro/netflow/",
    "repro/delaymodel/",
)

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

_ENTROPY_MODULES = {"secrets"}


def dotted_name(node: ast.expr) -> tuple[str, ...]:
    """``np.random.default_rng`` -> ("np", "random", "default_rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        # rng.random(), self._stage_rng(...).random(...): the chain roots
        # in an expression, not a module — not a dotted module reference.
        return ()
    parts.append(node.id)
    parts.reverse()
    return tuple(parts)


class DeterminismChecker(Checker):
    """Forbidden nondeterminism sources in the simulation packages."""

    packages = AUDITED_PACKAGES
    rules = {
        "det-random": "stdlib random module (global unseeded state)",
        "det-np-random": "np.random legacy global state / unseeded default_rng",
        "det-wallclock": "wall-clock reads (time.time, datetime.now, ...)",
        "det-entropy": "OS entropy (os.urandom, uuid4, secrets)",
        "det-popitem": "dict.popitem removes an arbitrary element",
    }

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                self.report(node, "det-random",
                            "import of the stdlib random module; use "
                            "repro.rand.make_rng/child_rng instead")
            elif root in _ENTROPY_MODULES:
                self.report(node, "det-entropy",
                            f"import of entropy module {alias.name!r}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root == "random":
            self.report(node, "det-random",
                        "import from the stdlib random module; use "
                        "repro.rand.make_rng/child_rng instead")
        elif root in _ENTROPY_MODULES:
            self.report(node, "det-entropy",
                        f"import from entropy module {node.module!r}")
        elif root == "os" and any(a.name == "urandom" for a in node.names):
            self.report(node, "det-entropy", "import of os.urandom")
        elif root == "uuid" and any(a.name == "uuid4" for a in node.names):
            self.report(node, "det-entropy", "import of uuid.uuid4")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted:
            self._check_dotted_call(node, dotted)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
        ):
            self.report(node, "det-popitem",
                        ".popitem() removes an arbitrary element; pop a "
                        "sorted key instead")
        self.generic_visit(node)

    def _check_dotted_call(
        self, node: ast.Call, dotted: tuple[str, ...]
    ) -> None:
        if dotted[0] == "random":
            self.report(node, "det-random",
                        f"call to {'.'.join(dotted)} (global unseeded "
                        "stream); use repro.rand streams")
            return
        if len(dotted) >= 3 and dotted[0] in ("np", "numpy") \
                and dotted[1] == "random":
            terminal = dotted[2]
            if terminal == "default_rng":
                if not node.args:
                    self.report(node, "det-np-random",
                                "default_rng() with no seed draws from OS "
                                "entropy; pass an explicit seed")
            elif terminal not in ("Generator", "PCG64", "SeedSequence"):
                self.report(node, "det-np-random",
                            f"call to {'.'.join(dotted)} uses numpy's "
                            "legacy global state; use make_rng/child_rng")
            return
        if len(dotted) >= 2 and dotted[-2:] in _WALLCLOCK_CALLS:
            self.report(node, "det-wallclock",
                        f"wall-clock call {'.'.join(dotted)}(); simulated "
                        "time must come from the campaign window")
            return
        if dotted[-2:] == ("os", "urandom") or dotted[-1:] == ("urandom",):
            self.report(node, "det-entropy", "os.urandom is OS entropy")
        elif dotted[-2:] == ("uuid", "uuid4") or dotted == ("uuid4",):
            self.report(node, "det-entropy", "uuid4 is OS entropy")
        elif dotted[0] == "secrets":
            self.report(node, "det-entropy",
                        f"call to {'.'.join(dotted)} is OS entropy")


_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


class _SetTracker:
    """Flow-insensitive "is this expression a set?" inference for one scope."""

    def __init__(self, constants_scope: ast.AST) -> None:
        self.known: set[str] = set()
        self._collect(constants_scope)

    def _collect(self, scope: ast.AST) -> None:
        # Two passes: parameter annotations, then every assignment in the
        # scope body (skipping nested function scopes, which are tracked
        # separately when visited).
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None \
                        and self._is_set_annotation(arg.annotation):
                    self.known.add(arg.arg)
        changed = True
        while changed:  # fixpoint: a = set(); b = a | other
            changed = False
            for node in self._scope_statements(scope):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if self._is_set_annotation(node.annotation) \
                            and isinstance(target, ast.Name) \
                            and target.id not in self.known:
                        self.known.add(target.id)
                        changed = True
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and self.is_set(value)
                    and target.id not in self.known
                ):
                    self.known.add(target.id)
                    changed = True

    @staticmethod
    def _scope_statements(scope: ast.AST) -> list[ast.stmt]:
        statements: list[ast.stmt] = []
        stack = list(getattr(scope, "body", []))
        while stack:
            node = stack.pop()
            statements.append(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes tracked on their own
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    stack.append(child)
        return statements

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        name = ()
        if isinstance(annotation, ast.Name):
            name = (annotation.id,)
        elif isinstance(annotation, ast.Attribute):
            name = (annotation.attr,)
        return bool(name) and name[0] in _SET_ANNOTATIONS

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.known
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SET_METHODS:
                return self.is_set(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


class SetIterationChecker(Checker):
    """``det-set-iter``: hash-order iteration in the simulation packages."""

    packages = AUDITED_PACKAGES
    rules = {
        "det-set-iter": "iteration over a bare set yields hash order",
    }
    rule_id = "det-set-iter"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._trackers: list[_SetTracker] = [_SetTracker(ctx.tree)]

    def _flag(self, node: ast.AST) -> None:
        self.report(node, self.rule_id,
                    "iteration over a bare set follows hash order; wrap "
                    "in sorted(...) or use an ordered container")

    def _is_set(self, node: ast.expr) -> bool:
        return any(tracker.is_set(node) for tracker in self._trackers)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._trackers.append(_SetTracker(node))
        self.generic_visit(node)
        self._trackers.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_For(self, node: ast.For) -> None:
        if self._is_set(node.iter):
            self._flag(node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.expr) -> None:
        for generator in getattr(node, "generators", []):
            if self._is_set(generator.iter):
                self._flag(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        # list(S)/tuple(S)/enumerate(S)/iter(S) materialize hash order;
        # sorted(S)/len(S)/min(S)/max(S)/sum over ints are order-free.
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple", "enumerate", "iter") \
                and node.args and self._is_set(node.args[0]):
            self._flag(node)
        self.generic_visit(node)
