"""Rule family 3 — process-pool purity for study workers.

``run_study`` fans trial groups out over a ``ProcessPoolExecutor``:
whatever is submitted is pickled to a worker process.  The contract
(PR 4) is that workers are *module-level pure functions* — lambdas and
nested functions do not pickle, bound methods drag their instance (and
any cached world) across the fork, and module-global writes in a worker
mutate only the worker's copy, silently diverging from the parent.

Rules
-----
``pool-submit-module-fn``
    The first argument of ``pool.submit(...)`` must name a module-level
    function defined in the same module.
``pool-worker-globals``
    A submitted worker must not use ``global``/``nonlocal`` and must not
    store into module-level bindings (including item/attribute stores on
    module-level objects).
``pool-raw-shm``
    ``multiprocessing.shared_memory.SharedMemory`` may be constructed
    only inside :mod:`repro.experiments.transport` — the refcounted
    segment lifecycle (create → per-trial refs → unlink at zero, swept
    by ``close_all`` on every engine exit path) is what guarantees a
    killed study leaks nothing into ``/dev/shm``.  A raw segment
    anywhere else is exactly the one that survives a crash as an
    orphan.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.framework import Checker, FileContext


class PoolPurityChecker(Checker):
    """Pickle-safe, side-effect-free executor submissions."""

    packages = ("repro/experiments/",)
    rules = {
        "pool-submit-module-fn":
            "executor workers must be module-level functions",
        "pool-worker-globals":
            "executor workers must not write module globals",
    }

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._module_defs: dict[str, ast.FunctionDef] = {}
        self._module_bindings: set[str] = set()
        self._checked_workers: set[str] = set()
        self._index_module(ctx.tree)

    def _index_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self._module_defs[node.name] = node
                self._module_bindings.add(node.name)
            elif isinstance(node, (ast.ClassDef,)):
                self._module_bindings.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._module_bindings.add(target.id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                self._module_bindings.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self._module_bindings.add(
                        (alias.asname or alias.name).split(".")[0]
                    )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            self._check_submission(node.args[0])
        self.generic_visit(node)

    def _check_submission(self, worker: ast.expr) -> None:
        if isinstance(worker, ast.Lambda):
            self.report(worker, "pool-submit-module-fn",
                        "lambda submitted to the pool; lambdas do not "
                        "pickle and close over local state")
            return
        if not isinstance(worker, ast.Name):
            self.report(worker, "pool-submit-module-fn",
                        "submitted worker must be a plain module-level "
                        "function name (bound methods drag their "
                        "instance across the fork)")
            return
        func = self._module_defs.get(worker.id)
        if func is None:
            self.report(worker, "pool-submit-module-fn",
                        f"{worker.id!r} is not a module-level function "
                        "of this module; workers must be defined at "
                        "module scope where they are submitted")
            return
        if worker.id not in self._checked_workers:
            self._checked_workers.add(worker.id)
            self._check_worker_purity(func)

    def _check_worker_purity(self, func: ast.FunctionDef) -> None:
        local_names = {a.arg for a in [
            *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs,
        ]}
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                self.report(node, "pool-worker-globals",
                            f"worker {func.name!r} declares "
                            f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                            " state; workers must be pure")
                continue
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    local_names.add(target.id)
            for target in targets:
                root = target
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in self._module_bindings
                    and root.id not in local_names
                ):
                    self.report(target, "pool-worker-globals",
                                f"worker {func.name!r} stores into "
                                f"module-level {root.id!r}; the write "
                                "only mutates the worker's copy")


#: The one module allowed to construct shared-memory segments.
_TRANSPORT_MODULE = "repro/experiments/transport.py"


class SharedMemoryChecker(Checker):
    """All shared-memory segments go through the refcounted transport."""

    packages = ()  # project-wide: an orphaned segment can come from anywhere
    rules = {
        "pool-raw-shm":
            "SharedMemory segments must be created via "
            "repro.experiments.transport",
    }

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.relpath != _TRANSPORT_MODULE:
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "SharedMemory":
                self.report(
                    node, "pool-raw-shm",
                    "raw SharedMemory construction bypasses the "
                    "refcounted segment lifecycle; use "
                    "repro.experiments.transport (SegmentManager / "
                    "attach_columns) so crashed runs cannot leak "
                    "/dev/shm segments",
                )
        self.generic_visit(node)
