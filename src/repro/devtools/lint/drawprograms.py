"""Static extraction of the per-engine RNG draw programs.

Every stochastic subsystem creates its child streams through a handful
of helpers — ``child_rng``/``derive_seed`` (tagged streams) and
``make_rng`` (the root stream) — so the complete stream topology of an
engine is statically visible: it is the ordered list of helper calls
reachable from the engine's entry scope, with method overrides resolved
along the configured MRO.

That extraction serves two purposes:

* ``repro lint`` compares the scalar and vectorized programs of every
  dual-engine subsystem and fails when they diverge (rule
  ``draw-engine-parity``) — the invariant the cross-engine equivalence
  suites check dynamically, enforced before a single test runs;
* ``repro lint --draw-programs`` renders the table, replacing the
  hand-maintained stream-order docstrings.

Sites are listed in *scope order* (shared scopes first, then the engine
class walked base-most first, each scope in source order).  Within one
stream, engines may legitimately draw in different orders — the
contract is that the *set and shape of streams* match, which scope-order
sequences capture exactly because overriding a method keeps its name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Helpers that create a *tagged* child stream: ``helper(seed, *labels)``.
TAG_HELPERS = ("child_rng", "derive_seed", "child_stream")

#: Repo-specific stream helpers wrapping ``child_rng`` with a fixed tag
#: prefix: ``self._stage_rng(stage)`` == ``child_rng(seed, "offload", stage)``.
STREAM_HELPER_PREFIXES: dict[str, tuple[str, ...]] = {
    "_stage_rng": ("offload",),
}


@dataclass(frozen=True)
class DrawSite:
    """One stream-creation call: where it lives and the tag it derives."""

    scope: str                 # defining scope, e.g. "_OffloadBuilderBase._build_giants"
    method: str                # bare method/function name (the parity key)
    lineno: int
    helper: str                # child_rng / derive_seed / make_rng / _stage_rng
    tag: tuple[str, ...]       # normalized labels; non-literals as <expr>

    def render_tag(self) -> str:
        return "(" + ", ".join(self.tag) + ")"

    def parity_key(self) -> tuple[str, str, tuple[str, ...]]:
        return (self.method, self.helper, self.tag)


@dataclass(frozen=True)
class DrawProgram:
    """The full draw program of one engine of one subsystem."""

    subsystem: str
    engine: str
    module: str
    sites: tuple[DrawSite, ...]

    def parity_sequence(self) -> tuple[tuple[str, str, tuple[str, ...]], ...]:
        return tuple(site.parity_key() for site in self.sites)


@dataclass(frozen=True)
class _Scope:
    """An extraction entry: a module function, a method, or a class MRO."""

    kind: str                        # "function" | "method" | "class"
    name: str                        # function name / class name
    method: str | None = None        # for kind == "method"
    mro: tuple[str, ...] = ()        # for kind == "class", derived-first
    #: Parity-key override for engine entry methods whose *names* differ
    #: across engines (e.g. _sweep_server_scalar vs _sweep_server_batch)
    #: while their stream contracts must match.
    alias: str | None = None
    #: Module holding this scope when it differs from the subsystem's
    #: module (e.g. the trial-batch offload engine lives in its own file
    #: but subclasses — and must stream-match — the in-module builders).
    #: MRO entries not found here are resolved in the subsystem module.
    module: str | None = None


@dataclass(frozen=True)
class SubsystemSpec:
    """Where one subsystem's engines live and which scopes to extract."""

    name: str
    module: str                      # package-relative path under src/
    shared: tuple[_Scope, ...]       # scopes contributing to every engine
    engines: dict[str, tuple[_Scope, ...]]


#: The dual-engine builders whose stream parity the repro rests on, plus
#: the single-engine fault scheduler (extracted for documentation).  The
#: scalar/vectorized pairs here are exactly the ones the cross-engine
#: equivalence suites exercise dynamically.
SUBSYSTEMS: tuple[SubsystemSpec, ...] = (
    SubsystemSpec(
        name="detection-world",
        module="repro/sim/detection_world.py",
        shared=(_Scope("function", "_make_providers"),),
        engines={
            "scalar": (_Scope("class", "_WorldBuilder",
                              mro=("_WorldBuilder",)),),
            "vectorized": (_Scope("class", "_VectorWorldBuilder",
                                  mro=("_VectorWorldBuilder",
                                       "_WorldBuilder")),),
        },
    ),
    SubsystemSpec(
        name="offload-world",
        module="repro/sim/offload_world.py",
        shared=(
            _Scope("class", "_Tier2Draws", mro=("_Tier2Draws",)),
            _Scope("class", "_StubDraws", mro=("_StubDraws",)),
        ),
        engines={
            "scalar": (_Scope("class", "_ScalarOffloadBuilder",
                              mro=("_ScalarOffloadBuilder",
                                   "_OffloadBuilderBase")),),
            "vectorized": (_Scope("class", "_VectorOffloadBuilder",
                                  mro=("_VectorOffloadBuilder",
                                       "_OffloadBuilderBase")),),
            # The trial-batch engine realizes k seeds per call but draws
            # every per-seed stream through the same sites, so its program
            # must match the single-world engines entry for entry.
            "batched": (_Scope("class", "_BatchSeedBuilder",
                               mro=("_BatchSeedBuilder",
                                    "_OffloadBuilderBase"),
                               module="repro/sim/offload_batch.py"),),
        },
    ),
    SubsystemSpec(
        name="netpool",
        module="repro/sim/netpool.py",
        shared=(),
        engines={
            "scalar": (_Scope("function", "_generate_scalar",
                              alias="generate"),),
            # vectorized and columnar both realize _draw_pool_columns —
            # one code object, so their parity is structural, but both
            # engines stay in the inventory (and the rendered table).
            "vectorized": (_Scope("function", "_draw_pool_columns",
                                  alias="generate"),),
            "columnar": (_Scope("function", "_draw_pool_columns",
                                alias="generate"),),
        },
    ),
    SubsystemSpec(
        name="campaign",
        module="repro/core/detection/campaign.py",
        shared=(_Scope("method", "ProbeCampaign", method="_retry_plan"),),
        engines={
            "scalar": (_Scope("method", "ProbeCampaign",
                              method="_sweep_server_scalar",
                              alias="sweep_server"),),
            "vectorized": (_Scope("method", "ProbeCampaign",
                                  method="_sweep_server_batch",
                                  alias="sweep_server"),),
        },
    ),
    SubsystemSpec(
        name="faults",
        module="repro/faults/schedule.py",
        shared=(),
        engines={
            "shared": (_Scope("function", "build_fault_schedule"),),
        },
    ),
    SubsystemSpec(
        # Single-engine, extracted for the stream inventory: the mega
        # world draws its pool through the columnar netpool engine
        # (seed derived via ``(seed, "megatopo", "pool")``) and its
        # hierarchy + memberships from dedicated ``(seed, "megatopo",
        # "t1"/"t2"/"stubs"/"membership", ...)`` child streams.
        name="megatopo",
        module="repro/sim/megatopo.py",
        shared=(),
        engines={
            "shared": (_Scope("function", "_pool_config"),
                       _Scope("function", "_build")),
        },
    ),
)


class _ModuleIndex:
    """Functions, classes and string constants of one parsed module."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, dict[str, ast.FunctionDef]] = {}
        self.constants: dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, ast.FunctionDef] = {}
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        methods[item.name] = item
                self.classes[node.name] = methods
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.constants[node.targets[0].id] = node.value.value


def _normalize_label(node: ast.expr, constants: dict[str, str]) -> str:
    """Render one tag label: literals verbatim, expressions as ``<...>``."""
    if isinstance(node, ast.Constant):
        return repr(node.value) if isinstance(node.value, str) \
            else str(node.value)
    if isinstance(node, ast.Name):
        if node.id in constants:
            return repr(constants[node.id])
        return f"<{node.id}>"
    if isinstance(node, ast.Attribute):
        parts = []
        value: ast.expr = node
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        parts.reverse()
        return "<" + ".".join(parts) + ">"
    return "<expr>"


def _terminal_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _looks_like_seed(label: str) -> bool:
    inner = label.strip("<>").split(".")[-1]
    return inner == "seed" or inner.endswith("_seed")


def tags_in_function(
    func: ast.FunctionDef,
    constants: dict[str, str],
    scope: str,
    parity_name: str | None = None,
) -> list[DrawSite]:
    """Every stream-creation call in one function body, in source order.

    ``make_rng`` only counts when its argument names a seed (``seed``,
    ``config.seed``, ``*_seed``): the same helper is also the pass-through
    that accepts an existing Generator, which creates no stream.
    """
    if func.name in STREAM_HELPER_PREFIXES:
        return []  # the helper's own child_rng call defines the prefix
    method = parity_name or func.name
    sites: list[DrawSite] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        terminal = _terminal_name(node.func)
        if terminal in TAG_HELPERS and len(node.args) >= 2:
            tag = tuple(
                _normalize_label(arg, constants) for arg in node.args[1:]
            )
            sites.append(DrawSite(scope, method, node.lineno,
                                  terminal, tag))
        elif terminal in STREAM_HELPER_PREFIXES and node.args:
            prefix = tuple(
                repr(part) for part in STREAM_HELPER_PREFIXES[terminal]
            )
            tag = prefix + tuple(
                _normalize_label(arg, constants) for arg in node.args
            )
            sites.append(DrawSite(scope, method, node.lineno,
                                  terminal, tag))
        elif terminal == "make_rng" and len(node.args) == 1:
            label = _normalize_label(node.args[0], constants)
            if _looks_like_seed(label):
                sites.append(DrawSite(scope, method, node.lineno,
                                      "make_rng", (label,)))
    sites.sort(key=lambda s: s.lineno)
    return sites


def _scope_sites(
    index: _ModuleIndex,
    scope: _Scope,
    fallback: _ModuleIndex | None = None,
) -> list[DrawSite]:
    if scope.kind == "function":
        func = index.functions.get(scope.name)
        if func is None:
            raise LookupError(f"module function {scope.name!r} not found")
        return tags_in_function(func, index.constants, scope.name,
                                parity_name=scope.alias)
    if scope.kind == "method":
        methods = index.classes.get(scope.name)
        if methods is None or scope.method not in methods:
            raise LookupError(
                f"method {scope.name}.{scope.method} not found"
            )
        return tags_in_function(
            methods[scope.method], index.constants,
            f"{scope.name}.{scope.method}",
            parity_name=scope.alias,
        )
    # kind == "class": resolve effective methods over the configured MRO,
    # base-most first so scalar and vectorized engines list shared
    # methods in the same (base-defined) order; an override replaces the
    # base implementation in place.  MRO entries may span modules (a
    # cross-module subclass resolves its bases in the subsystem module);
    # each method's tags normalize against its *defining* module's
    # constants.
    order: list[str] = []
    impl: dict[str, tuple[str, ast.FunctionDef, dict[str, str]]] = {}
    for cls_name in reversed(scope.mro):
        methods = None
        constants = index.constants
        if cls_name in index.classes:
            methods = index.classes[cls_name]
        elif fallback is not None and cls_name in fallback.classes:
            methods = fallback.classes[cls_name]
            constants = fallback.constants
        if methods is None:
            raise LookupError(f"class {cls_name!r} not found")
        for method_name, func in methods.items():
            if method_name not in impl:
                order.append(method_name)
            impl[method_name] = (cls_name, func, constants)
    sites: list[DrawSite] = []
    for method_name in order:
        cls_name, func, constants = impl[method_name]
        sites.extend(tags_in_function(
            func, constants, f"{cls_name}.{method_name}"
        ))
    return sites


def extract_draw_programs(src_root: Path) -> list[DrawProgram]:
    """Extract every configured engine's draw program from the live tree."""
    indexes: dict[str, _ModuleIndex] = {}

    def module_index(module: str) -> _ModuleIndex:
        if module not in indexes:
            module_path = Path(src_root) / module
            tree = ast.parse(module_path.read_text(encoding="utf-8"))
            indexes[module] = _ModuleIndex(tree)
        return indexes[module]

    programs: list[DrawProgram] = []
    for spec in SUBSYSTEMS:
        index = module_index(spec.module)
        shared_sites: list[DrawSite] = []
        for scope in spec.shared:
            shared_sites.extend(_scope_sites(index, scope))
        for engine, scopes in spec.engines.items():
            sites = list(shared_sites)
            for scope in scopes:
                scope_index = (
                    module_index(scope.module) if scope.module else index
                )
                sites.extend(_scope_sites(scope_index, scope,
                                          fallback=index))
            programs.append(DrawProgram(
                subsystem=spec.name,
                engine=engine,
                module=spec.module,
                sites=tuple(sites),
            ))
    return programs


def parity_failures(
    programs: list[DrawProgram],
) -> list[tuple[str, str, str, str]]:
    """(subsystem, module, engine_a, engine_b) pairs whose programs differ."""
    by_subsystem: dict[str, list[DrawProgram]] = {}
    for program in programs:
        by_subsystem.setdefault(program.subsystem, []).append(program)
    failures: list[tuple[str, str, str, str]] = []
    for subsystem, group in by_subsystem.items():
        if len(group) < 2:
            continue
        reference = group[0]
        for other in group[1:]:
            if other.parity_sequence() != reference.parity_sequence():
                failures.append((
                    subsystem, reference.module,
                    reference.engine, other.engine,
                ))
    return failures


def render_draw_programs(programs: list[DrawProgram]) -> str:
    """The human-readable per-engine stream-order table."""
    lines: list[str] = [
        "RNG draw programs (statically extracted; scope order, overrides",
        "resolved along each engine's MRO; <expr> marks per-item labels)",
    ]
    by_subsystem: dict[str, list[DrawProgram]] = {}
    for program in programs:
        by_subsystem.setdefault(program.subsystem, []).append(program)
    for subsystem, group in by_subsystem.items():
        lines.append("")
        lines.append(f"{subsystem}  [{group[0].module}]")
        for program in group:
            lines.append(f"  engine: {program.engine}")
            if not program.sites:
                lines.append("    (no stream creation sites)")
            for site in program.sites:
                lines.append(
                    f"    {site.scope}:{site.lineno}  "
                    f"{site.helper}{site.render_tag()}"
                )
        if len(group) >= 2:
            sequences = {p.parity_sequence() for p in group}
            verdict = (
                "identical across engines" if len(sequences) == 1
                else "ENGINES DIVERGE"
            )
            lines.append(f"  parity: {verdict}")
    return "\n".join(lines)
