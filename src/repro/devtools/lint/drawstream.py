"""Rule family 2 — draw-stream discipline.

The repro's reproducibility story is the ``(seed, tag, ...)`` child
stream: every stochastic component derives its own stream with
``child_rng``/``derive_seed``, so adding a consumer never perturbs the
draws of existing ones, and the scalar and vectorized engines of one
subsystem create *the same* streams.

Two rules enforce this:

``draw-nonliteral-tag`` (per file)
    Stream tags must be statically analyzable: the first label is the
    stream family and must be a string literal (or a module-level string
    constant); later labels may be literals, names, or attribute chains,
    but never f-strings, concatenations, or call results — a computed
    tag cannot be compared across engines or audited for collisions.

``draw-engine-parity`` (whole project)
    For every dual-engine subsystem in
    :data:`repro.devtools.lint.drawprograms.SUBSYSTEMS`, the statically
    extracted draw programs of the engines must be identical: same
    methods creating the same streams, in the same scope order.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.devtools.lint.determinism import AUDITED_PACKAGES
from repro.devtools.lint.drawprograms import (
    extract_draw_programs,
    parity_failures,
)
from repro.devtools.lint.framework import Checker, FileContext, Violation

#: Helpers taking ``(seed, *labels)``; ``_stage_rng`` takes labels only.
_TAGGED_HELPERS = {"child_rng", "derive_seed", "child_stream"}
_LABEL_ONLY_HELPERS = {"_stage_rng"}

#: Rules reported by the whole-project pass (run by the CLI, not per file).
PROJECT_RULES = {
    "draw-engine-parity":
        "scalar and vectorized engines must create identical draw streams",
}


class DrawTagChecker(Checker):
    """``draw-nonliteral-tag``: stream tags must be statically readable."""

    packages = AUDITED_PACKAGES + ("repro/core/", "repro/experiments/")
    rules = {
        "draw-nonliteral-tag":
            "stream tags must be built from literals/names, first label "
            "a string literal",
    }

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._constants = ctx.module_str_constants()

    def visit_Call(self, node: ast.Call) -> None:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in _TAGGED_HELPERS:
            self._check_labels(node, node.args[1:], helper=name)
        elif name in _LABEL_ONLY_HELPERS:
            self._check_labels(node, node.args, helper=name)
        self.generic_visit(node)

    def _is_literal_str(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return True
        return isinstance(node, ast.Name) and node.id in self._constants

    @staticmethod
    def _is_simple(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (str, int))
        if isinstance(node, ast.Name):
            return True
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name)

    def _check_labels(
        self, node: ast.Call, labels: list[ast.expr], helper: str
    ) -> None:
        if not labels:
            self.report(node, "draw-nonliteral-tag",
                        f"{helper}() without a stream tag; every stream "
                        "needs a literal family label")
            return
        if not self._is_literal_str(labels[0]):
            self.report(node, "draw-nonliteral-tag",
                        f"first {helper} label (the stream family) must "
                        "be a string literal or module constant")
        for label in labels[1:]:
            if not self._is_simple(label):
                self.report(label, "draw-nonliteral-tag",
                            f"{helper} label built from a computed "
                            "expression; use literals, names, or "
                            "attribute chains")


def draw_parity_violations(src_root: Path) -> list[Violation]:
    """The whole-project ``draw-engine-parity`` check."""
    programs = extract_draw_programs(src_root)
    violations: list[Violation] = []
    for subsystem, module, engine_a, engine_b in parity_failures(programs):
        violations.append(Violation(
            rule="draw-engine-parity",
            path=module,
            line=1,
            col=1,
            message=(
                f"{subsystem}: the {engine_a} and {engine_b} engines "
                "create different draw streams (run `repro lint "
                "--draw-programs` for the per-engine table)"
            ),
        ))
    return violations
