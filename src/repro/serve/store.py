"""Read-side view of the content-addressed result store.

The store *is* the study engine's artifact directory: every run writes
its trials to ``<store>/<study>_<fingerprint>_trials.jsonl``, where the
fingerprint hashes the fully-resolved trial list (see
:func:`repro.experiments.engine.study_fingerprint`).  The write side is
entirely owned by the engine's artifact writer — this module only
locates and reads artifacts for ``GET /results/{fingerprint}``, so the
service can never corrupt what the engine resumes from.

Rows are streamed, never slurped: a service-scale artifact (hundreds of
seeds × many variants) is summarized in O(1) memory and paged in bounded
chunks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError


class ResultStore:
    """Fingerprint-keyed lookups over one artifact directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def find(self, fingerprint: str) -> Path | None:
        """The artifact holding ``fingerprint``'s trials, if any exists."""
        if not _safe_fingerprint(fingerprint):
            raise ConfigurationError(f"malformed fingerprint {fingerprint!r}")
        matches = sorted(self.root.glob(f"*_{fingerprint}_trials.jsonl"))
        if matches:
            return matches[0]
        # Legacy (pre-content-addressing) artifacts carry the fingerprint
        # in their header line instead of their name.
        for legacy in sorted(self.root.glob("*_trials.jsonl")):
            header = _read_header(legacy)
            if header is not None and header.get("fingerprint") == fingerprint:
                return legacy
        return None

    def rows(self, fingerprint: str) -> Iterator[dict[str, Any]]:
        """Every parseable trial row of the artifact, streamed in order."""
        path = self.find(fingerprint)
        if path is None:
            return
        with path.open("r", encoding="utf-8") as handle:
            handle.readline()  # header
            for line in handle:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail from a killed run
                if isinstance(record, dict) and "trial_id" in record:
                    yield record

    def status_for(self, fingerprint: str) -> dict[str, Any]:
        """Summary of one fingerprint's artifact (O(1) memory)."""
        path = self.find(fingerprint)
        if path is None:
            return {"fingerprint": fingerprint, "exists": False}
        completed = 0
        failed = 0
        study = None
        header = _read_header(path)
        if header is not None:
            study = header.get("study")
        for record in self.rows(fingerprint):
            completed += 1
            if record.get("status") == "failed":
                failed += 1
        return {
            "fingerprint": fingerprint,
            "exists": True,
            "study": study,
            "artifact": path.name,
            "trials": completed,
            "failed": failed,
        }


def _safe_fingerprint(fingerprint: str) -> bool:
    """Only hex fingerprints may reach a glob (no path metacharacters)."""
    return (
        0 < len(fingerprint) <= 64
        and all(c in "0123456789abcdef" for c in fingerprint)
    )


def _read_header(path: Path) -> dict[str, Any] | None:
    """The artifact's header line, or None when unreadable/foreign."""
    try:
        with path.open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
    except (OSError, json.JSONDecodeError):
        return None
    return header if isinstance(header, dict) else None
