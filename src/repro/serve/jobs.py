"""Request resolution: JSON study submissions → (name, Study, StudyConfig).

``POST /studies`` bodies are declarative — they name a registered study
or scenario and describe its configuration as plain JSON — so they can
be journaled verbatim by the scheduler and replayed after a service
restart (a live ``Study`` object cannot be rebuilt from a journal line;
a request payload can).  :func:`resolve_request` is the one resolver
the service injects into :class:`~repro.experiments.scheduler.
StudyScheduler`; everything it accepts is therefore recoverable.

The request shape::

    {
      "study": "detection" | "offload" | "economics" | "scenario",
      "priority": 0,                      # higher runs first
      "config": { ... study-specific ... }
    }

Common ``config`` keys (all studies):

``seeds``
    Either an explicit list (``[0, 1, 7]``) or a range spec
    (``{"count": 16, "offset": 0}``).
``workers`` / ``trial_timeout_s`` / ``trial_retries`` / ``trial_batch``
    Passed through to :class:`~repro.experiments.engine.StudyConfig`
    unchanged (same validation, same errors).

Study-specific keys:

``detection``
    ``preset`` (``mini3``/``paper22``, default ``mini3``), ``ixps`` (an
    explicit IXP-acronym list overriding the preset), ``threshold_ms``
    (a remoteness-threshold grid).
``offload``
    ``preset`` (``small``/``paper65``, default ``small``), ``groups``
    (peer groups, default ``[4]``), ``max_ixps``.
``economics``
    ``preset`` (``small``/``paper65``), ``group``, ``max_ixps`` and the
    Section 5 price knobs (``transit_price``, ``direct_fixed``,
    ``direct_unit``, ``remote_fixed``, ``remote_unit``,
    ``price_per_mbps``).
``scenario``
    ``name`` (one of :func:`repro.experiments.scenarios.scenario_names`)
    and ``preset`` (``small``/``paper``) — the registered scenario's own
    grid builder does the rest.

Bad payloads raise :class:`~repro.errors.ConfigurationError`, which the
HTTP layer maps to a 400 response.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.experiments.engine import Study, StudyConfig

#: Study kinds this resolver understands (the service's registry).
STUDY_KINDS = ("detection", "offload", "economics", "scenario")


def parse_seeds(value: Any) -> tuple[int, ...]:
    """Seeds from either an explicit list or a ``{count, offset}`` range."""
    if isinstance(value, dict):
        count = value.get("count")
        offset = value.get("offset", 0)
        if not isinstance(count, int) or count < 1:
            raise ConfigurationError(
                "seeds.count must be a positive integer"
            )
        if not isinstance(offset, int):
            raise ConfigurationError("seeds.offset must be an integer")
        return tuple(range(offset, offset + count))
    if isinstance(value, list) and value and all(
        isinstance(s, int) and not isinstance(s, bool) for s in value
    ):
        return tuple(value)
    raise ConfigurationError(
        "seeds must be a non-empty integer list or {count, offset}"
    )


def _study_config(config: dict[str, Any], seeds: tuple[int, ...]) -> StudyConfig:
    """Engine config from the request's common keys (engine-validated)."""
    kwargs: dict[str, Any] = {"seeds": seeds}
    for key in ("workers", "trial_timeout_s", "trial_retries",
                "trial_batch", "transport"):
        if key in config:
            kwargs[key] = config[key]
    try:
        return StudyConfig(**kwargs)
    except TypeError as error:
        raise ConfigurationError(f"bad study config: {error}")


def _detection(config: dict[str, Any], seeds: tuple[int, ...]):
    from repro.experiments import DetectionStudy, grid_variants
    from repro.ixp.catalog import spec_by_acronym
    from repro.sim.detection_world import DetectionWorldConfig
    from repro.sim.scenarios import detection_preset_specs

    ixps = config.get("ixps")
    if ixps is not None:
        if not isinstance(ixps, list) or not ixps:
            raise ConfigurationError("ixps must be a non-empty list")
        specs = tuple(spec_by_acronym(name) for name in dict.fromkeys(ixps))
    else:
        specs = detection_preset_specs(config.get("preset", "mini3"))
    axes: dict[str, tuple[Any, ...]] = {}
    thresholds = config.get("threshold_ms")
    if thresholds:
        if not isinstance(thresholds, list):
            raise ConfigurationError("threshold_ms must be a list")
        axes["campaign.remoteness_threshold_ms"] = tuple(
            dict.fromkeys(thresholds)
        )
    study = DetectionStudy(variants=grid_variants(
        world=DetectionWorldConfig(specs=specs), axes=axes,
    ))
    return "detection", study, _study_config(config, seeds)


def _offload(config: dict[str, Any], seeds: tuple[int, ...]):
    from repro.experiments import OffloadStudy, offload_grid_variants
    from repro.sim.scenarios import offload_preset_config

    world = offload_preset_config(config.get("preset", "small"))
    groups = config.get("groups", [4])
    if not isinstance(groups, list) or not groups:
        raise ConfigurationError("groups must be a non-empty list")
    study = OffloadStudy(variants=offload_grid_variants(
        world=world,
        groups=tuple(dict.fromkeys(groups)),
        max_ixps=int(config.get("max_ixps", 8)),
    ))
    return "offload", study, _study_config(config, seeds)


def _economics(config: dict[str, Any], seeds: tuple[int, ...]):
    from repro.experiments import EconomicsStudy, EconomicsVariant
    from repro.sim.scenarios import offload_preset_config

    preset = config.get("preset", "small")
    variant = EconomicsVariant(
        name=preset,
        world=offload_preset_config(preset),
        group=int(config.get("group", 4)),
        max_ixps=int(config.get("max_ixps", 20)),
        transit_price=float(config.get("transit_price", 5.0)),
        direct_fixed=float(config.get("direct_fixed", 1.0)),
        direct_unit=float(config.get("direct_unit", 0.5)),
        remote_fixed=float(config.get("remote_fixed", 0.25)),
        remote_unit=float(config.get("remote_unit", 1.5)),
        price_per_mbps=float(config.get("price_per_mbps", 1.0)),
    )
    study = EconomicsStudy(variants=(variant,))
    return "economics", study, _study_config(config, seeds)


def _scenario(config: dict[str, Any], seeds: tuple[int, ...]):
    from repro.experiments.scenarios import get_scenario

    name = config.get("name")
    if not isinstance(name, str):
        raise ConfigurationError("scenario requests need a 'name'")
    run = get_scenario(name).build(
        preset=config.get("preset", "small"),
        seeds=seeds,
        workers=int(config.get("workers", 0)),
    )
    # The scenario builder owns the full StudyConfig (workers included);
    # layer the request's engine knobs on top of it.
    base = run.study_config
    overlay = {
        key: config[key]
        for key in ("trial_timeout_s", "trial_retries", "trial_batch",
                    "transport")
        if key in config
    }
    if overlay:
        from dataclasses import replace

        base = replace(base, **overlay)
    return f"scenario:{name}", run.study, base


_RESOLVERS = {
    "detection": _detection,
    "offload": _offload,
    "economics": _economics,
    "scenario": _scenario,
}


def resolve_request(payload: dict[str, Any]) -> tuple[str, Study, StudyConfig]:
    """Resolve one ``POST /studies`` body into the scheduler's inputs.

    Returns ``(display name, study, config)``; raises
    :class:`ConfigurationError` on anything malformed — unknown study
    kind, bad seeds, engine-invalid knobs — so submissions fail at the
    API boundary, not inside a scheduler thread.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError("request body must be a JSON object")
    kind = payload.get("study")
    resolver = _RESOLVERS.get(kind) if isinstance(kind, str) else None
    if resolver is None:
        raise ConfigurationError(
            f"unknown study kind {kind!r} (expected one of {STUDY_KINDS})"
        )
    config = payload.get("config", {})
    if not isinstance(config, dict):
        raise ConfigurationError("config must be a JSON object")
    seeds = parse_seeds(config.get("seeds", {"count": 16}))
    return resolver(config, seeds)
