"""Route table of the study service: path + method → handler.

Handlers are small async functions from a parsed :class:`Request` to a
:class:`Response` (one JSON body) or a :class:`StreamingResponse` (an
async iterator of JSON lines sent as HTTP chunks).  They talk only to
the :class:`~repro.serve.app.StudyService` facade — scheduler and store
access stays behind one object so the HTTP plumbing in
:mod:`repro.serve.app` knows nothing about studies.

The API surface::

    GET    /                    service description
    GET    /healthz             liveness probe
    GET    /metrics             queue depth, job states, store hit/miss
    POST   /studies             submit a study request (202 + job)
    GET    /studies             every known job, newest first
    GET    /studies/{id}        one job's status snapshot
    GET    /studies/{id}?watch=1  chunked progress stream until terminal
    DELETE /studies/{id}        cancel (idempotent on terminal jobs)
    GET    /results/{fp}        artifact summary + rows for a fingerprint
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable

from repro.errors import ConfigurationError

#: Poll interval of the watch stream (seconds).
WATCH_POLL_S = 0.1

#: Hard cap on rows a single /results response will carry.
MAX_RESULT_ROWS = 4096


@dataclass(frozen=True, slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError:
            raise ConfigurationError("request body is not valid JSON")


@dataclass(frozen=True, slots=True)
class Response:
    """A buffered JSON response."""

    status: int
    payload: Any
    headers: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class StreamingResponse:
    """A chunked response: each yielded string becomes one HTTP chunk."""

    status: int
    chunks: AsyncIterator[str]


def error_response(status: int, message: str) -> Response:
    return Response(status, {"error": message})


async def _index(service: Any, request: Request) -> Response:
    return Response(200, {
        "service": "repro serve",
        "endpoints": [
            "GET /healthz", "GET /metrics",
            "POST /studies", "GET /studies", "GET /studies/{id}",
            "GET /studies/{id}?watch=1", "DELETE /studies/{id}",
            "GET /results/{fingerprint}",
        ],
        "studies": list(service.study_kinds()),
    })


async def _healthz(service: Any, request: Request) -> Response:
    return Response(200, {"ok": True})


async def _metrics(service: Any, request: Request) -> Response:
    return Response(200, service.metrics())


async def _submit(service: Any, request: Request) -> Response:
    payload = request.json()
    # Resolution builds variant grids (world configs, price planes) —
    # cheap but synchronous, so keep it off the event loop.
    loop = asyncio.get_running_loop()
    job = await loop.run_in_executor(None, service.submit, payload)
    return Response(202, job)


async def _list_jobs(service: Any, request: Request) -> Response:
    return Response(200, {"jobs": service.jobs()})


async def _job_status(
    service: Any, request: Request, job_id: str
) -> Response | StreamingResponse:
    if request.query.get("watch") not in (None, "", "0", "false"):
        return StreamingResponse(200, _watch(service, job_id))
    return Response(200, service.job(job_id))


async def _watch(service: Any, job_id: str) -> AsyncIterator[str]:
    """Progress snapshots as JSON lines, one per observable change.

    The stream ends with the terminal snapshot; a client sees every
    state transition and monotone trial progress without polling.
    """
    last: tuple[Any, ...] | None = None
    while True:
        snapshot = service.job(job_id)
        marker = (snapshot["state"], snapshot["trials"]["done"],
                  snapshot["trials"]["failed"])
        if marker != last:
            last = marker
            yield json.dumps(snapshot) + "\n"
        if snapshot["state"] in ("done", "failed", "cancelled"):
            return
        await asyncio.sleep(WATCH_POLL_S)


async def _cancel(service: Any, request: Request, job_id: str) -> Response:
    return Response(200, service.cancel(job_id))


async def _result(service: Any, request: Request, fingerprint: str) -> Response:
    limit = MAX_RESULT_ROWS
    if "limit" in request.query:
        try:
            limit = min(int(request.query["limit"]), MAX_RESULT_ROWS)
        except ValueError:
            raise ConfigurationError("limit must be an integer")
    summary = service.result_status(fingerprint)
    if not summary.get("exists"):
        return Response(404, summary)
    summary["rows"] = service.result_rows(fingerprint, limit)
    return Response(200, summary)


#: Exact-path routes: (method, path) → handler(service, request).
_EXACT: dict[tuple[str, str], Callable[..., Awaitable[Any]]] = {
    ("GET", "/"): _index,
    ("GET", "/healthz"): _healthz,
    ("GET", "/metrics"): _metrics,
    ("POST", "/studies"): _submit,
    ("GET", "/studies"): _list_jobs,
}


async def dispatch(
    service: Any, request: Request
) -> Response | StreamingResponse:
    """Route one request; unknown paths get a 404, bad input a 400."""
    handler = _EXACT.get((request.method, request.path))
    try:
        if handler is not None:
            return await handler(service, request)
        parts = [p for p in request.path.split("/") if p]
        if len(parts) == 2 and parts[0] == "studies":
            if request.method == "GET":
                return await _job_status(service, request, parts[1])
            if request.method == "DELETE":
                return await _cancel(service, request, parts[1])
            return error_response(405, f"{request.method} not allowed")
        if (len(parts) == 2 and parts[0] == "results"
                and request.method == "GET"):
            return await _result(service, request, parts[1])
        return error_response(404, f"no route for {request.path}")
    except KeyError as error:
        return error_response(404, str(error).strip("'\""))
    except ConfigurationError as error:
        return error_response(400, str(error))
