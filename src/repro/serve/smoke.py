"""End-to-end smoke of the study service (the ``make serve-smoke`` gate).

Starts the full service in-process on an ephemeral port (the real
asyncio server on a background thread, the real scheduler threads, the
real content-addressed store in a temp directory) and drives it over
actual HTTP:

1. **Cold run** — submit a tiny single-IXP detection study, follow it to
   completion, and require every trial to have executed (no store hit).
2. **Warm run** — resubmit the byte-identical request and require a
   **100% cache hit**: all trials resumed from the artifact, zero
   recomputed, ``cache_hit`` flagged on the job and counted by
   ``/metrics``.
3. **Thread-safe deadline** — submit the same study with fresh seeds and
   a deliberately impossible ``trial_timeout_s``; the job runs on a
   scheduler thread (not a main thread), so this exercises the reaped
   deadline path — the historical SIGALRM implementation would have
   silently ignored the budget.  Every trial must come back quarantined
   with a deadline error.
4. **Store reads** — ``GET /results/{fingerprint}`` must replay the
   cold run's rows; a cancellation round-trips; unknown jobs 404.

Exit code 0 when every assertion holds.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Any

from repro.serve.app import HttpServer, StudyService

#: The cold/warm study: one small IXP, two seeds, inline trials.
SMOKE_REQUEST: dict[str, Any] = {
    "study": "detection",
    "config": {
        "ixps": ["TorIX"],
        "seeds": [0, 1],
        "workers": 1,
    },
}

#: The deadline study: fresh seeds (a different fingerprint — the budget
#: is not part of the content address, so reusing the cached seeds would
#: short-circuit into a store hit and never time out) and a budget no
#: world build can meet.
TIMEOUT_REQUEST: dict[str, Any] = {
    "study": "detection",
    "config": {
        "ixps": ["TorIX"],
        "seeds": [7],
        "workers": 1,
        "trial_timeout_s": 0.001,
    },
}


class _ServerThread:
    """The real service on a background thread, bound to an ephemeral port."""

    def __init__(self, store_dir: str) -> None:
        import asyncio

        self._loop = asyncio.new_event_loop()
        self.service = StudyService(store_dir, threads=2)
        self._server = HttpServer(self.service)
        self.port = 0
        started = threading.Event()

        async def _start() -> None:
            _, self.port = await self._server.start("127.0.0.1", 0)
            started.set()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(_start())
            self._loop.run_forever()

        self.service.start()
        self._thread = threading.Thread(
            target=_run, daemon=True, name="repro-serve-smoke"
        )
        self._thread.start()
        if not started.wait(10.0):
            raise RuntimeError("smoke server failed to start")

    def stop(self) -> None:
        import asyncio

        async def _close() -> None:
            await self._server.close()

        asyncio.run_coroutine_threadsafe(_close(), self._loop).result(5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(5.0)
        self.service.shutdown()


def _call(
    base: str, method: str, path: str, payload: Any | None = None
) -> tuple[int, Any]:
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _await_terminal(base: str, job_id: str, timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, job = _call(base, "GET", f"/studies/{job_id}")
        assert status == 200, f"status poll failed: {status} {job}"
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not finish within {timeout_s}s")


def run_smoke(verbose: bool = True) -> int:
    """Drive the full submit → cache-hit → deadline sequence; 0 on success."""

    def say(message: str) -> None:
        if verbose:
            print(f"serve-smoke: {message}")

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as store:
        server = _ServerThread(store)
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, health = _call(base, "GET", "/healthz")
            assert status == 200 and health["ok"], health

            # 1. Cold run: every trial executes.
            status, job = _call(base, "POST", "/studies", SMOKE_REQUEST)
            assert status == 202, f"submit failed: {status} {job}"
            cold = _await_terminal(base, job["id"])
            assert cold["state"] == "done", cold
            total = cold["trials"]["total"]
            assert total == 2, cold
            assert cold["trials"]["done"] == total, cold
            assert cold["trials"]["resumed"] == 0, cold
            assert not cold["cache_hit"], cold
            say(f"cold run done: {total} trials executed "
                f"({cold['wall_s']:.2f}s)")

            # 2. Warm run: a byte-identical resubmission is a pure store
            # hit — zero trials recomputed.
            status, job = _call(base, "POST", "/studies", SMOKE_REQUEST)
            assert status == 202, job
            warm = _await_terminal(base, job["id"])
            assert warm["state"] == "done", warm
            assert warm["fingerprint"] == cold["fingerprint"], (cold, warm)
            assert warm["trials"]["resumed"] == total, warm
            assert warm["cache_hit"], warm
            say(f"warm run done: 100% cache hit ({total}/{total} resumed, "
                f"0 recomputed)")

            # 3. The thread-safe deadline: this job runs on a scheduler
            # thread, where SIGALRM cannot fire — the reaped deadline
            # must quarantine every trial anyway.
            status, job = _call(base, "POST", "/studies", TIMEOUT_REQUEST)
            assert status == 202, job
            reaped = _await_terminal(base, job["id"])
            assert reaped["state"] == "done", reaped
            assert reaped["trials"]["failed"] == reaped["trials"]["total"] > 0, \
                reaped
            assert any(
                "deadline" in note["error"] for note in reaped["failures"]
            ), reaped
            say(f"deadline run done: {reaped['trials']['failed']} trial(s) "
                "quarantined by the off-main-thread deadline")

            # 4. Store reads + metrics accounting.
            status, result = _call(
                base, "GET", f"/results/{cold['fingerprint']}"
            )
            assert status == 200 and result["trials"] == total, result
            assert len(result["rows"]) == total, result
            status, metrics = _call(base, "GET", "/metrics")
            assert status == 200, metrics
            store_stats = metrics["store"]
            assert store_stats["trial_hits"] == total, metrics
            assert store_stats["full_hits"] == 1, metrics
            assert metrics["jobs"].get("done") == 3, metrics
            say(f"store metrics: {store_stats['trial_hits']} trial hits, "
                f"{store_stats['trial_misses']} misses, "
                f"{store_stats['full_hits']} full cache hit(s)")

            # 5. Edges: unknown job 404s; cancellation round-trips.
            status, _ = _call(base, "GET", "/studies/job-nope")
            assert status == 404, status
            status, job = _call(base, "POST", "/studies", {
                "study": "detection",
                "config": {"ixps": ["TorIX"], "seeds": [11], "workers": 1},
            })
            assert status == 202, job
            status, cancelled = _call(
                base, "DELETE", f"/studies/{job['id']}"
            )
            assert status == 200, cancelled
            final = _await_terminal(base, job["id"])
            assert final["state"] in ("cancelled", "done"), final
            say(f"cancellation round-trip: job ended {final['state']}")
        finally:
            server.stop()
    say("all checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation hook
    raise SystemExit(run_smoke())
