"""``repro serve`` — the study engine as a long-running HTTP service.

The package turns the blocking :func:`repro.experiments.engine.run_study`
call into a system that can face traffic: an asyncio HTTP API (stdlib
only — no framework dependency) over the
:class:`~repro.experiments.scheduler.StudyScheduler` job queue and the
content-addressed artifact store.  Submissions are declarative JSON,
progress streams over chunked responses, repeated identical submissions
are answered from the store without recomputing a single trial, and a
killed service re-enqueues its unfinished jobs from the journal on
restart.

Layering (strictly one-way)::

    serve.app / serve.routes      HTTP plumbing + route handlers
        │ uses
    serve.jobs                    JSON request → (Study, StudyConfig)
    serve.store                   read-side view of the artifact store
        │ uses
    experiments.scheduler         job queue + execution core
        │ uses
    experiments.engine            data model + artifact format

``experiments`` never imports ``serve`` — the scheduler takes the
request resolver by injection — so the engine stays usable without the
service, and the service stays a thin shell over the engine.

See ``serve/README.md`` for the API reference and job lifecycle.
"""

from repro.serve.app import HttpServer, StudyService, run_server, serve
from repro.serve.jobs import STUDY_KINDS, parse_seeds, resolve_request
from repro.serve.store import ResultStore

__all__ = [
    "HttpServer",
    "ResultStore",
    "STUDY_KINDS",
    "StudyService",
    "parse_seeds",
    "resolve_request",
    "run_server",
    "serve",
]
