"""The study service: stdlib-asyncio HTTP front end over the scheduler.

Two pieces:

:class:`StudyService`
    The facade the route handlers talk to.  Owns one
    :class:`~repro.experiments.scheduler.StudyScheduler` (jobs run on
    its threads, never on the event loop) and one
    :class:`~repro.serve.store.ResultStore` view over the scheduler's
    artifact directory.  Every method returns plain JSON-ready data —
    handlers never see live job objects.

:class:`HttpServer` / :func:`serve`
    A minimal HTTP/1.1 server on ``asyncio.start_server`` — the
    container has no FastAPI/uvicorn, and the API surface (five JSON
    routes plus one chunked progress stream) does not justify a
    framework.  One request per connection, ``Connection: close``;
    buffered responses carry ``Content-Length``, watch streams use
    chunked transfer encoding so progress lines flush as they happen.

Run it with ``repro serve --port 8072 --store runs/store``; the whole
lifecycle (scheduler start, journal recovery of interrupted jobs,
graceful shutdown) is owned by :func:`serve`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterable
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ConfigurationError
from repro.experiments.scheduler import StudyScheduler
from repro.serve.jobs import STUDY_KINDS, resolve_request
from repro.serve.routes import (
    Request,
    Response,
    StreamingResponse,
    dispatch,
    error_response,
)
from repro.serve.store import ResultStore

#: Largest request body the server will read (1 MiB of JSON is already
#: far beyond any legitimate study request).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class StudyService:
    """Scheduler + store behind one JSON-speaking facade."""

    def __init__(
        self,
        store_dir: str,
        *,
        threads: int = 2,
        recover: bool = True,
    ) -> None:
        self.scheduler = StudyScheduler(
            store_dir, threads=threads, resolver=resolve_request,
        )
        self.store = ResultStore(self.scheduler.store_dir)
        self.recovered = self.scheduler.recover() if recover else 0

    def start(self) -> None:
        self.scheduler.start()

    def shutdown(self) -> None:
        self.scheduler.shutdown(wait_s=5.0)

    # -- handler-facing methods (all return JSON-ready data) -------------

    def study_kinds(self) -> Iterable[str]:
        return STUDY_KINDS

    def submit(self, payload: Any) -> dict[str, Any]:
        if not isinstance(payload, dict):
            raise ConfigurationError("request body must be a JSON object")
        return self.scheduler.submit(request=payload).snapshot()

    def job(self, job_id: str) -> dict[str, Any]:
        try:
            return self.scheduler.get(job_id).snapshot()
        except ConfigurationError:
            raise KeyError(f"unknown job {job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return [job.snapshot() for job in self.scheduler.jobs()]

    def cancel(self, job_id: str) -> dict[str, Any]:
        try:
            return self.scheduler.cancel(job_id).snapshot()
        except ConfigurationError:
            raise KeyError(f"unknown job {job_id}")

    def metrics(self) -> dict[str, Any]:
        metrics = self.scheduler.metrics_snapshot()
        metrics["recovered_jobs"] = self.recovered
        return metrics

    def result_status(self, fingerprint: str) -> dict[str, Any]:
        return self.store.status_for(fingerprint)

    def result_rows(
        self, fingerprint: str, limit: int
    ) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for record in self.store.rows(fingerprint):
            rows.append(record)
            if len(rows) >= limit:
                break
        return rows


class HttpServer:
    """One-request-per-connection HTTP/1.1 server over a service."""

    def __init__(self, service: StudyService) -> None:
        self.service = service
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            try:
                response = await dispatch(self.service, request)
            except Exception as error:  # noqa: BLE001 - HTTP boundary
                response = error_response(
                    500, f"{type(error).__name__}: {error}"
                )
            if isinstance(response, StreamingResponse):
                await _write_stream(writer, response)
            else:
                await _write_json(writer, response)
        except ConfigurationError as error:  # unparseable request framing
            await _write_json(writer, error_response(400, str(error)))
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away mid-request/mid-stream
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one HTTP/1.1 request (None on an empty connection)."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise ConfigurationError("malformed request line")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ConfigurationError("request body too large")
    body = await reader.readexactly(length) if length else b""
    url = urlsplit(target)
    query = dict(parse_qsl(url.query))
    return Request(
        method=method.upper(),
        path=url.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, extra: dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_json(writer: asyncio.StreamWriter, response: Response) -> None:
    body = (json.dumps(response.payload) + "\n").encode("utf-8")
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        **response.headers,
    }
    writer.write(_head(response.status, headers) + body)
    await writer.drain()


async def _write_stream(
    writer: asyncio.StreamWriter, response: StreamingResponse
) -> None:
    writer.write(_head(response.status, {
        "Content-Type": "application/x-ndjson",
        "Transfer-Encoding": "chunked",
    }))
    await writer.drain()
    async for chunk in response.chunks:
        data = chunk.encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


async def run_server(
    host: str,
    port: int,
    store_dir: str,
    *,
    threads: int = 2,
) -> None:
    """Start the scheduler + HTTP server and serve until cancelled."""
    service = StudyService(store_dir, threads=threads)
    service.start()
    server = HttpServer(service)
    bound_host, bound_port = await server.start(host, port)
    print(f"repro serve listening on http://{bound_host}:{bound_port} "
          f"(store: {service.scheduler.store_dir}, "
          f"recovered {service.recovered} job(s))")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
        service.shutdown()


def serve(
    host: str = "127.0.0.1",
    port: int = 8072,
    store_dir: str = "runs/store",
    *,
    threads: int = 2,
) -> int:
    """Blocking entry point of ``repro serve``."""
    try:
        asyncio.run(run_server(host, port, store_dir, threads=threads))
    except KeyboardInterrupt:
        pass
    return 0
