"""Back-compat shim: the ensemble renderers live in
:mod:`repro.reporting.ensembles` now (one scaffold serves the detection,
offload and economics studies).  Importing them from here keeps old
scripts working; their output is unchanged.
"""

from repro.reporting.ensembles import (
    ensemble_title,
    render_economics_ensemble_report,
    render_ensemble_report,
    render_failover_ensemble_report,
    render_joint_ensemble_report,
    render_offload_ensemble_report,
)

__all__ = [
    "ensemble_title",
    "render_economics_ensemble_report",
    "render_ensemble_report",
    "render_failover_ensemble_report",
    "render_joint_ensemble_report",
    "render_offload_ensemble_report",
]
