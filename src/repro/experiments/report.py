"""Plain-text rendering of ensemble results (the CLI's output)."""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.aggregate import MeanCI
from repro.experiments.ensemble import EnsembleResult
from repro.experiments.offload import OffloadEnsembleResult


def _ci(value: MeanCI | None, as_percent: bool = False) -> str:
    if value is None:
        return "n/a"
    if as_percent:
        return f"{value.mean:.1%} ± {value.half_width:.1%}"
    return f"{value.mean:.1f} ± {value.half_width:.1f}"


def render_ensemble_report(
    result: EnsembleResult, per_ixp: bool = False
) -> str:
    """Render per-variant mean ± 95% CI tables.

    The headline table always appears; ``per_ixp=True`` appends each
    variant's per-IXP detected remote fractions (long for the 22-IXP
    world, so it is opt-in).
    """
    summaries = result.summaries()
    blocks: list[str] = []

    headline_rows = []
    for s in summaries:
        headline_rows.append([
            s.variant,
            s.trials,
            _ci(s.precision, as_percent=True),
            _ci(s.recall, as_percent=True),
            _ci(s.analyzed),
            _ci(s.candidates),
            _ci(s.shortfall),
        ])
    blocks.append(render_table(
        ["variant", "trials", "precision", "recall", "analyzed",
         "candidates", "shortfall"],
        headline_rows,
        title=f"Ensemble: {len(result.trials)} trials "
              f"({len(summaries)} variant(s) x {len(result.config.seeds)} "
              f"seed(s), {result.wall_s:.1f} s wall)",
    ))

    for s in summaries:
        rows = [[name, _ci(ci)] for name, ci in s.discards.items()]
        blocks.append(render_table(
            ["filter", "discards"],
            rows,
            title=f"Per-filter discards — {s.variant}",
        ))

    if per_ixp:
        for s in summaries:
            rows = [
                [acr, _ci(ci, as_percent=True)]
                for acr, ci in s.remote_fraction_by_ixp.items()
            ]
            blocks.append(render_table(
                ["IXP", "remote fraction"],
                rows,
                title=f"Detected remote fraction — {s.variant}",
            ))

    return "\n\n".join(blocks)


def render_offload_ensemble_report(result: OffloadEnsembleResult) -> str:
    """Render the offload ensemble: fractions table + expansion consensus.

    The headline table reports mean ± 95% CI maximum offload fractions
    (inbound/outbound at all reachable IXPs), offloadable-network and
    candidate counts, and the share of the greedy expansion's gain its
    first five IXPs realize; one consensus table per variant shows the
    modal greedy order with per-rank agreement across seeds.
    """
    summaries = result.summaries()
    blocks: list[str] = []

    headline_rows = []
    for s in summaries:
        headline_rows.append([
            s.variant,
            s.group,
            s.trials,
            _ci(s.inbound_fraction, as_percent=True),
            _ci(s.outbound_fraction, as_percent=True),
            _ci(s.offloadable_networks),
            _ci(s.candidate_count),
            _ci(s.five_ixp_share, as_percent=True),
        ])
    blocks.append(render_table(
        ["variant", "group", "trials", "inbound offload", "outbound offload",
         "offloadable nets", "candidates", "5-IXP share"],
        headline_rows,
        title=f"Offload ensemble: {len(result.trials)} trials "
              f"({len(summaries)} variant(s) x {len(result.config.seeds)} "
              f"seed(s), {result.wall_s:.1f} s wall)",
    ))

    for s in summaries:
        rows = [
            [c.rank, c.ixp, f"{c.agreement:.0%}"]
            for c in s.expansion_consensus
        ]
        blocks.append(render_table(
            ["#", "modal IXP", "agreement"],
            rows,
            title=f"Greedy expansion consensus — {s.variant}",
        ))

    return "\n\n".join(blocks)
