"""The scenario library: named, parameterized study grids as presets.

The ROADMAP's scenario backlog — ``BehaviorRates`` filter stress grids,
exclusion-rule ablations, price-plane economics grids and joint
detection→offload sweeps — lives here as a registry of runnable presets
instead of prose.  Each scenario resolves a preset name (``small`` for
seconds-scale worlds, ``paper`` for the full-scale ones) into the study
engine's inputs: a ``Study`` instance carrying the variant grid plus a
:class:`~repro.experiments.engine.StudyConfig`, and an ``execute`` hook
that runs the matching ensemble front end and renders its report.

The four scenarios:

``behavior-stress``
    :class:`DetectionStudy` over scaled :class:`~repro.sim.
    detection_world.BehaviorRates` — how precision/recall and the
    per-filter discards degrade as the pathological behaviours Nomikos
    et al. observed per-IXP grow from absent to 4× the calibration.
``exclusion-ablation``
    :class:`OffloadStudy` over the Section 4.2 exclusion-rule switches —
    how much offload potential each "highly unlikely to peer" rule
    conservatively forgoes.
``price-plane``
    :class:`EconomicsStudy` over a transit-price × remote-port-price
    grid — the Wang–Xu–Ma-style sweep of the tariff plane rather than a
    single point, sharing one world build per seed across all cells.
``joint``
    :class:`~repro.experiments.joint.JointStudy` — the end-to-end
    detection→offload→billing chain with measured detection errors
    propagated into the peer map.
``failover``
    :class:`~repro.experiments.failover.FailoverStudy` over the
    pseudowire dark-window ``duration_scale`` — how much of the Section 5
    offload savings the 95th-percentile rule claws back as failover
    bursts grow longer (nested windows on a fixed seed, so the billing
    error is monotone along the sweep).
``churned-detection``
    :class:`DetectionStudy` under the full fault schedule — detection
    precision/recall as LG outages, rate-limit storms, port flaps and
    probe-loss bursts scale from absent to 4× the calibrated intensity.

Use :func:`get_scenario` / :func:`scenario_names` programmatically, or
``repro scenarios list|run <name>`` from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.experiments.engine import Study, StudyConfig
from repro.sim.detection_world import BehaviorRates, DetectionWorldConfig
from repro.sim.scenarios import (
    joint_preset_configs,
    mini_specs,
    offload_preset_config,
)

#: Preset names every scenario understands.
PRESETS = ("small", "paper")

#: Stress multipliers of the ``behavior-stress`` grid (1.0 = calibration).
STRESS_FACTORS = (0.0, 0.5, 1.0, 2.0, 4.0)

#: Transit prices (p) of the ``price-plane`` grid.
PRICE_PLANE_TRANSIT = (3.0, 5.0, 8.0)

#: Remote-peering fixed (port) prices (h) of the ``price-plane`` grid.
PRICE_PLANE_PORT = (0.1, 0.25, 0.5)

#: Dark-window duration scales of the ``failover`` sweep (0 = fault-free).
DARK_DURATION_SCALES = (0.0, 0.5, 1.0, 2.0, 4.0)

#: Fault intensities of the ``churned-detection`` sweep (0 = clean).
FAULT_INTENSITIES = (0.0, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True, slots=True)
class ScenarioRun:
    """One resolved (scenario, preset) cell, ready to execute.

    ``study`` and ``study_config`` are the engine-level view (what
    :func:`~repro.experiments.engine.run_study` consumes); ``execute``
    runs the matching ensemble front end — which wraps the same engine
    call — and returns ``(result, rendered report)``.
    """

    scenario: str
    preset: str
    study: Study
    study_config: StudyConfig
    execute: Callable[[str | None], tuple[Any, str]]

    def trial_count(self) -> int:
        """Trials the run will schedule (variants × seeds)."""
        return len(self.study.variant_names()) * len(self.study_config.seeds)


@dataclass(frozen=True, slots=True)
class Scenario:
    """A named scenario: description plus its preset-resolving builder."""

    name: str
    study_kind: str    # which study family the grid feeds
    description: str
    builder: Callable[[str, tuple[int, ...], int], ScenarioRun]

    def build(
        self,
        preset: str = "small",
        seeds: tuple[int, ...] = tuple(range(16)),
        workers: int = 0,
    ) -> ScenarioRun:
        """Resolve one preset into a runnable :class:`ScenarioRun`."""
        if preset not in PRESETS:
            raise ConfigurationError(
                f"unknown preset {preset!r} (expected one of {PRESETS})"
            )
        return self.builder(preset, tuple(seeds), workers)


def scaled_behavior_rates(factor: float) -> BehaviorRates:
    """The calibrated :class:`BehaviorRates` with every rate scaled.

    The benign ``transient_congestion`` rate is capped at 0.6 so extreme
    stress factors keep a usable share of clean minima instead of
    tripping the rates-sum guard.
    """
    if factor < 0:
        raise ConfigurationError("stress factor cannot be negative")
    base = BehaviorRates()
    return BehaviorRates(
        blackhole=base.blackhole * factor,
        os_change=base.os_change * factor,
        stale=base.stale * factor,
        rare_ttl=base.rare_ttl * factor,
        persistent_congestion=base.persistent_congestion * factor,
        lg_bias=base.lg_bias * factor,
        asn_change=base.asn_change * factor,
        transient_congestion=min(base.transient_congestion * factor, 0.6),
    )


def _behavior_stress(
    preset: str, seeds: tuple[int, ...], workers: int
) -> ScenarioRun:
    from repro.experiments.ensemble import (
        ConfigVariant,
        DetectionStudy,
        EnsembleConfig,
        run_ensemble,
    )
    from repro.reporting.ensembles import render_ensemble_report

    specs = mini_specs() if preset == "small" else ()
    variants = tuple(
        ConfigVariant(
            name=f"stress={factor}x",
            world=DetectionWorldConfig(
                specs=specs, rates=scaled_behavior_rates(factor)
            ),
        )
        for factor in STRESS_FACTORS
    )
    config = EnsembleConfig(seeds=seeds, variants=variants, workers=workers)

    def execute(out_dir: str | None):
        result = run_ensemble(config, out_dir=out_dir)
        return result, render_ensemble_report(result)

    return ScenarioRun(
        scenario="behavior-stress",
        preset=preset,
        study=DetectionStudy(variants=variants),
        study_config=StudyConfig(seeds=seeds, workers=workers),
        execute=execute,
    )


def _exclusion_ablation(
    preset: str, seeds: tuple[int, ...], workers: int
) -> ScenarioRun:
    from repro.experiments.offload import (
        OffloadEnsembleConfig,
        OffloadStudy,
        OffloadVariant,
        run_offload_ensemble,
    )
    from repro.reporting.ensembles import render_offload_ensemble_report

    world = offload_preset_config("small" if preset == "small" else "paper65")
    base = OffloadVariant(name="all-rules", world=world)
    variants = (
        base,
        replace(base, name="keep-providers", exclude_transit_providers=False),
        replace(base, name="keep-home-ixps", exclude_home_ixp_members=False),
        replace(base, name="keep-geant", exclude_geant_club=False),
        replace(
            base,
            name="no-exclusions",
            exclude_transit_providers=False,
            exclude_home_ixp_members=False,
            exclude_geant_club=False,
        ),
    )
    config = OffloadEnsembleConfig(
        seeds=seeds, variants=variants, workers=workers
    )

    def execute(out_dir: str | None):
        result = run_offload_ensemble(config, out_dir=out_dir)
        return result, render_offload_ensemble_report(result)

    return ScenarioRun(
        scenario="exclusion-ablation",
        preset=preset,
        study=OffloadStudy(variants=variants),
        study_config=StudyConfig(seeds=seeds, workers=workers),
        execute=execute,
    )


def _price_plane(
    preset: str, seeds: tuple[int, ...], workers: int
) -> ScenarioRun:
    from repro.experiments.economics import (
        EconomicsEnsembleConfig,
        EconomicsStudy,
        economics_grid_variants,
        run_economics_ensemble,
    )
    from repro.reporting.ensembles import render_economics_ensemble_report

    world = offload_preset_config("small" if preset == "small" else "paper65")
    variants = economics_grid_variants(
        world=world,
        axes={
            "price.transit_price": PRICE_PLANE_TRANSIT,
            "price.remote_fixed": PRICE_PLANE_PORT,
        },
    )
    config = EconomicsEnsembleConfig(
        seeds=seeds, variants=variants, workers=workers
    )

    def execute(out_dir: str | None):
        result = run_economics_ensemble(config, out_dir=out_dir)
        return result, render_economics_ensemble_report(result)

    return ScenarioRun(
        scenario="price-plane",
        preset=preset,
        study=EconomicsStudy(variants=variants),
        study_config=StudyConfig(seeds=seeds, workers=workers),
        execute=execute,
    )


def _joint(preset: str, seeds: tuple[int, ...], workers: int) -> ScenarioRun:
    from repro.experiments.joint import (
        JointEnsembleConfig,
        JointStudy,
        JointVariant,
        run_joint_ensemble,
    )
    from repro.reporting.ensembles import render_joint_ensemble_report

    detection_world, offload_world = joint_preset_configs(preset)
    variants = (
        JointVariant(
            name=preset,
            detection_world=detection_world,
            offload_world=offload_world,
        ),
    )
    config = JointEnsembleConfig(
        seeds=seeds, variants=variants, workers=workers
    )

    def execute(out_dir: str | None):
        result = run_joint_ensemble(config, out_dir=out_dir)
        return result, render_joint_ensemble_report(result)

    return ScenarioRun(
        scenario="joint",
        preset=preset,
        study=JointStudy(variants=variants),
        study_config=StudyConfig(seeds=seeds, workers=workers),
        execute=execute,
    )


def _failover(
    preset: str, seeds: tuple[int, ...], workers: int
) -> ScenarioRun:
    from repro.experiments.failover import (
        FailoverEnsembleConfig,
        FailoverStudy,
        FailoverVariant,
        run_failover_ensemble,
    )
    from repro.faults.schedule import FaultConfig
    from repro.reporting.ensembles import render_failover_ensemble_report

    world = offload_preset_config("small" if preset == "small" else "paper65")
    variants = tuple(
        FailoverVariant(
            name=f"dark={scale}x",
            world=world,
            faults=FaultConfig(duration_scale=scale)
            if scale > 0
            else FaultConfig(intensity=0.0),
        )
        for scale in DARK_DURATION_SCALES
    )
    config = FailoverEnsembleConfig(
        seeds=seeds, variants=variants, workers=workers
    )

    def execute(out_dir: str | None):
        result = run_failover_ensemble(config, out_dir=out_dir)
        return result, render_failover_ensemble_report(result)

    return ScenarioRun(
        scenario="failover",
        preset=preset,
        study=FailoverStudy(variants=variants),
        study_config=StudyConfig(seeds=seeds, workers=workers),
        execute=execute,
    )


def _churned_detection(
    preset: str, seeds: tuple[int, ...], workers: int
) -> ScenarioRun:
    from repro.core.detection.campaign import CampaignConfig
    from repro.experiments.ensemble import (
        ConfigVariant,
        DetectionStudy,
        EnsembleConfig,
        run_ensemble,
    )
    from repro.faults.schedule import FaultConfig
    from repro.reporting.ensembles import render_ensemble_report

    specs = mini_specs() if preset == "small" else ()
    world = DetectionWorldConfig(specs=specs)
    variants = tuple(
        ConfigVariant(
            name=f"faults={intensity}x",
            world=world,
            campaign=CampaignConfig(
                faults=FaultConfig(intensity=intensity)
                if intensity > 0
                else None
            ),
        )
        for intensity in FAULT_INTENSITIES
    )
    config = EnsembleConfig(seeds=seeds, variants=variants, workers=workers)

    def execute(out_dir: str | None):
        result = run_ensemble(config, out_dir=out_dir)
        return result, render_ensemble_report(result)

    return ScenarioRun(
        scenario="churned-detection",
        preset=preset,
        study=DetectionStudy(variants=variants),
        study_config=StudyConfig(seeds=seeds, workers=workers),
        execute=execute,
    )


#: The registry the CLI and tests enumerate, in presentation order.
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="behavior-stress",
            study_kind="detection",
            description="BehaviorRates stress grid: detection precision/"
            "recall and per-filter discards from 0x to 4x the calibrated "
            "pathological-behaviour rates",
            builder=_behavior_stress,
        ),
        Scenario(
            name="exclusion-ablation",
            study_kind="offload",
            description="Section 4.2 exclusion-rule ablation: offload "
            "fractions with each 'unlikely to peer' rule disabled, one "
            "shared world build per seed",
            builder=_exclusion_ablation,
        ),
        Scenario(
            name="price-plane",
            study_kind="economics",
            description="Transit-price x remote-port-price grid over the "
            "Sections 3+4+5 pipeline: bill savings and the eq. 14 "
            "viability vote across the tariff plane",
            builder=_price_plane,
        ),
        Scenario(
            name="joint",
            study_kind="joint",
            description="Joint detection->offload study: measured "
            "precision/recall propagated into the peer map, "
            "oracle-vs-detected offload gap and billing error",
            builder=_joint,
        ),
        Scenario(
            name="failover",
            study_kind="failover",
            description="Pseudowire failover sweep: offload savings vs "
            "dark-window duration scale under 95th-percentile billing, "
            "with the billing error monotone along the sweep per seed",
            builder=_failover,
        ),
        Scenario(
            name="churned-detection",
            study_kind="detection",
            description="Detection under chaos: precision/recall as LG "
            "outages, rate-limit storms, port flaps and probe-loss "
            "bursts scale from 0x to 4x the calibrated fault intensity",
            builder=_churned_detection,
        ),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in presentation order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up one scenario; unknown names fail loudly."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r} (expected one of "
            f"{', '.join(SCENARIOS)})"
        )
    return scenario
