"""Multi-seed, multi-configuration *offload* ensembles (Section 4 at scale).

Mirrors :mod:`repro.experiments.ensemble` for the offload study: a trial
builds one offload world under a (seed, variant) pair, applies the peer-
group exclusions, and measures the maximum offload fractions plus the
greedy IXP expansion.  :class:`OffloadStudy` expresses that as the study
engine's ``build → run → measure`` contract (scheduling, world sharing
across same-seed variants, resume artifacts and parallelism come from
:mod:`repro.experiments.engine`); the aggregates are mean ± 95% CI
offload fractions and an expansion-order consensus per variant.  This is the many-seed sensitivity study the
uncovering-remote-peering and peering-economics follow-ups both need —
"how stable is the ~30% offload ceiling and the AMS-IX-first ordering
across worlds?" — and it only became affordable with the vectorized
offload world builder and the bitset-matrix estimator.

Usage::

    from repro.experiments.offload import (
        OffloadEnsembleConfig, OffloadVariant, run_offload_ensemble,
    )
    config = OffloadEnsembleConfig(
        seeds=tuple(range(16)),
        variants=(OffloadVariant(name="paper65"),),  # full-scale preset
    )
    result = run_offload_ensemble(config)
    print(render_offload_ensemble_report(result))

Grids sweep any :class:`OffloadWorldConfig` field via dotted
``world.<field>`` axes (:func:`offload_grid_variants`), plus the peer
``group`` of the study itself.  The CLI front end is
``repro offload-ensemble`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import gc
import itertools
import time
from collections import Counter
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping, Sequence

from repro.core.offload import (
    ALL_GROUPS,
    OffloadEstimator,
    PeerGroups,
    greedy_expansion,
)
from repro.errors import ConfigurationError
from repro.experiments.aggregate import MeanCI, mean_ci
from repro.experiments.engine import StudyConfig, run_study
from repro.sim.offload_batch import OffloadWorldView, build_offload_views
from repro.sim.offload_world import (
    OffloadWorld,
    OffloadWorldConfig,
    build_offload_world,
)


@dataclass(frozen=True, slots=True)
class OffloadVariant:
    """One named cell of the offload configuration grid.

    The three ``exclude_*`` switches mirror the Section 4.2 exclusion
    rules of :meth:`repro.core.offload.PeerGroups.build`; disabling one
    runs the ablation the paper only argues in prose — how much offload
    potential that rule conservatively forgoes (the ``exclusion-ablation``
    scenario sweeps them).
    """

    name: str
    world: OffloadWorldConfig = OffloadWorldConfig()
    group: int = 4
    max_ixps: int = 8
    exclude_transit_providers: bool = True
    exclude_home_ixp_members: bool = True
    exclude_geant_club: bool = True

    def __post_init__(self) -> None:
        if self.group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {self.group}")
        if self.max_ixps <= 0:
            raise ConfigurationError("max_ixps must be positive")


def offload_grid_variants(
    world: OffloadWorldConfig | None = None,
    axes: Mapping[str, Sequence] | None = None,
    groups: Sequence[int] = (4,),
    max_ixps: int = 8,
) -> tuple[OffloadVariant, ...]:
    """Cartesian product of ``world.<field>`` axes × peer groups.

    ``axes`` maps dotted paths (``"world.<field>"`` over
    :class:`OffloadWorldConfig`) to value sequences; ``groups`` adds the
    peer group as an outer axis.  Variant names join the swept assignments
    (``member_tier2_fraction=0.4|group=4`` style).
    """
    world = world or OffloadWorldConfig()
    axes = dict(axes or {})
    world_fields = {f.name for f in fields(OffloadWorldConfig)}
    for path in axes:
        scope, _, fname = path.partition(".")
        if scope != "world" or fname not in world_fields:
            raise ConfigurationError(
                f"grid axis {path!r} must be world.<field> naming an "
                "existing OffloadWorldConfig field"
            )
        if fname == "seed":
            raise ConfigurationError(
                f"grid axis {path!r} is not sweepable: trial seeds come "
                "from OffloadEnsembleConfig.seeds"
            )
    if not groups:
        raise ConfigurationError("need at least one peer group")
    for group in groups:
        if group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {group}")
    paths = list(axes)
    variants = []
    for combo in itertools.product(*(axes[p] for p in paths)):
        w = world
        parts = []
        for path, value in zip(paths, combo):
            fname = path.partition(".")[2]
            w = replace(w, **{fname: value})
            parts.append(f"{fname}={value}")
        for group in groups:
            name_parts = [*parts]
            if len(groups) > 1 or not parts:
                name_parts.append(f"group={group}")
            variants.append(
                OffloadVariant(
                    name="|".join(name_parts) or "base",
                    world=w,
                    group=group,
                    max_ixps=max_ixps,
                )
            )
    return tuple(variants)


@dataclass(frozen=True, slots=True)
class OffloadTrialSpec:
    """One fully-resolved trial: picklable input of :func:`run_offload_trial`."""

    trial_id: int
    variant: str
    seed: int
    world: OffloadWorldConfig
    group: int
    max_ixps: int
    exclude_transit_providers: bool = True
    exclude_home_ixp_members: bool = True
    exclude_geant_club: bool = True


@dataclass(frozen=True, slots=True)
class OffloadEnsembleConfig:
    """Seed list × offload variant grid, plus parallelism.

    ``workers=1`` runs trials inline in this process (what tests use);
    ``workers=0`` uses one process per core, capped at the trial count.
    ``trial_batch > 1`` realizes same-variant seeds in batches through
    the trial-axis engine (:mod:`repro.sim.offload_batch`) — results are
    bit-identical per seed; only timing fields change.
    """

    seeds: tuple[int, ...]
    variants: tuple[OffloadVariant, ...] = (OffloadVariant(name="base"),)
    workers: int = 0
    trial_batch: int = 1

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("an ensemble needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("ensemble seeds must be distinct")
        if not self.variants:
            raise ConfigurationError("an ensemble needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")
        if self.trial_batch < 1:
            raise ConfigurationError("trial_batch must be at least 1")

    def trials(self) -> list[OffloadTrialSpec]:
        """The fully-resolved trial list, variant-major, in a stable order.

        Delegates to the engine's expansion over :class:`OffloadStudy`,
        so this inspection view can never drift from what
        :func:`run_offload_ensemble` actually executes.
        """
        from repro.experiments.engine import expand_trials

        return expand_trials(OffloadStudy(variants=self.variants),
                             self.seeds)


@dataclass(frozen=True, slots=True)
class OffloadTrialResult:
    """Per-trial offload metrics (picklable output of :func:`run_offload_trial`)."""

    trial_id: int
    variant: str
    seed: int
    candidate_count: int
    offloadable_networks: int
    inbound_fraction: float   # max offload, all IXPs reached
    outbound_fraction: float
    expansion: tuple[str, ...]  # greedy order, best first
    five_ixp_share: float     # share of the expansion's gain from 5 IXPs
    build_s: float
    study_s: float

    @property
    def total_fraction_mean(self) -> float:
        """Average of the two directional offload fractions."""
        return 0.5 * (self.inbound_fraction + self.outbound_fraction)


def run_offload_trial(spec: OffloadTrialSpec) -> OffloadTrialResult:
    """Execute one standalone trial: build world → groups → estimator → greedy."""
    t0 = time.perf_counter()
    world = build_offload_world(spec.world)
    build_s = time.perf_counter() - t0
    return measure_offload_trial(spec, world, build_s)


def measure_offload_trial(
    spec: OffloadTrialSpec,
    world: OffloadWorld | OffloadWorldView,
    build_s: float,
) -> OffloadTrialResult:
    """Measure one trial against an already-built world.

    Peer groups and the estimator are rebuilt per trial (they depend on
    the exclusion rules, not only the world), but worlds themselves are
    deterministic read-only inputs the engine shares across the variants
    of one seed.
    """
    t1 = time.perf_counter()
    groups = PeerGroups.build(
        world,
        exclude_transit_providers=spec.exclude_transit_providers,
        exclude_home_ixp_members=spec.exclude_home_ixp_members,
        exclude_geant_club=spec.exclude_geant_club,
    )
    estimator = OffloadEstimator(world, groups)
    all_ixps = estimator.reachable_ixps()
    inbound, outbound = estimator.offload_fractions(all_ixps, spec.group)
    steps = greedy_expansion(estimator, spec.group, max_ixps=spec.max_ixps)
    gains = [s.gained_total_bps for s in steps]
    total_gain = sum(gains)
    five_share = sum(gains[:5]) / total_gain if total_gain > 0 else 0.0
    t2 = time.perf_counter()
    return OffloadTrialResult(
        trial_id=spec.trial_id,
        variant=spec.variant,
        seed=spec.seed,
        candidate_count=estimator.groups.candidate_count(),
        offloadable_networks=estimator.offloadable_network_count(
            all_ixps, spec.group
        ),
        inbound_fraction=inbound,
        outbound_fraction=outbound,
        expansion=tuple(s.ixp for s in steps),
        five_ixp_share=five_share,
        build_s=build_s,
        study_s=t2 - t1,
    )


@dataclass(frozen=True, slots=True)
class OffloadStudy:
    """The offload ensemble as a :class:`repro.experiments.engine.Study`."""

    variants: tuple[OffloadVariant, ...] = (OffloadVariant(name="base"),)

    name = "offload"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ConfigurationError("a study needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")

    def variant_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variants)

    def resolve(
        self, variant: str, seed: int, trial_id: int
    ) -> OffloadTrialSpec:
        v = next(v for v in self.variants if v.name == variant)
        return OffloadTrialSpec(
            trial_id=trial_id,
            variant=variant,
            seed=seed,
            world=replace(v.world, seed=seed),
            group=v.group,
            max_ixps=v.max_ixps,
            exclude_transit_providers=v.exclude_transit_providers,
            exclude_home_ixp_members=v.exclude_home_ixp_members,
            exclude_geant_club=v.exclude_geant_club,
        )

    def world_key(self, spec: OffloadTrialSpec) -> OffloadWorldConfig:
        # Variants sweeping the peer group (or expansion depth) share one
        # world build per seed.
        return spec.world

    def build(self, spec: OffloadTrialSpec) -> OffloadWorld:
        return build_offload_world(spec.world)

    def measure(
        self, spec: OffloadTrialSpec, world: OffloadWorld, build_s: float
    ) -> OffloadTrialResult:
        return measure_offload_trial(spec, world, build_s)

    def run_batch(
        self, specs: Sequence[OffloadTrialSpec]
    ) -> list[OffloadTrialResult]:
        """Measure a same-variant seed batch against batched world views.

        Bit-identical per seed to ``build`` + ``measure`` — the views
        share the static tables but every seed consumes its own child
        streams (see :mod:`repro.sim.offload_batch`) — so only the
        amortized ``build_s`` timing differs from per-trial runs.
        """
        # Realization and measurement allocate ~100k short-lived arrays
        # per seed; generational collections mid-batch scan the shared
        # statics repeatedly for nothing.
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            t0 = time.perf_counter()
            views = build_offload_views([spec.world for spec in specs])
            build_s = (time.perf_counter() - t0) / max(len(specs), 1)
            return [
                measure_offload_trial(spec, view, build_s)
                for spec, view in zip(specs, views)
            ]
        finally:
            if resume_gc:
                gc.enable()

    def metrics(self, result: OffloadTrialResult) -> dict[str, float]:
        return {
            "inbound_fraction": result.inbound_fraction,
            "outbound_fraction": result.outbound_fraction,
            "five_ixp_share": result.five_ixp_share,
        }

    def encode(self, result: OffloadTrialResult) -> dict:
        return asdict(result)

    def decode(self, payload: dict) -> OffloadTrialResult:
        payload = dict(payload)
        payload["expansion"] = tuple(payload["expansion"])
        return OffloadTrialResult(**payload)


@dataclass(frozen=True, slots=True)
class RankConsensus:
    """Agreement on one greedy rank across a variant's trials."""

    rank: int            # 1-based expansion position
    ixp: str             # modal IXP at this rank
    agreement: float     # fraction of trials picking the modal IXP here


@dataclass(frozen=True, slots=True)
class OffloadVariantSummary:
    """Aggregated offload metrics for one variant."""

    variant: str
    trials: int
    group: int
    inbound_fraction: MeanCI
    outbound_fraction: MeanCI
    offloadable_networks: MeanCI
    candidate_count: MeanCI
    five_ixp_share: MeanCI
    expansion_consensus: tuple[RankConsensus, ...]


@dataclass
class OffloadEnsembleResult:
    """All trial results plus the config that produced them."""

    config: OffloadEnsembleConfig
    trials: list[OffloadTrialResult]
    wall_s: float = 0.0
    world_builds: int = 0   # worlds actually built (engine cache misses)
    world_reuses: int = 0   # trials served from a shared world build
    resumed: int = 0        # trials loaded from --out artifacts
    _by_variant: dict[str, list[OffloadTrialResult]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self._by_variant:
            grouped: dict[str, list[OffloadTrialResult]] = {}
            for trial in self.trials:
                grouped.setdefault(trial.variant, []).append(trial)
            self._by_variant = grouped

    def by_variant(self) -> dict[str, list[OffloadTrialResult]]:
        """Trials grouped by variant name, in config order."""
        return dict(self._by_variant)

    def summaries(self) -> list[OffloadVariantSummary]:
        """Mean ± 95% CI aggregates, one per variant."""
        group_of = {v.name: v.group for v in self.config.variants}
        out = []
        for variant, trials in self._by_variant.items():
            out.append(_summarize(variant, group_of.get(variant, 4), trials))
        return out


def _summarize(
    variant: str, group: int, trials: list[OffloadTrialResult]
) -> OffloadVariantSummary:
    depth = max((len(t.expansion) for t in trials), default=0)
    consensus = []
    for rank in range(depth):
        picks = Counter(
            t.expansion[rank] for t in trials if len(t.expansion) > rank
        )
        ixp, count = picks.most_common(1)[0]
        consensus.append(
            RankConsensus(
                rank=rank + 1, ixp=ixp, agreement=count / len(trials)
            )
        )
    return OffloadVariantSummary(
        variant=variant,
        trials=len(trials),
        group=group,
        inbound_fraction=mean_ci([t.inbound_fraction for t in trials]),
        outbound_fraction=mean_ci([t.outbound_fraction for t in trials]),
        offloadable_networks=mean_ci([t.offloadable_networks for t in trials]),
        candidate_count=mean_ci([t.candidate_count for t in trials]),
        five_ixp_share=mean_ci([t.five_ixp_share for t in trials]),
        expansion_consensus=tuple(consensus),
    )


def run_offload_ensemble(
    config: OffloadEnsembleConfig, out_dir: str | None = None
) -> OffloadEnsembleResult:
    """Run every trial of ``config`` through the study engine.

    Results come back in trial order regardless of completion order, so
    ensembles are reproducible artifacts: same config, same report.  With
    ``out_dir`` the run is resumable (see :mod:`repro.experiments.engine`).
    """
    result = run_study(
        OffloadStudy(variants=config.variants),
        StudyConfig(seeds=config.seeds, workers=config.workers,
                    out_dir=out_dir, trial_batch=config.trial_batch),
    )
    return OffloadEnsembleResult(
        config=config,
        trials=result.trials,
        wall_s=result.wall_s,
        world_builds=result.world_builds,
        world_reuses=result.world_reuses,
        resumed=result.resumed,
    )
