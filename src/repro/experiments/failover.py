"""The failover study: offload savings eroded by pseudowire dark windows.

Section 5 prices offload under 95th-percentile billing assuming the
remote peering circuits stay up; the paper's risk argument (Section 2)
is that a remote peer is one pseudowire away from falling back to
transit.  A failover trial quantifies that risk for one seed's offload
world:

1. build the offload world, pick the greedy expansion's IXP order, and
   split the offloaded traffic into *disjoint prefix components* — the
   networks each IXP adds beyond its predecessors in the greedy order;
2. draw per-IXP pseudowire dark windows from the dedicated
   ``(seed, "faults", "pseudowire-dark", ixp)`` streams (counts Poisson
   in the fault intensity, durations stretched by ``duration_scale``
   *after* drawing, so scale sweeps on one seed are nested);
3. while an IXP's pseudowire is dark, its component's traffic returns to
   transit — the fallback series is the sum of component series weighted
   by each bin's dark-overlap fraction;
4. bill the month three ways (no offload / fault-free offload / offload
   with fallback bursts) under the 95th-percentile rule.

Because every component series shares one seed, series are *exactly*
additive across disjoint components, so fallback ≤ offload ≤ transit
holds bin-for-bin by construction — and on a fixed seed the billing
error is monotone non-decreasing in ``duration_scale`` (nested dark
windows can only raise the realized percentile).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.core.offload import ALL_GROUPS, OffloadEstimator, PeerGroups, greedy_expansion
from repro.errors import ConfigurationError
from repro.experiments.aggregate import MeanCI, mean_ci
from repro.experiments.engine import StudyConfig, run_study
from repro.faults.schedule import (
    PSEUDOWIRE_DARK,
    FaultConfig,
    draw_windows,
    window_overlap_fractions,
)
from repro.netflow.billing import failover_billing_report
from repro.rand import child_rng, derive_seed
from repro.sim.offload_world import (
    OffloadWorld,
    OffloadWorldConfig,
    build_offload_world,
)
from repro.types import TrafficDirection
from repro.units import DAY, FIVE_MINUTES


@dataclass(frozen=True, slots=True)
class FailoverVariant:
    """One named cell of the failover grid: a world plus fault knobs."""

    name: str
    world: OffloadWorldConfig = OffloadWorldConfig()
    faults: FaultConfig = FaultConfig()
    group: int = 4
    max_ixps: int = 8
    price_per_mbps: float = 1.0
    percentile: float = 95.0

    def __post_init__(self) -> None:
        if self.group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {self.group}")
        if self.max_ixps <= 0:
            raise ConfigurationError("max_ixps must be positive")
        if not 0 < self.percentile <= 100:
            raise ConfigurationError("percentile must be in (0, 100]")
        if self.price_per_mbps < 0:
            raise ConfigurationError("price_per_mbps cannot be negative")


@dataclass(frozen=True, slots=True)
class FailoverTrialSpec:
    """One fully-resolved trial: picklable input of the study's measure."""

    trial_id: int
    variant: str
    seed: int
    world: OffloadWorldConfig
    faults: FaultConfig
    group: int
    max_ixps: int
    price_per_mbps: float
    percentile: float


@dataclass(frozen=True, slots=True)
class FailoverTrialResult:
    """Per-trial failover metrics (JSON-serializable for resume)."""

    trial_id: int
    variant: str
    seed: int
    ixp_count: int                  # IXPs the greedy expansion reached
    dark_window_count: int          # merged dark windows across those IXPs
    dark_time_fraction: float       # dark IXP-time / (IXPs x month)
    inbound_fraction: float         # fault-free offload fractions
    outbound_fraction: float
    before_bill: float
    ideal_savings_fraction: float     # fault-free offload savings
    realized_savings_fraction: float  # savings after failover bursts
    burst_penalty: float              # extra monthly charge from bursts
    build_s: float
    study_s: float

    @property
    def offload_fraction(self) -> float:
        """Offload fraction averaged over the two directions."""
        return 0.5 * (self.inbound_fraction + self.outbound_fraction)

    @property
    def billing_error(self) -> float:
        """Savings lost to failover bursts (>= 0 by construction)."""
        return self.ideal_savings_fraction - self.realized_savings_fraction


def measure_failover_trial(
    spec: FailoverTrialSpec, world: OffloadWorld, build_s: float
) -> FailoverTrialResult:
    """Sections 4 → 2.1 with dark windows, against a built offload world."""
    t1 = time.perf_counter()
    groups = PeerGroups.build(world)
    estimator = OffloadEstimator(world, groups)
    steps = greedy_expansion(estimator, spec.group, max_ixps=spec.max_ixps)
    ixps = [step.ixp for step in steps if step.gained_total_bps > 0]

    collector = world.collector
    bins = collector.bins()
    span_s = collector.days * DAY

    # Disjoint prefix components: the networks each IXP adds beyond its
    # greedy predecessors.  Their union is the full offload mask, and with
    # one shared series seed the component series sum *exactly* to the
    # offload series (aggregate_series is linear in the masked rate sum).
    series_seed = derive_seed(spec.seed, "failover", "series")

    def series_of(mask: np.ndarray) -> np.ndarray:
        if not mask.any():
            return np.zeros(bins)
        total = np.zeros(bins)
        for direction in (TrafficDirection.INBOUND, TrafficDirection.OUTBOUND):
            total = total + collector.aggregate_series(
                direction, mask=mask, seed=series_seed
            )
        return total

    transit_series = series_of(
        np.ones(len(world.contributing), dtype=bool)
    )
    offload_mask = estimator.mask_for(ixps, spec.group)
    offload_series = series_of(offload_mask)

    fallback_series = np.zeros(bins)
    dark_window_count = 0
    dark_time = 0.0
    covered = np.zeros(len(world.contributing), dtype=bool)
    for acronym in ixps:
        prefix_mask = estimator.mask_for([acronym], spec.group) & ~covered
        covered |= prefix_mask
        edges = draw_windows(
            child_rng(spec.seed, "faults", PSEUDOWIRE_DARK, acronym),
            spec.faults.dark_rate, spec.faults.dark_mean_s, span_s,
            spec.faults.intensity, spec.faults.duration_scale,
        )
        dark_window_count += edges.size // 2
        dark_time += float((edges[1::2] - edges[0::2]).sum())
        if edges.size == 0 or not prefix_mask.any():
            continue
        dark_frac = window_overlap_fractions(edges, bins, FIVE_MINUTES)
        fallback_series = fallback_series + series_of(prefix_mask) * dark_frac

    inbound, outbound = estimator.offload_fractions(ixps, spec.group)
    report = failover_billing_report(
        transit_series, offload_series, fallback_series,
        price_per_mbps=spec.price_per_mbps, percentile=spec.percentile,
    )
    t2 = time.perf_counter()
    return FailoverTrialResult(
        trial_id=spec.trial_id,
        variant=spec.variant,
        seed=spec.seed,
        ixp_count=len(ixps),
        dark_window_count=dark_window_count,
        dark_time_fraction=(
            dark_time / (len(ixps) * span_s) if ixps else 0.0
        ),
        inbound_fraction=inbound,
        outbound_fraction=outbound,
        before_bill=report.before_bill,
        ideal_savings_fraction=report.ideal_savings_fraction,
        realized_savings_fraction=report.realized_savings_fraction,
        burst_penalty=report.burst_penalty,
        build_s=build_s,
        study_s=t2 - t1,
    )


@dataclass(frozen=True, slots=True)
class FailoverStudy:
    """The failover ensemble as a :class:`repro.experiments.engine.Study`."""

    variants: tuple[FailoverVariant, ...] = (FailoverVariant(name="base"),)

    name = "failover"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ConfigurationError("a study needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")

    def variant_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variants)

    def resolve(
        self, variant: str, seed: int, trial_id: int
    ) -> FailoverTrialSpec:
        v = next(v for v in self.variants if v.name == variant)
        return FailoverTrialSpec(
            trial_id=trial_id,
            variant=variant,
            seed=seed,
            world=replace(v.world, seed=seed),
            faults=v.faults,
            group=v.group,
            max_ixps=v.max_ixps,
            price_per_mbps=v.price_per_mbps,
            percentile=v.percentile,
        )

    def world_key(self, spec: FailoverTrialSpec):
        # Variants sweeping fault knobs (intensity, duration scale) share
        # one world build per seed — the chaos lives outside the world.
        return spec.world

    def build(self, spec: FailoverTrialSpec) -> OffloadWorld:
        return build_offload_world(spec.world)

    def measure(
        self, spec: FailoverTrialSpec, world: OffloadWorld, build_s: float
    ) -> FailoverTrialResult:
        return measure_failover_trial(spec, world, build_s)

    def metrics(self, result: FailoverTrialResult) -> dict[str, float]:
        return {
            "offload_fraction": result.offload_fraction,
            "ideal_savings": result.ideal_savings_fraction,
            "realized_savings": result.realized_savings_fraction,
            "billing_error": result.billing_error,
            "dark_fraction": result.dark_time_fraction,
        }

    def encode(self, result: FailoverTrialResult) -> dict:
        return asdict(result)

    def decode(self, payload: dict) -> FailoverTrialResult:
        return FailoverTrialResult(**payload)


@dataclass(frozen=True, slots=True)
class FailoverEnsembleConfig:
    """Seed list × failover variant grid, plus parallelism."""

    seeds: tuple[int, ...]
    variants: tuple[FailoverVariant, ...] = (FailoverVariant(name="base"),)
    workers: int = 0

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("an ensemble needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("ensemble seeds must be distinct")
        if not self.variants:
            raise ConfigurationError("an ensemble needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")

    def trials(self) -> list[FailoverTrialSpec]:
        """The fully-resolved trial list, variant-major, in a stable order."""
        from repro.experiments.engine import expand_trials

        return expand_trials(
            FailoverStudy(variants=self.variants), self.seeds
        )


@dataclass(frozen=True, slots=True)
class FailoverVariantSummary:
    """Aggregated failover metrics for one variant."""

    variant: str
    trials: int
    group: int
    ixp_count: MeanCI
    dark_windows: MeanCI
    dark_fraction: MeanCI
    offload_fraction: MeanCI
    before_bill: MeanCI
    ideal_savings: MeanCI
    realized_savings: MeanCI
    billing_error: MeanCI
    burst_penalty: MeanCI


@dataclass
class FailoverEnsembleResult:
    """All trial results plus the config that produced them."""

    config: FailoverEnsembleConfig
    trials: list[FailoverTrialResult]
    wall_s: float = 0.0
    world_builds: int = 0
    world_reuses: int = 0
    resumed: int = 0
    _by_variant: dict[str, list[FailoverTrialResult]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self._by_variant:
            grouped: dict[str, list[FailoverTrialResult]] = {}
            for trial in self.trials:
                grouped.setdefault(trial.variant, []).append(trial)
            self._by_variant = grouped

    def by_variant(self) -> dict[str, list[FailoverTrialResult]]:
        """Trials grouped by variant name, in config order."""
        return dict(self._by_variant)

    def summaries(self) -> list[FailoverVariantSummary]:
        """Mean ± 95% CI aggregates, one per variant."""
        group_of = {v.name: v.group for v in self.config.variants}
        return [
            _summarize(variant, group_of.get(variant, 4), trials)
            for variant, trials in self._by_variant.items()
        ]


def _summarize(
    variant: str, group: int, trials: list[FailoverTrialResult]
) -> FailoverVariantSummary:
    return FailoverVariantSummary(
        variant=variant,
        trials=len(trials),
        group=group,
        ixp_count=mean_ci([t.ixp_count for t in trials]),
        dark_windows=mean_ci([t.dark_window_count for t in trials]),
        dark_fraction=mean_ci([t.dark_time_fraction for t in trials]),
        offload_fraction=mean_ci([t.offload_fraction for t in trials]),
        before_bill=mean_ci([t.before_bill for t in trials]),
        ideal_savings=mean_ci([t.ideal_savings_fraction for t in trials]),
        realized_savings=mean_ci(
            [t.realized_savings_fraction for t in trials]
        ),
        billing_error=mean_ci([t.billing_error for t in trials]),
        burst_penalty=mean_ci([t.burst_penalty for t in trials]),
    )


def run_failover_ensemble(
    config: FailoverEnsembleConfig, out_dir: str | None = None,
    study_config: StudyConfig | None = None,
) -> FailoverEnsembleResult:
    """Run every trial of ``config`` through the study engine.

    Results come back in trial order regardless of completion order, so
    ensembles are reproducible artifacts: same config, same report.  With
    ``out_dir`` the run is resumable (see :mod:`repro.experiments.engine`).
    """
    result = run_study(
        FailoverStudy(variants=config.variants),
        study_config or StudyConfig(
            seeds=config.seeds, workers=config.workers, out_dir=out_dir
        ),
    )
    return FailoverEnsembleResult(
        config=config,
        trials=result.trials,
        wall_s=result.wall_s,
        world_builds=result.world_builds,
        world_reuses=result.world_reuses,
        resumed=result.resumed,
    )
