"""The Section 3 detection study on the generic engine.

A *trial* is the full Section 3 pipeline under one (seed, variant) pair:
build the detection world, collect the campaign's measurements, run the
filter pipeline, and validate the remote/direct calls against the
simulator's ground truth.  :class:`DetectionStudy` expresses that as the
engine's ``build → run → measure`` contract; scheduling, world caching,
resume artifacts and parallelism all come from
:mod:`repro.experiments.engine`.  :func:`run_ensemble` is the historical
entry point and is kept as a thin shim over :func:`run_study` — reports
are unchanged.
"""

from __future__ import annotations

import gc
import itertools
import time
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping, Sequence

from repro.core.detection.campaign import CampaignConfig, ProbeCampaign
from repro.core.detection.filters import FilterPipeline
from repro.core.detection.results import build_result
from repro.core.detection.validation import validate_against_truth
from repro.errors import ConfigurationError
from repro.experiments.aggregate import (
    MeanCI,
    VariantSummary,
    mean_ci,
    optional_mean_ci,
)
from repro.experiments.engine import StudyConfig, run_study
from repro.rand import derive_seed
from repro.sim.detection_world import (
    DetectionWorld,
    DetectionWorldConfig,
    build_detection_world,
)


@dataclass(frozen=True, slots=True)
class ConfigVariant:
    """One named cell of the configuration grid.

    ``world`` carries the :class:`DetectionWorldConfig`;  ``campaign``
    carries the :class:`CampaignConfig` (whose ``filters`` field is the
    :class:`FilterConfig`).  The seeds in both are overridden per trial.
    """

    name: str
    world: DetectionWorldConfig = DetectionWorldConfig()
    campaign: CampaignConfig = CampaignConfig()


def grid_variants(
    world: DetectionWorldConfig | None = None,
    campaign: CampaignConfig | None = None,
    axes: Mapping[str, Sequence] | None = None,
) -> tuple[ConfigVariant, ...]:
    """Cartesian product of config axes as named variants.

    ``axes`` maps dotted field paths to value sequences:

    * ``"world.<field>"`` — a :class:`DetectionWorldConfig` field;
    * ``"campaign.<field>"`` — a :class:`CampaignConfig` field;
    * ``"filters.<field>"`` — a :class:`FilterConfig` field (inside the
      campaign config).

    Variant names join the swept assignments (``threshold_ms=5|replies=6``
    style), so reports stay readable without a naming scheme.
    """
    world = world or DetectionWorldConfig()
    campaign = campaign or CampaignConfig()
    if not axes:
        return (ConfigVariant(name="base", world=world, campaign=campaign),)
    scope_fields = {
        "world": {f.name for f in fields(DetectionWorldConfig)},
        "campaign": {f.name for f in fields(CampaignConfig)},
        "filters": {f.name for f in fields(campaign.filters)},
    }
    paths = list(axes)
    for path in paths:
        scope, _, fname = path.partition(".")
        if scope not in scope_fields or fname not in scope_fields[scope]:
            raise ConfigurationError(
                f"grid axis {path!r} must be world.<field>, campaign.<field> "
                "or filters.<field> naming an existing config field"
            )
        if fname == "seed":
            # Seeds are per-trial (EnsembleConfig.seeds) and would be
            # silently overwritten here — reject the no-op sweep loudly.
            raise ConfigurationError(
                f"grid axis {path!r} is not sweepable: trial seeds come "
                "from EnsembleConfig.seeds"
            )
    variants = []
    for combo in itertools.product(*(axes[p] for p in paths)):
        w, c = world, campaign
        parts = []
        for path, value in zip(paths, combo):
            scope, _, fname = path.partition(".")
            if scope == "world":
                w = replace(w, **{fname: value})
            elif scope == "campaign":
                c = replace(c, **{fname: value})
            else:  # filters
                c = replace(c, filters=replace(c.filters, **{fname: value}))
            parts.append(f"{fname}={value}")
        variants.append(
            ConfigVariant(name="|".join(parts), world=w, campaign=c)
        )
    return tuple(variants)


@dataclass(frozen=True, slots=True)
class TrialSpec:
    """One fully-resolved trial: picklable input of :func:`run_trial`."""

    trial_id: int
    variant: str
    seed: int
    world: DetectionWorldConfig
    campaign: CampaignConfig


@dataclass(frozen=True, slots=True)
class EnsembleConfig:
    """Seed list × variant grid, plus parallelism.

    ``workers=1`` runs trials inline in this process (what tests use);
    ``workers=0`` uses one process per core, capped at the trial count.
    ``trial_batch > 1`` runs same-variant seeds as grouped batches (GC
    suspended across each group) — results are bit-identical per seed;
    only timing fields change.
    """

    seeds: tuple[int, ...]
    variants: tuple[ConfigVariant, ...] = (ConfigVariant(name="base"),)
    workers: int = 0
    trial_batch: int = 1

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("an ensemble needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("ensemble seeds must be distinct")
        if not self.variants:
            raise ConfigurationError("an ensemble needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")
        if self.trial_batch < 1:
            raise ConfigurationError("trial_batch must be at least 1")

    def trials(self) -> list[TrialSpec]:
        """The fully-resolved trial list, variant-major, in a stable order.

        Delegates to the engine's expansion over :class:`DetectionStudy`,
        so this inspection view can never drift from what
        :func:`run_ensemble` actually executes.
        """
        from repro.experiments.engine import expand_trials

        return expand_trials(DetectionStudy(variants=self.variants),
                             self.seeds)


@dataclass(frozen=True, slots=True)
class TrialResult:
    """Per-trial metrics (picklable output of :func:`run_trial`)."""

    trial_id: int
    variant: str
    seed: int
    candidate_count: int
    analyzed_count: int
    discard_counts: dict[str, int]
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int
    remote_fraction_by_ixp: dict[str, float]
    shortfall: int
    build_s: float
    collect_s: float
    filter_s: float

    @property
    def precision(self) -> float | None:
        """Precision of the remote calls; None when nothing was called."""
        called = self.true_positives + self.false_positives
        return self.true_positives / called if called else None

    @property
    def recall(self) -> float | None:
        """Recall of the remote calls; None with no true remotes."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else None


def run_trial(spec: TrialSpec) -> TrialResult:
    """Execute one standalone trial: build world → collect → filter → validate."""
    t0 = time.perf_counter()
    world = build_detection_world(spec.world)
    build_s = time.perf_counter() - t0
    return measure_detection_trial(spec, world, build_s)


def measure_detection_trial(
    spec: TrialSpec, world: DetectionWorld, build_s: float
) -> TrialResult:
    """Measure one trial against an already-built world.

    The world is read-only here (the campaign keeps its rate-limit ledger
    on its own client, and identification draws are pure in the world
    seed), so the engine can share one build across every trial whose
    world configuration matches.
    """
    t1 = time.perf_counter()
    measurements = ProbeCampaign(world, spec.campaign).collect()
    t2 = time.perf_counter()
    report = FilterPipeline(spec.campaign.filters).run(measurements)
    t3 = time.perf_counter()
    result = build_result(
        measurements=measurements,
        report=report,
        threshold_ms=spec.campaign.remoteness_threshold_ms,
    )
    truth = validate_against_truth(world, result)

    per_ixp_total: dict[str, int] = {}
    per_ixp_remote: dict[str, int] = {}
    for iface in result.analyzed:
        per_ixp_total[iface.ixp_acronym] = per_ixp_total.get(iface.ixp_acronym, 0) + 1
        if iface.remote(result.threshold_ms):
            per_ixp_remote[iface.ixp_acronym] = (
                per_ixp_remote.get(iface.ixp_acronym, 0) + 1
            )
    remote_fraction = {
        acr: per_ixp_remote.get(acr, 0) / total
        for acr, total in sorted(per_ixp_total.items())
    }
    return TrialResult(
        trial_id=spec.trial_id,
        variant=spec.variant,
        seed=spec.seed,
        candidate_count=len(measurements),
        analyzed_count=result.analyzed_count(),
        discard_counts=dict(report.discard_counts),
        true_positives=truth.true_positives,
        false_positives=truth.false_positives,
        true_negatives=truth.true_negatives,
        false_negatives=truth.false_negatives,
        remote_fraction_by_ixp=remote_fraction,
        shortfall=world.total_shortfall(),
        build_s=build_s,
        collect_s=t2 - t1,
        filter_s=t3 - t2,
    )


@dataclass(frozen=True, slots=True)
class DetectionStudy:
    """The detection ensemble as a :class:`repro.experiments.engine.Study`."""

    variants: tuple[ConfigVariant, ...] = (ConfigVariant(name="base"),)

    name = "detection"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ConfigurationError("a study needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")

    def variant_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variants)

    def resolve(self, variant: str, seed: int, trial_id: int) -> TrialSpec:
        v = next(v for v in self.variants if v.name == variant)
        # The world takes the trial seed directly; the campaign seed is
        # *derived* from it so world and campaign streams stay independent.
        return TrialSpec(
            trial_id=trial_id,
            variant=variant,
            seed=seed,
            world=replace(v.world, seed=seed),
            campaign=replace(
                v.campaign, seed=derive_seed(seed, "ensemble", "campaign")
            ),
        )

    def world_key(self, spec: TrialSpec) -> DetectionWorldConfig:
        # Variants sweeping campaign/filter axes share the same world
        # config per seed, so a threshold grid builds each world once.
        return spec.world

    def build(self, spec: TrialSpec) -> DetectionWorld:
        return build_detection_world(spec.world)

    def measure(
        self, spec: TrialSpec, world: DetectionWorld, build_s: float
    ) -> TrialResult:
        return measure_detection_trial(spec, world, build_s)

    def run_batch(self, specs: Sequence[TrialSpec]) -> list[TrialResult]:
        """Measure a same-variant seed batch of detection trials.

        Detection worlds are object graphs (per-IXP fabrics, interface
        registries), so unlike the offload studies there is no
        struct-of-arrays realization; the batch win here is suspending the
        cyclic GC across the whole group — world construction allocates
        hundreds of thousands of small objects per seed and the collector
        otherwise fires mid-build.  Per-seed results are bit-identical to
        ``build`` + ``measure`` because the loop below *is* that code.
        """
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            results = []
            for spec in specs:
                t0 = time.perf_counter()
                world = self.build(spec)
                build_s = time.perf_counter() - t0
                results.append(self.measure(spec, world, build_s))
            return results
        finally:
            if resume_gc:
                gc.enable()

    def metrics(self, result: TrialResult) -> dict[str, float]:
        out = {
            "analyzed": float(result.analyzed_count),
            "candidates": float(result.candidate_count),
        }
        if result.precision is not None:
            out["precision"] = result.precision
        if result.recall is not None:
            out["recall"] = result.recall
        return out

    def encode(self, result: TrialResult) -> dict:
        return asdict(result)

    def decode(self, payload: dict) -> TrialResult:
        return TrialResult(**payload)


@dataclass
class EnsembleResult:
    """All trial results plus the config that produced them."""

    config: EnsembleConfig
    trials: list[TrialResult]
    wall_s: float = 0.0
    world_builds: int = 0   # worlds actually built (engine cache misses)
    world_reuses: int = 0   # trials served from a shared world build
    resumed: int = 0        # trials loaded from --out artifacts
    _by_variant: dict[str, list[TrialResult]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_variant:
            grouped: dict[str, list[TrialResult]] = {}
            for trial in self.trials:
                grouped.setdefault(trial.variant, []).append(trial)
            self._by_variant = grouped

    def by_variant(self) -> dict[str, list[TrialResult]]:
        """Trials grouped by variant name, in config order."""
        return dict(self._by_variant)

    def summaries(self) -> list[VariantSummary]:
        """Mean ± 95% CI aggregates, one per variant."""
        out = []
        for variant, trials in self._by_variant.items():
            out.append(_summarize(variant, trials))
        return out


def _summarize(variant: str, trials: list[TrialResult]) -> VariantSummary:
    filter_names: list[str] = []
    for trial in trials:
        for name in trial.discard_counts:
            if name not in filter_names:
                filter_names.append(name)
    ixps = sorted({acr for t in trials for acr in t.remote_fraction_by_ixp})
    return VariantSummary(
        variant=variant,
        trials=len(trials),
        precision=optional_mean_ci([t.precision for t in trials]),
        recall=optional_mean_ci([t.recall for t in trials]),
        analyzed=mean_ci([t.analyzed_count for t in trials]),
        candidates=mean_ci([t.candidate_count for t in trials]),
        discards={
            name: mean_ci([t.discard_counts.get(name, 0) for t in trials])
            for name in filter_names
        },
        # Trials where an IXP had no analyzed interfaces carry no fraction
        # for it; they are excluded (not counted as 0.0) so means/CIs
        # reflect only trials with evidence.
        remote_fraction_by_ixp={
            acr: mean_ci([
                t.remote_fraction_by_ixp[acr]
                for t in trials
                if acr in t.remote_fraction_by_ixp
            ])
            for acr in ixps
        },
        shortfall=mean_ci([t.shortfall for t in trials]),
    )


def run_ensemble(
    config: EnsembleConfig, out_dir: str | None = None
) -> EnsembleResult:
    """Run every trial of ``config`` through the study engine.

    Results come back in trial order regardless of completion order, so
    ensembles are reproducible artifacts: same config, same report.  With
    ``out_dir`` the run is resumable (see :mod:`repro.experiments.engine`).
    """
    result = run_study(
        DetectionStudy(variants=config.variants),
        StudyConfig(seeds=config.seeds, workers=config.workers,
                    out_dir=out_dir, trial_batch=config.trial_batch),
    )
    return EnsembleResult(
        config=config,
        trials=result.trials,
        wall_s=result.wall_s,
        world_builds=result.world_builds,
        world_reuses=result.world_reuses,
        resumed=result.resumed,
    )
