"""Multi-seed, multi-configuration ensemble experiments.

Every headline number in the reproduction — precision, recall, per-filter
discard counts, per-IXP remote fractions — was, until this subsystem, read
off a *single* seed.  The paper (and Nomikos et al.'s "O Peer, Where Art
Thou?" follow-up) validate detection quality against ground truth whose
robustness only shows up across repeated trials; an *ensemble* runs the
full detection study (build world → collect → filter → validate) over a
grid of seeds × configuration variants and reports mean ± confidence
intervals instead of point estimates.

Usage
-----
Build a config, run it, render the report::

    from repro.experiments import (
        ConfigVariant, EnsembleConfig, grid_variants,
        render_ensemble_report, run_ensemble,
    )
    from repro.core.detection import CampaignConfig
    from repro.sim.scenarios import mini_specs

    # 16 seeds x one variant over the 3-IXP mini world:
    config = EnsembleConfig(
        seeds=tuple(range(16)),
        variants=(
            ConfigVariant(
                name="mini3",
                world=DetectionWorldConfig(specs=mini_specs()),
            ),
        ),
        workers=0,           # 0 = one process per core (capped at #trials)
    )
    result = run_ensemble(config)
    print(render_ensemble_report(result))

Config grids sweep any DetectionWorldConfig / CampaignConfig /
FilterConfig field via dotted axes, taking the cartesian product::

    variants = grid_variants(
        world=DetectionWorldConfig(specs=mini_specs()),
        axes={
            "campaign.remoteness_threshold_ms": (5.0, 10.0, 20.0),
            "filters.min_replies_per_lg": (6, 8),
        },
    )   # 6 variants; x 16 seeds = 96 trials

Trials are independent and run under a ``ProcessPoolExecutor``
(``workers=1`` runs inline, which tests use).  Each trial's campaign seed
is derived from its world seed via :func:`repro.rand.derive_seed`, so
ensembles are fully reproducible and adding variants never perturbs
existing trials.  The CLI front end is ``repro ensemble`` (see
``repro.cli``); ``examples/ensemble_study.py`` is a worked example.

The *offload* study has its own ensemble runner
(:mod:`repro.experiments.offload`): seeds × ``OffloadWorldConfig`` grids
(× peer groups), reporting mean ± 95% CI maximum offload fractions,
offloadable-network counts and the greedy IXP-expansion consensus.  Its
CLI front end is ``repro offload-ensemble``.
"""

from repro.experiments.aggregate import MeanCI, VariantSummary, mean_ci
from repro.experiments.ensemble import (
    ConfigVariant,
    EnsembleConfig,
    EnsembleResult,
    TrialResult,
    TrialSpec,
    grid_variants,
    run_ensemble,
    run_trial,
)
from repro.experiments.offload import (
    OffloadEnsembleConfig,
    OffloadEnsembleResult,
    OffloadTrialResult,
    OffloadTrialSpec,
    OffloadVariant,
    OffloadVariantSummary,
    RankConsensus,
    offload_grid_variants,
    run_offload_ensemble,
    run_offload_trial,
)
from repro.experiments.report import (
    render_ensemble_report,
    render_offload_ensemble_report,
)

__all__ = [
    "ConfigVariant",
    "EnsembleConfig",
    "EnsembleResult",
    "MeanCI",
    "OffloadEnsembleConfig",
    "OffloadEnsembleResult",
    "OffloadTrialResult",
    "OffloadTrialSpec",
    "OffloadVariant",
    "OffloadVariantSummary",
    "RankConsensus",
    "TrialResult",
    "TrialSpec",
    "VariantSummary",
    "grid_variants",
    "mean_ci",
    "offload_grid_variants",
    "render_ensemble_report",
    "render_offload_ensemble_report",
    "run_ensemble",
    "run_offload_ensemble",
    "run_offload_trial",
    "run_trial",
]
