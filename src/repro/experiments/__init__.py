"""Multi-seed, multi-configuration studies on one pluggable engine.

Every headline number in the reproduction — precision/recall (Section 3),
offload fractions (Section 4), bill savings and the equation 14 verdict
(Section 5) — is a distribution over seeds, not a point estimate.  This
package runs those distributions through a single *study engine*:

``engine``
    The :class:`~repro.experiments.engine.Study` protocol (``build → run
    → measure`` per trial, typed ``TrialResult`` payloads) plus the data
    model and artifact format: :class:`StudyConfig`, :class:`StudyResult`,
    content-addressed JSONL artifacts
    (``<study>_<fingerprint>_trials.jsonl`` — see
    :func:`~repro.experiments.engine.study_fingerprint`) and
    :func:`~repro.experiments.engine.run_study`, a blocking front end
    over the scheduler's execution core.

``scheduler``
    The execution machinery, split out of ``run_study``:
    :func:`~repro.experiments.scheduler.execute_study` owns the
    seed × grid expansion, ``ProcessPoolExecutor`` fan-out, per-variant
    world caching (trials that share a world configuration reuse one
    build), resumable sharded execution (skip-completed on rerun),
    streaming mean ± 95% CI aggregation, thread-safe per-trial deadlines
    and the ``on_trial`` / ``cancel`` hooks; and
    :class:`~repro.experiments.scheduler.StudyScheduler` is a resumable
    priority job queue over it (the engine room of ``repro serve`` — see
    the data-flow section below).

``ensemble`` / ``offload`` / ``economics`` / ``joint`` / ``failover``
    The five studies: :class:`DetectionStudy` (Section 3 pipeline:
    world → campaign → filters → ground-truth validation),
    :class:`OffloadStudy` (Section 4: exclusions → estimator → greedy
    expansion, with the Section 4.2 exclusion rules switchable per
    variant), :class:`EconomicsStudy` (Sections 3+4+5 end-to-end:
    measured offload curve → decay fit → 95th-percentile billing →
    eq. 14 viability), :class:`JointStudy` (below) and
    :class:`FailoverStudy` (offload savings eroded by pseudowire dark
    windows), each with its grid builder and a config/result pair.
    ``run_ensemble`` / ``run_offload_ensemble`` /
    ``run_economics_ensemble`` / ``run_joint_ensemble`` /
    ``run_failover_ensemble`` are thin front ends over ``run_study``.

``mega`` / ``transport``
    The mega-scale tier: :class:`MegaStudy` runs the greedy Euro-IX
    expansion over 10⁵+-network :class:`~repro.sim.megatopo.MegaWorld`
    worlds (columnar pool, CAIDA-style hierarchy, no per-network
    objects), and :mod:`~repro.experiments.transport` is the zero-copy
    shared-memory world transport those worlds ride to worker processes
    (see the lifecycle section below).  CLI: ``repro study mega``.

``scenarios``
    The scenario library: named, parameterized grids over these studies
    (``behavior-stress``, ``exclusion-ablation``, ``price-plane``,
    ``joint``, ``failover``, ``churned-detection``) resolved from preset
    names into runnable study + :class:`StudyConfig` pairs — the CLI
    front end is ``repro scenarios list|run``.

The fault data flow (chaos schedule → probes → billing)
-------------------------------------------------------
Fault injection is deterministic and *opt-in*: setting a
:class:`~repro.faults.schedule.FaultConfig` on a
:class:`~repro.core.detection.campaign.CampaignConfig` (or a
:class:`FailoverVariant`) materializes a
:class:`~repro.faults.schedule.FaultSchedule` once per campaign from
dedicated, named child streams of the campaign seed — never from the
streams the clean simulation consumes, so ``faults=None`` and zero
intensity are byte-identical to a fault-free run.  The streams:

* ``(seed, "faults", "pseudowire-dark", ixp, address)`` — remote-peer
  dark windows (failover RTT shifts; transit fallback in the failover
  study);
* ``(seed, "faults", "port-flap", ixp, address)`` — IXP port flaps
  (probes unanswered while flapping);
* ``(seed, "faults", "lg-outage", server)`` and ``(seed, "faults",
  "rate-limit-storm", server)`` — LG unavailability windows, merged
  into one per-server downtime function;
* ``(seed, "faults", "probe-loss", ixp)`` — loss bursts scaling every
  response probability down by the configured severity;
* ``(seed, "faults", "backoff", ixp, operator)`` — retry jitter.  Both
  probe engines plan retries on the *identical* planned query grid with
  this one stream, so retry counts, served masks and effective send
  times agree bit-for-bit across ``batch`` and ``scalar``.

The trial-batch data flow (seed groups → one array program)
-----------------------------------------------------------
``StudyConfig.trial_batch = k`` (CLI: ``--trial-batch``) turns on the
batched execution path: after grid expansion and resume filtering, the
engine chunks the pending trials of **each variant** into groups of up
to k seeds and hands every multi-trial group to the study's
``run_batch(specs)`` hook instead of looping ``build → measure`` per
trial.  The batched studies realize the whole group as one array
program — :func:`repro.sim.offload_batch.build_offload_views` stacks k
seeds' worlds along one extra leading trial axis over shared
struct-of-arrays static tables (one per variant, since statics depend
only on the variant's config), then splits per-seed views back out for
measurement.  Batching is strictly a **performance path**: per-seed
child streams are drawn in the same fixed order the
``draw-engine-parity`` lint rule verifies, so a ``trial_batch=k`` run
is bit-identical (modulo timing fields) to k independent single-trial
runs — ``tests/test_trial_batch.py`` pins this for the detection,
offload and economics studies.  Everything downstream is unchanged:
results fan into the same JSONL artifacts, resume skips completed
trials at per-trial granularity (a run killed mid-batch re-executes
only the unwritten trials), and a group whose ``run_batch`` raises
(anything but :class:`~repro.errors.ConfigurationError`) or returns the
wrong number of results falls back to per-trial execution — counted in
``StudyResult.batch_fallbacks`` and surfaced by ``coverage_note()`` —
so batching can never lose a trial or change a number.

The shared-memory world transport (build once → attach everywhere)
-------------------------------------------------------------------
``StudyConfig.transport = "shm"`` (CLI: ``--transport shm``) turns on
the zero-copy dispatch path for studies exposing the two transport
hooks — ``export_world(world) -> (meta, columns)`` returning plain
numeric numpy arrays, and ``attach_world(meta, columns) -> world``
rebuilding a view-backed world.  The lifecycle, end to end:

1. **Build + publish (parent).**  For each world-key group the parent
   builds the world once (under the trial deadline), exports its
   columns and packs them into one
   ``multiprocessing.shared_memory`` segment via
   :class:`~repro.experiments.transport.SegmentManager`, created with
   one reference per trial in the group.
2. **Dispatch (tiny pickles).**  Each trial ships only a
   :class:`~repro.experiments.transport.SegmentDescriptor` (segment
   name + per-column dtype/shape/offset) — bytes, not megabytes —
   through the normal executor channel.
3. **Attach (worker).**  The worker attaches, drops the duplicate
   ``resource_tracker`` registration (the parent owns the lifetime),
   rebuilds read-only numpy views over the shared pages and measures
   the trial; its ``finally`` closes the mapping.
4. **Release + unlink (parent).**  As each trial's future completes
   (success, failure or retry exhaustion) the parent releases one
   reference; the segment is unlinked at zero.  ``close_all()`` runs
   in the engine's ``finally`` so quarantined groups, pool restarts,
   and interrupted runs all converge on the same sweep — a killed
   study never leaks ``/dev/shm`` segments.

A world that cannot cross the transport (export raises, or a column
holds Python objects) falls back to the pickle path for that group —
counted in ``StudyResult.transport_fallbacks`` and surfaced by
``coverage_note()``; results are unaffected.  Raw ``SharedMemory``
construction outside :mod:`repro.experiments.transport` is a lint
error (``pool-raw-shm``), keeping every segment inside the refcounted
lifecycle above.

The trial-quarantine lifecycle
------------------------------
:func:`run_study` hardens every trial against worker failure.  A trial
that raises (or exceeds ``StudyConfig.trial_timeout_s``) is retried up
to ``trial_retries`` times, then — with ``quarantine=True``, the
default — recorded as a :class:`~repro.experiments.engine.TrialFailure`
instead of aborting the study: the group's remaining trials still run,
aggregates cover the survivors, and
:meth:`~repro.experiments.engine.StudyResult.coverage_note` reports the
degradation.  With ``out_dir`` set, a quarantined trial appends a
``failed`` JSONL row::

    {"trial_id": N, "variant": "...", "seed": S,
     "status": "failed", "error": "ExcType: message", "attempts": K}

Failed rows are fingerprint-compatible with success rows and resume-safe
(a rerun skips them like completed trials).
:class:`~repro.errors.ConfigurationError` is never quarantined — a
malformed grid should abort loudly.  A ``BrokenProcessPool`` (a worker
died mid-group) restarts the executor once over the unfinished groups
before surfacing.

The serve data flow (HTTP request → job queue → content-addressed store)
-------------------------------------------------------------------------
``repro serve`` (package :mod:`repro.serve`) fronts the scheduler over
stdlib-only asyncio HTTP.  One submission flows:

1. **Resolve.**  ``POST /studies`` carries a declarative JSON request
   (``{"study": "detection", "config": {...}}``);
   :func:`repro.serve.jobs.resolve_request` turns it into a live
   ``(Study, StudyConfig)`` pair — and the scheduler journals the JSON
   verbatim to ``<store>/jobs.jsonl``, so a killed service re-enqueues
   the job on restart (:meth:`StudyScheduler.recover`).
2. **Queue.**  The job enters the priority queue (higher ``priority``
   first, FIFO ties) with ``out_dir`` redirected into the scheduler's
   store directory, making every artifact content-addressed by the
   configuration fingerprint.
3. **Execute or answer from the store.**  A scheduler thread runs
   :func:`execute_study` under a per-fingerprint lock: trials already
   in the artifact resume without executing (counted as *trial hits*),
   and a submission whose fingerprint has every trial on disk completes
   as a *full cache hit* without running anything — duplicate
   submissions can never compute the same trial twice.  Per-trial
   deadlines hold on these non-main threads via the reaped helper
   (SIGALRM stays the main-thread fast path).
4. **Observe.**  ``GET /studies/{id}`` snapshots progress (``?watch=1``
   streams it as chunked JSON lines), ``DELETE`` cancels (queued jobs
   immediately; running jobs at the next dispatch step, sweeping shm
   segments), ``GET /results/{fingerprint}`` replays artifact rows, and
   ``GET /metrics`` exposes the hit/miss counters.

``experiments`` never imports ``serve`` — the resolver is injected — so
the engine stays usable without the service.  CLI: ``repro serve``
(``--smoke`` runs the end-to-end gate behind ``make serve-smoke``).

The joint data flow (detected set → offload → billing)
------------------------------------------------------
:class:`JointStudy` is the one study whose trials cross the Section 3/4
boundary.  Per seed it builds a *world family* — one detection world and
one offload world on the same trial seed — and chains them:

1. the detection campaign runs and is validated against ground truth,
   yielding the trial's measured confusion (precision, recall,
   false-positive rate) and the ground-truth remote fraction;
2. the offload world's candidate members are assigned oracle remoteness
   at that measured fraction, and the confusion is replayed over them:
   remote peers are *detected* with probability ``recall``, direct
   members are falsely called with the measured false-positive rate;
3. the **detected** set — not the oracle — is fed through
   :meth:`~repro.core.offload.PeerGroups.restrict` into the
   :class:`~repro.core.offload.OffloadEstimator`, giving the offload
   fraction an operator would estimate from its own peer map, alongside
   the oracle and realized (detected ∩ oracle) fractions;
4. all three peer maps are billed under the Section 2.1 95th-percentile
   scheme on one consistent component decomposition of the transit
   series, yielding the realized savings and the forecast (believed −
   realized) billing error.

Usage — 16 seeds × three thresholds of the 3-IXP detection world::

    from repro.experiments import EnsembleConfig, grid_variants, run_ensemble
    from repro.reporting import render_ensemble_report
    from repro.sim.detection_world import DetectionWorldConfig
    from repro.sim.scenarios import mini_specs

    config = EnsembleConfig(
        seeds=tuple(range(16)),
        variants=grid_variants(
            world=DetectionWorldConfig(specs=mini_specs()),
            axes={"campaign.remoteness_threshold_ms": (5.0, 10.0, 20.0)},
        ),
        workers=0,          # 0 = one process per core (capped at #groups)
    )
    result = run_ensemble(config)          # builds each seed's world ONCE
    print(render_ensemble_report(result))  # mean ± 95% CI per variant

Grids sweep any config field via dotted axes (``world.<field>``,
``campaign.<field>``, ``filters.<field>``); each trial's campaign seed is
derived from its world seed via :func:`repro.rand.derive_seed`, so
ensembles are fully reproducible and adding variants never perturbs
existing trials.  Passing ``out_dir`` to any runner makes the run
resumable: kill it after N trials, rerun with the same config, and only
the remaining trials execute.  The CLI front end is ``repro study
detection|offload|economics`` (``repro ensemble`` and ``repro
offload-ensemble`` remain as aliases); ``examples/ensemble_study.py`` and
``examples/economics_study.py`` are worked examples.
"""

from repro.experiments.aggregate import (
    MeanCI,
    StreamingMeanCI,
    VariantSummary,
    mean_ci,
)
from repro.experiments.engine import (
    Study,
    StudyConfig,
    StudyResult,
    expand_trials,
    run_study,
    study_fingerprint,
)
from repro.experiments.scheduler import (
    JobState,
    StudyCancelled,
    StudyJob,
    StudyScheduler,
    execute_study,
)
from repro.experiments.ensemble import (
    ConfigVariant,
    DetectionStudy,
    EnsembleConfig,
    EnsembleResult,
    TrialResult,
    TrialSpec,
    grid_variants,
    run_ensemble,
    run_trial,
)
from repro.experiments.offload import (
    OffloadEnsembleConfig,
    OffloadEnsembleResult,
    OffloadStudy,
    OffloadTrialResult,
    OffloadTrialSpec,
    OffloadVariant,
    OffloadVariantSummary,
    RankConsensus,
    offload_grid_variants,
    run_offload_ensemble,
    run_offload_trial,
)
from repro.experiments.economics import (
    EconomicsEnsembleConfig,
    EconomicsEnsembleResult,
    EconomicsStudy,
    EconomicsTrialResult,
    EconomicsTrialSpec,
    EconomicsVariant,
    EconomicsVariantSummary,
    economics_grid_variants,
    run_economics_ensemble,
    run_economics_trial,
)
from repro.experiments.joint import (
    JointEnsembleConfig,
    JointEnsembleResult,
    JointStudy,
    JointTrialResult,
    JointTrialSpec,
    JointVariant,
    JointVariantSummary,
    run_joint_ensemble,
    run_joint_trial,
)
from repro.experiments.failover import (
    FailoverEnsembleConfig,
    FailoverEnsembleResult,
    FailoverStudy,
    FailoverTrialResult,
    FailoverTrialSpec,
    FailoverVariant,
    FailoverVariantSummary,
    measure_failover_trial,
    run_failover_ensemble,
)
from repro.experiments.mega import (
    MegaStudy,
    MegaTrialResult,
    MegaTrialSpec,
    MegaVariant,
    measure_mega_trial,
)
from repro.experiments.transport import (
    AttachedColumns,
    ColumnSpec,
    SegmentDescriptor,
    SegmentManager,
    attach_columns,
)
from repro.experiments.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRun,
    get_scenario,
    scenario_names,
)
from repro.experiments.report import (
    render_economics_ensemble_report,
    render_ensemble_report,
    render_failover_ensemble_report,
    render_joint_ensemble_report,
    render_offload_ensemble_report,
)

__all__ = [
    "AttachedColumns",
    "ColumnSpec",
    "ConfigVariant",
    "DetectionStudy",
    "EconomicsEnsembleConfig",
    "EconomicsEnsembleResult",
    "EconomicsStudy",
    "EconomicsTrialResult",
    "EconomicsTrialSpec",
    "EconomicsVariant",
    "EconomicsVariantSummary",
    "EnsembleConfig",
    "EnsembleResult",
    "FailoverEnsembleConfig",
    "FailoverEnsembleResult",
    "FailoverStudy",
    "FailoverTrialResult",
    "FailoverTrialSpec",
    "FailoverVariant",
    "FailoverVariantSummary",
    "JointEnsembleConfig",
    "JointEnsembleResult",
    "JointStudy",
    "JointTrialResult",
    "JobState",
    "JointTrialSpec",
    "JointVariant",
    "JointVariantSummary",
    "MeanCI",
    "MegaStudy",
    "MegaTrialResult",
    "MegaTrialSpec",
    "MegaVariant",
    "OffloadEnsembleConfig",
    "OffloadEnsembleResult",
    "OffloadStudy",
    "OffloadTrialResult",
    "OffloadTrialSpec",
    "OffloadVariant",
    "OffloadVariantSummary",
    "RankConsensus",
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "SegmentDescriptor",
    "SegmentManager",
    "StreamingMeanCI",
    "Study",
    "StudyCancelled",
    "StudyConfig",
    "StudyJob",
    "StudyResult",
    "StudyScheduler",
    "TrialResult",
    "TrialSpec",
    "VariantSummary",
    "attach_columns",
    "economics_grid_variants",
    "execute_study",
    "expand_trials",
    "get_scenario",
    "grid_variants",
    "mean_ci",
    "measure_failover_trial",
    "measure_mega_trial",
    "offload_grid_variants",
    "render_economics_ensemble_report",
    "render_ensemble_report",
    "render_failover_ensemble_report",
    "render_joint_ensemble_report",
    "render_offload_ensemble_report",
    "run_economics_ensemble",
    "run_economics_trial",
    "run_ensemble",
    "run_failover_ensemble",
    "run_joint_ensemble",
    "run_joint_trial",
    "run_offload_ensemble",
    "run_offload_trial",
    "run_study",
    "run_trial",
    "scenario_names",
    "study_fingerprint",
]
