"""Multi-seed, multi-configuration studies on one pluggable engine.

Every headline number in the reproduction — precision/recall (Section 3),
offload fractions (Section 4), bill savings and the equation 14 verdict
(Section 5) — is a distribution over seeds, not a point estimate.  This
package runs those distributions through a single *study engine*:

``engine``
    The :class:`~repro.experiments.engine.Study` protocol (``build → run
    → measure`` per trial, typed ``TrialResult`` payloads) and the shared
    :func:`~repro.experiments.engine.run_study` scheduler.  The engine
    owns the seed × grid expansion, ``ProcessPoolExecutor`` fan-out,
    per-variant world caching (trials that share a world configuration
    reuse one build), resumable sharded execution (JSONL trial artifacts
    under an ``out_dir``, skip-completed on rerun) and streaming
    mean ± 95% CI aggregation.

``ensemble`` / ``offload`` / ``economics`` / ``joint``
    The four studies: :class:`DetectionStudy` (Section 3 pipeline:
    world → campaign → filters → ground-truth validation),
    :class:`OffloadStudy` (Section 4: exclusions → estimator → greedy
    expansion, with the Section 4.2 exclusion rules switchable per
    variant), :class:`EconomicsStudy` (Sections 3+4+5 end-to-end:
    measured offload curve → decay fit → 95th-percentile billing →
    eq. 14 viability) and :class:`JointStudy` (below), each with its
    grid builder and a config/result pair.  ``run_ensemble`` /
    ``run_offload_ensemble`` / ``run_economics_ensemble`` /
    ``run_joint_ensemble`` are thin front ends over ``run_study``.

``scenarios``
    The scenario library: named, parameterized grids over these studies
    (``behavior-stress``, ``exclusion-ablation``, ``price-plane``,
    ``joint``) resolved from preset names into runnable
    study + :class:`StudyConfig` pairs — the CLI front end is ``repro
    scenarios list|run``.

The joint data flow (detected set → offload → billing)
------------------------------------------------------
:class:`JointStudy` is the one study whose trials cross the Section 3/4
boundary.  Per seed it builds a *world family* — one detection world and
one offload world on the same trial seed — and chains them:

1. the detection campaign runs and is validated against ground truth,
   yielding the trial's measured confusion (precision, recall,
   false-positive rate) and the ground-truth remote fraction;
2. the offload world's candidate members are assigned oracle remoteness
   at that measured fraction, and the confusion is replayed over them:
   remote peers are *detected* with probability ``recall``, direct
   members are falsely called with the measured false-positive rate;
3. the **detected** set — not the oracle — is fed through
   :meth:`~repro.core.offload.PeerGroups.restrict` into the
   :class:`~repro.core.offload.OffloadEstimator`, giving the offload
   fraction an operator would estimate from its own peer map, alongside
   the oracle and realized (detected ∩ oracle) fractions;
4. all three peer maps are billed under the Section 2.1 95th-percentile
   scheme on one consistent component decomposition of the transit
   series, yielding the realized savings and the forecast (believed −
   realized) billing error.

Usage — 16 seeds × three thresholds of the 3-IXP detection world::

    from repro.experiments import EnsembleConfig, grid_variants, run_ensemble
    from repro.reporting import render_ensemble_report
    from repro.sim.detection_world import DetectionWorldConfig
    from repro.sim.scenarios import mini_specs

    config = EnsembleConfig(
        seeds=tuple(range(16)),
        variants=grid_variants(
            world=DetectionWorldConfig(specs=mini_specs()),
            axes={"campaign.remoteness_threshold_ms": (5.0, 10.0, 20.0)},
        ),
        workers=0,          # 0 = one process per core (capped at #groups)
    )
    result = run_ensemble(config)          # builds each seed's world ONCE
    print(render_ensemble_report(result))  # mean ± 95% CI per variant

Grids sweep any config field via dotted axes (``world.<field>``,
``campaign.<field>``, ``filters.<field>``); each trial's campaign seed is
derived from its world seed via :func:`repro.rand.derive_seed`, so
ensembles are fully reproducible and adding variants never perturbs
existing trials.  Passing ``out_dir`` to any runner makes the run
resumable: kill it after N trials, rerun with the same config, and only
the remaining trials execute.  The CLI front end is ``repro study
detection|offload|economics`` (``repro ensemble`` and ``repro
offload-ensemble`` remain as aliases); ``examples/ensemble_study.py`` and
``examples/economics_study.py`` are worked examples.
"""

from repro.experiments.aggregate import (
    MeanCI,
    StreamingMeanCI,
    VariantSummary,
    mean_ci,
)
from repro.experiments.engine import (
    Study,
    StudyConfig,
    StudyResult,
    expand_trials,
    run_study,
)
from repro.experiments.ensemble import (
    ConfigVariant,
    DetectionStudy,
    EnsembleConfig,
    EnsembleResult,
    TrialResult,
    TrialSpec,
    grid_variants,
    run_ensemble,
    run_trial,
)
from repro.experiments.offload import (
    OffloadEnsembleConfig,
    OffloadEnsembleResult,
    OffloadStudy,
    OffloadTrialResult,
    OffloadTrialSpec,
    OffloadVariant,
    OffloadVariantSummary,
    RankConsensus,
    offload_grid_variants,
    run_offload_ensemble,
    run_offload_trial,
)
from repro.experiments.economics import (
    EconomicsEnsembleConfig,
    EconomicsEnsembleResult,
    EconomicsStudy,
    EconomicsTrialResult,
    EconomicsTrialSpec,
    EconomicsVariant,
    EconomicsVariantSummary,
    economics_grid_variants,
    run_economics_ensemble,
    run_economics_trial,
)
from repro.experiments.joint import (
    JointEnsembleConfig,
    JointEnsembleResult,
    JointStudy,
    JointTrialResult,
    JointTrialSpec,
    JointVariant,
    JointVariantSummary,
    run_joint_ensemble,
    run_joint_trial,
)
from repro.experiments.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRun,
    get_scenario,
    scenario_names,
)
from repro.experiments.report import (
    render_economics_ensemble_report,
    render_ensemble_report,
    render_joint_ensemble_report,
    render_offload_ensemble_report,
)

__all__ = [
    "ConfigVariant",
    "DetectionStudy",
    "EconomicsEnsembleConfig",
    "EconomicsEnsembleResult",
    "EconomicsStudy",
    "EconomicsTrialResult",
    "EconomicsTrialSpec",
    "EconomicsVariant",
    "EconomicsVariantSummary",
    "EnsembleConfig",
    "EnsembleResult",
    "JointEnsembleConfig",
    "JointEnsembleResult",
    "JointStudy",
    "JointTrialResult",
    "JointTrialSpec",
    "JointVariant",
    "JointVariantSummary",
    "MeanCI",
    "OffloadEnsembleConfig",
    "OffloadEnsembleResult",
    "OffloadStudy",
    "OffloadTrialResult",
    "OffloadTrialSpec",
    "OffloadVariant",
    "OffloadVariantSummary",
    "RankConsensus",
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "StreamingMeanCI",
    "Study",
    "StudyConfig",
    "StudyResult",
    "TrialResult",
    "TrialSpec",
    "VariantSummary",
    "economics_grid_variants",
    "expand_trials",
    "get_scenario",
    "grid_variants",
    "mean_ci",
    "offload_grid_variants",
    "render_economics_ensemble_report",
    "render_ensemble_report",
    "render_joint_ensemble_report",
    "render_offload_ensemble_report",
    "run_economics_ensemble",
    "run_economics_trial",
    "run_ensemble",
    "run_joint_ensemble",
    "run_joint_trial",
    "run_offload_ensemble",
    "run_offload_trial",
    "run_study",
    "run_trial",
    "scenario_names",
]
