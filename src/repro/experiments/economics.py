"""The end-to-end economics ensemble: Sections 3+4+5 in one study.

Each trial runs the full measured-economics pipeline of the paper under
one (seed, variant) pair:

1. build the offload world and apply the Section 4.2 exclusion rules
   (:class:`~repro.core.offload.PeerGroups` → ``OffloadEstimator``);
2. measure Figure 9's remaining-transit curve
   (:func:`~repro.core.offload.remaining_traffic_series`) and fit the
   equation 3 decay rate ``b`` from it;
3. synthesise the month of 5-minute NetFlow series (transit and its
   offloadable share, peaks coinciding as in Figure 5b) and bill both
   under Section 2.1's 95th-percentile scheme
   (:func:`~repro.netflow.billing.offload_billing_report`);
4. evaluate the Section 5 cost model at the *measured* decay — the
   closed-form optima (eq. 11/13) and the equation 14 viability verdict.

The ensemble then reports mean ± 95% CI transit-bill savings fractions
and a viability *vote* across seeds — treating peering economics as a
distribution over scenarios rather than a point estimate, the way the
paid-peering literature (Wang–Xu–Ma 2018; Nikkhah–Jordan 2023) frames it.

The billing series decompose transit into its offloadable and
non-offloadable components, each carried by the same diurnal/weekly shape
with independent per-bin noise; the offloadable share therefore never
exceeds transit bin-for-bin, and the percentile savings track — but do
not exactly equal — the average offload share.

The CLI front end is ``repro study economics`` (see :mod:`repro.cli`);
``examples/economics_study.py`` is a worked example.
"""

from __future__ import annotations

import gc
import itertools
import time
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.economics import (
    CostModel,
    CostParameters,
    fit_exponential_decay,
    viability_condition,
)
from repro.core.offload import (
    ALL_GROUPS,
    OffloadEstimator,
    PeerGroups,
    remaining_traffic_series,
)
from repro.errors import ConfigurationError
from repro.experiments.aggregate import MeanCI, mean_ci
from repro.experiments.engine import StudyConfig, run_study
from repro.netflow.billing import offload_billing_report
from repro.rand import derive_seed
from repro.sim.offload_batch import OffloadWorldView, build_offload_views
from repro.sim.offload_world import (
    OffloadWorld,
    OffloadWorldConfig,
    build_offload_world,
)
from repro.types import TrafficDirection


@dataclass(frozen=True, slots=True)
class EconomicsVariant:
    """One named cell of the economics grid.

    Price defaults follow the repo's Section 5 baseline (the values the
    single-run :func:`repro.reporting.economics_report` uses): transit at
    p=5 per unit, direct peering g=1 fixed / u=0.5 per unit, remote
    peering h=0.25 fixed / v=1.5 per unit.  The decay rate ``b`` is never
    configured — it is fitted per trial from the measured offload curve.
    """

    name: str
    world: OffloadWorldConfig = OffloadWorldConfig()
    group: int = 4
    max_ixps: int = 20          # depth of the fitted remaining-series
    transit_price: float = 5.0  # p
    direct_fixed: float = 1.0   # g
    direct_unit: float = 0.5    # u
    remote_fixed: float = 0.25  # h
    remote_unit: float = 1.5    # v
    price_per_mbps: float = 1.0  # billing price for the NetFlow bill
    percentile: float = 95.0

    def __post_init__(self) -> None:
        if self.group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {self.group}")
        if self.max_ixps < 2:
            raise ConfigurationError(
                "max_ixps must be at least 2 (the decay fit needs 3 points)"
            )
        if not 0 < self.percentile <= 100:
            raise ConfigurationError("percentile must be in (0, 100]")
        if self.price_per_mbps < 0:
            raise ConfigurationError("price_per_mbps cannot be negative")
        # Validate the price structure early (u < v < p, h < g) by
        # building a throwaway parameter set at a nominal decay.
        CostParameters(
            p=self.transit_price, g=self.direct_fixed, u=self.direct_unit,
            h=self.remote_fixed, v=self.remote_unit, b=0.5,
        )

    def cost_parameters(self, b: float) -> CostParameters:
        """The Section 5 parameter set at a fitted decay rate."""
        return CostParameters(
            p=self.transit_price, g=self.direct_fixed, u=self.direct_unit,
            h=self.remote_fixed, v=self.remote_unit, b=b,
        )


#: :class:`EconomicsVariant` fields sweepable via ``price.<field>`` axes —
#: the Section 5 tariff plane plus the billing knobs.  The fit depth
#: (``max_ixps``) is deliberately not a price axis; pass it as a keyword.
_PRICE_FIELDS = frozenset({
    "transit_price", "direct_fixed", "direct_unit", "remote_fixed",
    "remote_unit", "price_per_mbps", "percentile",
})


def economics_grid_variants(
    world: OffloadWorldConfig | None = None,
    axes: Mapping[str, Sequence] | None = None,
    groups: Sequence[int] = (4,),
    **variant_kwargs,
) -> tuple[EconomicsVariant, ...]:
    """Cartesian product of ``world.<field>`` / ``price.<field>`` axes × groups.

    Mirrors :func:`repro.experiments.offload.offload_grid_variants`, with
    one extra scope: ``price.<field>`` sweeps the variant's own tariff
    knobs (``transit_price``, ``remote_fixed``, ...), which is how the
    ``price-plane`` scenario walks the Wang–Xu–Ma-style price plane over
    one shared world build per seed.  ``variant_kwargs`` (prices, depth,
    percentile) apply to every cell not overridden by an axis.
    """
    world = world or OffloadWorldConfig()
    axes = dict(axes or {})
    world_fields = {f.name for f in fields(OffloadWorldConfig)}
    for path in axes:
        scope, _, fname = path.partition(".")
        if scope == "world" and fname in world_fields:
            if fname == "seed":
                raise ConfigurationError(
                    f"grid axis {path!r} is not sweepable: trial seeds come "
                    "from EconomicsEnsembleConfig.seeds"
                )
        elif scope == "price" and fname in _PRICE_FIELDS:
            if fname in variant_kwargs:
                raise ConfigurationError(
                    f"grid axis {path!r} conflicts with the fixed "
                    f"{fname}={variant_kwargs[fname]!r} keyword"
                )
        else:
            raise ConfigurationError(
                f"grid axis {path!r} must be world.<field> naming an "
                "OffloadWorldConfig field or price.<field> naming a "
                "sweepable EconomicsVariant field"
            )
    if not groups:
        raise ConfigurationError("need at least one peer group")
    for group in groups:
        if group not in ALL_GROUPS:
            raise ConfigurationError(f"unknown peer group {group}")
    paths = list(axes)
    variants = []
    for combo in itertools.product(*(axes[p] for p in paths)):
        w = world
        cell_kwargs = dict(variant_kwargs)
        parts = []
        for path, value in zip(paths, combo):
            scope, _, fname = path.partition(".")
            if scope == "world":
                w = replace(w, **{fname: value})
            else:  # price
                cell_kwargs[fname] = value
            parts.append(f"{fname}={value}")
        for group in groups:
            name_parts = [*parts]
            if len(groups) > 1 or not parts:
                name_parts.append(f"group={group}")
            variants.append(
                EconomicsVariant(
                    name="|".join(name_parts) or "base",
                    world=w,
                    group=group,
                    **cell_kwargs,
                )
            )
    return tuple(variants)


@dataclass(frozen=True, slots=True)
class EconomicsTrialSpec:
    """One fully-resolved trial: picklable input of the study's measure."""

    trial_id: int
    variant: str
    seed: int
    world: OffloadWorldConfig
    group: int
    max_ixps: int
    transit_price: float
    direct_fixed: float
    direct_unit: float
    remote_fixed: float
    remote_unit: float
    price_per_mbps: float
    percentile: float


@dataclass(frozen=True, slots=True)
class EconomicsTrialResult:
    """Per-trial economics metrics (JSON-serializable for resume)."""

    trial_id: int
    variant: str
    seed: int
    candidate_count: int
    inbound_fraction: float      # max offload, all IXPs reached
    outbound_fraction: float
    decay_rate: float            # fitted b (eq. 3)
    decay_floor: float
    fit_sse: float
    before_bill: float           # monthly 95th-percentile transit bill
    after_bill: float            # ... with the offloadable share removed
    savings_fraction: float
    viable: bool                 # eq. 14 verdict at the measured b
    viability_ratio: float       # g(p-v)/(h(p-u))
    viability_threshold: float   # e^b
    optimal_direct_ixps: float   # ñ (eq. 11)
    optimal_remote_ixps: float   # m̃ (eq. 13)
    build_s: float
    study_s: float


def run_economics_trial(spec: EconomicsTrialSpec) -> EconomicsTrialResult:
    """Execute one standalone trial (world build included)."""
    t0 = time.perf_counter()
    world = build_offload_world(spec.world)
    build_s = time.perf_counter() - t0
    return measure_economics_trial(spec, world, build_s)


def measure_economics_trial(
    spec: EconomicsTrialSpec,
    world: OffloadWorld | OffloadWorldView,
    build_s: float,
) -> EconomicsTrialResult:
    """Sections 4 → 2.1 → 5 against an already-built world."""
    t1 = time.perf_counter()
    estimator = OffloadEstimator(world, PeerGroups.build(world))
    all_ixps = estimator.reachable_ixps()
    inbound, outbound = estimator.offload_fractions(all_ixps, spec.group)

    series = np.array(
        remaining_traffic_series(estimator, spec.group, max_ixps=spec.max_ixps)
    )
    fit = fit_exponential_decay(series)

    # Month of 5-minute bins: transit = offloadable + non-offloadable
    # components, same diurnal shape, independent per-bin noise — so the
    # offloadable share never exceeds transit and peaks coincide (Fig 5b).
    mask = estimator.mask_for(all_ixps, spec.group)
    collector = world.collector
    offload_seed = derive_seed(spec.seed, "economics", "offload-series")
    remaining_seed = derive_seed(spec.seed, "economics", "remaining-series")
    offload_series = np.zeros(collector.bins())
    remaining_series = np.zeros(collector.bins())
    for direction in (TrafficDirection.INBOUND, TrafficDirection.OUTBOUND):
        offload_series = offload_series + collector.aggregate_series(
            direction, mask=mask, seed=offload_seed
        )
        remaining_series = remaining_series + collector.aggregate_series(
            direction, mask=~mask, seed=remaining_seed
        )
    transit_series = offload_series + remaining_series
    billing = offload_billing_report(
        transit_series, offload_series,
        price_per_mbps=spec.price_per_mbps, percentile=spec.percentile,
    )

    params = CostParameters(
        p=spec.transit_price, g=spec.direct_fixed, u=spec.direct_unit,
        h=spec.remote_fixed, v=spec.remote_unit, b=fit.rate,
    )
    model = CostModel(params)
    verdict = viability_condition(params)
    t2 = time.perf_counter()
    return EconomicsTrialResult(
        trial_id=spec.trial_id,
        variant=spec.variant,
        seed=spec.seed,
        candidate_count=estimator.groups.candidate_count(),
        inbound_fraction=inbound,
        outbound_fraction=outbound,
        decay_rate=fit.rate,
        decay_floor=fit.floor,
        fit_sse=fit.sse,
        before_bill=billing.before_bill,
        after_bill=billing.after_bill,
        savings_fraction=billing.savings_fraction,
        viable=verdict.viable,
        viability_ratio=verdict.ratio,
        viability_threshold=verdict.threshold,
        optimal_direct_ixps=model.optimal_direct(),
        optimal_remote_ixps=verdict.optimal_remote_ixps,
        build_s=build_s,
        study_s=t2 - t1,
    )


@dataclass(frozen=True, slots=True)
class EconomicsStudy:
    """The economics ensemble as a :class:`repro.experiments.engine.Study`."""

    variants: tuple[EconomicsVariant, ...] = (EconomicsVariant(name="base"),)

    name = "economics"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ConfigurationError("a study needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")

    def variant_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variants)

    def resolve(
        self, variant: str, seed: int, trial_id: int
    ) -> EconomicsTrialSpec:
        v = next(v for v in self.variants if v.name == variant)
        return EconomicsTrialSpec(
            trial_id=trial_id,
            variant=variant,
            seed=seed,
            world=replace(v.world, seed=seed),
            group=v.group,
            max_ixps=v.max_ixps,
            transit_price=v.transit_price,
            direct_fixed=v.direct_fixed,
            direct_unit=v.direct_unit,
            remote_fixed=v.remote_fixed,
            remote_unit=v.remote_unit,
            price_per_mbps=v.price_per_mbps,
            percentile=v.percentile,
        )

    def world_key(self, spec: EconomicsTrialSpec) -> OffloadWorldConfig:
        # Price/group grids over the same world config share one build
        # per seed — the whole point of sweeping economics cheaply.
        return spec.world

    def build(self, spec: EconomicsTrialSpec) -> OffloadWorld:
        return build_offload_world(spec.world)

    def measure(
        self, spec: EconomicsTrialSpec, world: OffloadWorld, build_s: float
    ) -> EconomicsTrialResult:
        return measure_economics_trial(spec, world, build_s)

    def run_batch(
        self, specs: Sequence[EconomicsTrialSpec]
    ) -> list[EconomicsTrialResult]:
        """Measure a same-variant seed batch against batched world views.

        The economics pipeline reads only the view surface (estimator
        inputs plus the collector's aggregate-series arithmetic), and the
        billing-series seeds derive from ``spec.seed``, so results are
        bit-identical per seed to ``build`` + ``measure``.
        """
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            t0 = time.perf_counter()
            views = build_offload_views([spec.world for spec in specs])
            build_s = (time.perf_counter() - t0) / max(len(specs), 1)
            return [
                measure_economics_trial(spec, view, build_s)
                for spec, view in zip(specs, views)
            ]
        finally:
            if resume_gc:
                gc.enable()

    def metrics(self, result: EconomicsTrialResult) -> dict[str, float]:
        return {
            "savings_fraction": result.savings_fraction,
            "decay_rate": result.decay_rate,
            "viable": 1.0 if result.viable else 0.0,
        }

    def encode(self, result: EconomicsTrialResult) -> dict:
        return asdict(result)

    def decode(self, payload: dict) -> EconomicsTrialResult:
        return EconomicsTrialResult(**payload)


@dataclass(frozen=True, slots=True)
class EconomicsEnsembleConfig:
    """Seed list × economics variant grid, plus parallelism.

    ``trial_batch > 1`` realizes same-variant seeds in batches through
    the trial-axis engine (:mod:`repro.sim.offload_batch`) — results are
    bit-identical per seed; only timing fields change.
    """

    seeds: tuple[int, ...]
    variants: tuple[EconomicsVariant, ...] = (EconomicsVariant(name="base"),)
    workers: int = 0
    trial_batch: int = 1

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("an ensemble needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("ensemble seeds must be distinct")
        if not self.variants:
            raise ConfigurationError("an ensemble needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")
        if self.trial_batch < 1:
            raise ConfigurationError("trial_batch must be at least 1")

    def trials(self) -> list[EconomicsTrialSpec]:
        """The fully-resolved trial list, variant-major, in a stable order."""
        from repro.experiments.engine import expand_trials

        return expand_trials(
            EconomicsStudy(variants=self.variants), self.seeds
        )


@dataclass(frozen=True, slots=True)
class EconomicsVariantSummary:
    """Aggregated economics metrics for one variant."""

    variant: str
    trials: int
    group: int
    savings_fraction: MeanCI
    decay_rate: MeanCI
    before_bill: MeanCI
    after_bill: MeanCI
    inbound_fraction: MeanCI
    outbound_fraction: MeanCI
    optimal_direct_ixps: MeanCI
    optimal_remote_ixps: MeanCI
    viable_votes: int   # trials whose eq. 14 verdict came out viable

    @property
    def viability_vote(self) -> float:
        """Fraction of trials finding remote peering viable (eq. 14)."""
        return self.viable_votes / self.trials if self.trials else 0.0


@dataclass
class EconomicsEnsembleResult:
    """All trial results plus the config that produced them."""

    config: EconomicsEnsembleConfig
    trials: list[EconomicsTrialResult]
    wall_s: float = 0.0
    world_builds: int = 0
    world_reuses: int = 0
    resumed: int = 0
    _by_variant: dict[str, list[EconomicsTrialResult]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self._by_variant:
            grouped: dict[str, list[EconomicsTrialResult]] = {}
            for trial in self.trials:
                grouped.setdefault(trial.variant, []).append(trial)
            self._by_variant = grouped

    def by_variant(self) -> dict[str, list[EconomicsTrialResult]]:
        """Trials grouped by variant name, in config order."""
        return dict(self._by_variant)

    def summaries(self) -> list[EconomicsVariantSummary]:
        """Mean ± 95% CI aggregates plus the viability vote, per variant."""
        group_of = {v.name: v.group for v in self.config.variants}
        out = []
        for variant, trials in self._by_variant.items():
            out.append(_summarize(variant, group_of.get(variant, 4), trials))
        return out


def _summarize(
    variant: str, group: int, trials: list[EconomicsTrialResult]
) -> EconomicsVariantSummary:
    return EconomicsVariantSummary(
        variant=variant,
        trials=len(trials),
        group=group,
        savings_fraction=mean_ci([t.savings_fraction for t in trials]),
        decay_rate=mean_ci([t.decay_rate for t in trials]),
        before_bill=mean_ci([t.before_bill for t in trials]),
        after_bill=mean_ci([t.after_bill for t in trials]),
        inbound_fraction=mean_ci([t.inbound_fraction for t in trials]),
        outbound_fraction=mean_ci([t.outbound_fraction for t in trials]),
        optimal_direct_ixps=mean_ci([t.optimal_direct_ixps for t in trials]),
        optimal_remote_ixps=mean_ci([t.optimal_remote_ixps for t in trials]),
        viable_votes=sum(1 for t in trials if t.viable),
    )


def run_economics_ensemble(
    config: EconomicsEnsembleConfig, out_dir: str | None = None
) -> EconomicsEnsembleResult:
    """Run every trial of ``config`` through the study engine."""
    result = run_study(
        EconomicsStudy(variants=config.variants),
        StudyConfig(seeds=config.seeds, workers=config.workers,
                    out_dir=out_dir, trial_batch=config.trial_batch),
    )
    return EconomicsEnsembleResult(
        config=config,
        trials=result.trials,
        wall_s=result.wall_s,
        world_builds=result.world_builds,
        world_reuses=result.world_reuses,
        resumed=result.resumed,
    )
