"""The mega-scale offload study: Euro-IX expansion over 10⁵+ networks.

The paper's offload question (Section 4) asked where one NREN should
remote-peer; the mega study asks it at internet scale: given a
:class:`~repro.sim.megatopo.MegaWorld` (CAIDA-style tiered hierarchy,
columnar pool, full Euro-IX catalog), how much of the world's traffic
can a remote peer cover by joining k exchanges, and which k?

Per trial, a traffic vector is drawn for every network from the paper's
double-Pareto rank profile (``(seed, "megastudy", "traffic")`` stream,
aligned so high-propensity networks carry the most traffic), and a
greedy expansion picks IXPs by marginal covered-traffic gain over the
membership bitmasks.  Everything is arrays: the study never materializes
a per-network object, which is what lets a 100k-network trial run in
milliseconds once the world is built.

Worlds are heavyweight (tens of MB of columns at 100k, hundreds at 1M)
while trials are light — exactly the regime the shared-memory transport
exists for.  :class:`MegaStudy` implements the engine's
``export_world`` / ``attach_world`` hooks, so
``StudyConfig(transport="shm")`` dispatches each trial with a segment
descriptor instead of a pickled world (see
:mod:`repro.experiments.transport`).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, replace
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.rand import child_rng, double_pareto_rates
from repro.sim.megatopo import MegaWorld, MegaWorldConfig, build_mega_world


@dataclass(frozen=True, slots=True)
class MegaVariant:
    """One cell of the mega grid: world shape + expansion depth."""

    name: str = "base"
    world: MegaWorldConfig = MegaWorldConfig()
    max_ixps: int = 8
    #: Rank where the traffic profile bends toward faster decay
    #: (Figure 5a's observed bend, rescaled to the world).
    traffic_bend_rank: int = 20_000

    def __post_init__(self) -> None:
        if self.max_ixps < 1:
            raise ConfigurationError("max_ixps must be at least 1")
        if self.traffic_bend_rank < 1:
            raise ConfigurationError("traffic_bend_rank must be positive")


@dataclass(frozen=True, slots=True)
class MegaTrialSpec:
    """One fully-resolved mega trial (picklable)."""

    trial_id: int
    variant: str
    seed: int
    world: MegaWorldConfig
    max_ixps: int
    traffic_bend_rank: int


@dataclass(frozen=True, slots=True)
class MegaTrialResult:
    """Per-trial coverage metrics of one greedy Euro-IX expansion."""

    trial_id: int
    variant: str
    seed: int
    network_count: int
    member_total: int          # memberships across the catalog
    expansion: tuple[str, ...]  # greedy IXP order, best first
    covered_fraction: float    # traffic share covered at max_ixps
    covered_networks: int      # distinct member networks covered
    five_ixp_share: float      # share of the expansion's gain from 5 IXPs
    build_s: float
    study_s: float


def draw_traffic(world: MegaWorld, seed: int, bend_rank: int) -> np.ndarray:
    """Per-network traffic rates for one trial seed.

    The double-Pareto rank profile of the paper's Figure 5a, assigned in
    propensity order — the networks that join the most IXPs are also the
    ones exchanging the most traffic — with per-seed log-normal noise
    from the dedicated ``(seed, "megastudy", "traffic")`` stream.
    """
    n = len(world)
    rng = child_rng(seed, "megastudy", "traffic")
    rates = double_pareto_rates(
        count=n,
        rng=rng,
        top_rate=1.0,
        bend_rank=min(bend_rank, n),
        head_exponent=0.8,
        tail_exponent=1.6,
    )
    order = np.argsort(-world.pool.propensity, kind="stable")
    traffic = np.empty(n, dtype=float)
    traffic[order] = rates
    return traffic


def greedy_coverage(
    world: MegaWorld, traffic: np.ndarray, max_ixps: int
) -> tuple[list[int], list[float]]:
    """Greedy IXP picks by marginal covered-traffic gain.

    Coverage is membership-level (peering at an exchange reaches the
    members' own prefixes; the cone-propagated mask saturates at mega
    densities — see ``MegaWorld.membership_masks``).  Ties break toward
    the lower catalog index, so the expansion is deterministic.
    Returns ``(picked ixp indices, marginal gains)``.
    """
    covered = np.zeros(len(world), dtype=bool)
    picked: list[int] = []
    gains: list[float] = []
    members = [world.members_of(j) for j in range(world.ixp_count)]
    for _ in range(min(max_ixps, world.ixp_count)):
        best_j, best_gain = -1, -1.0
        for j in range(world.ixp_count):
            if j in picked:
                continue
            m = members[j]
            gain = float(traffic[m[~covered[m]]].sum())
            if gain > best_gain:
                best_j, best_gain = j, gain
        if best_j < 0 or best_gain <= 0.0:
            break
        picked.append(best_j)
        gains.append(best_gain)
        covered[members[best_j]] = True
    return picked, gains


def measure_mega_trial(
    spec: MegaTrialSpec, world: MegaWorld, build_s: float
) -> MegaTrialResult:
    """Run one trial against a built (or attached) mega world."""
    t0 = time.perf_counter()
    traffic = draw_traffic(world, spec.seed, spec.traffic_bend_rank)
    total = float(traffic.sum())
    picked, gains = greedy_coverage(world, traffic, spec.max_ixps)
    covered = np.zeros(len(world), dtype=bool)
    for j in picked:
        covered[world.members_of(j)] = True
    gain_total = sum(gains)
    five_share = (
        sum(gains[:5]) / gain_total if gain_total > 0 else 0.0
    )
    study_s = time.perf_counter() - t0
    return MegaTrialResult(
        trial_id=spec.trial_id,
        variant=spec.variant,
        seed=spec.seed,
        network_count=len(world),
        member_total=int(world.member_counts.sum()),
        expansion=tuple(world.catalog[j].acronym for j in picked),
        covered_fraction=gain_total / total if total > 0 else 0.0,
        covered_networks=int(covered.sum()),
        five_ixp_share=five_share,
        build_s=build_s,
        study_s=study_s,
    )


@dataclass(frozen=True, slots=True)
class MegaStudy:
    """The mega expansion as a :class:`repro.experiments.engine.Study`.

    Implements the zero-copy transport hooks: ``export_world`` hands the
    engine the world's array columns (plus the world config as metadata),
    ``attach_world`` rebuilds a view-backed world inside the worker.
    """

    variants: tuple[MegaVariant, ...] = (MegaVariant(),)

    name = "mega"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ConfigurationError("a study needs at least one variant")
        if len({v.name for v in self.variants}) != len(self.variants):
            raise ConfigurationError("variant names must be distinct")

    def variant_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variants)

    def resolve(self, variant: str, seed: int, trial_id: int) -> MegaTrialSpec:
        v = next(v for v in self.variants if v.name == variant)
        return MegaTrialSpec(
            trial_id=trial_id,
            variant=variant,
            seed=seed,
            world=replace(v.world, seed=seed),
            max_ixps=v.max_ixps,
            traffic_bend_rank=v.traffic_bend_rank,
        )

    def world_key(self, spec: MegaTrialSpec) -> MegaWorldConfig:
        # Variants sweeping expansion depth share one world build per seed.
        return spec.world

    def build(self, spec: MegaTrialSpec) -> MegaWorld:
        return build_mega_world(spec.world)

    def measure(
        self, spec: MegaTrialSpec, world: MegaWorld, build_s: float
    ) -> MegaTrialResult:
        return measure_mega_trial(spec, world, build_s)

    # --- zero-copy transport hooks -------------------------------------------

    def export_world(
        self, world: MegaWorld
    ) -> tuple[MegaWorldConfig, dict[str, np.ndarray]]:
        """(metadata, columns) for the shared-memory transport."""
        return world.config, world.export_columns()

    def attach_world(
        self, meta: MegaWorldConfig, columns: dict[str, np.ndarray]
    ) -> MegaWorld:
        """Rebuild a world over attached shared-memory views (zero-copy)."""
        return MegaWorld.from_columns(meta, columns)

    def metrics(self, result: MegaTrialResult) -> dict[str, float]:
        return {
            "covered_fraction": result.covered_fraction,
            "five_ixp_share": result.five_ixp_share,
            "covered_networks": float(result.covered_networks),
        }

    def encode(self, result: MegaTrialResult) -> dict[str, Any]:
        return asdict(result)

    def decode(self, payload: dict[str, Any]) -> MegaTrialResult:
        payload = dict(payload)
        payload["expansion"] = tuple(payload["expansion"])
        return MegaTrialResult(**payload)
