"""The generic study engine: one pluggable trial contract for every study.

A *study* is anything that follows the ``build → run → measure`` trial
contract of the :class:`Study` protocol: detection (Section 3), offload
(Section 4) and the end-to-end economics pipeline (Sections 3+4+5) are all
instances.  This module owns the **data model** of a study run — the
protocol itself, :class:`StudyConfig`, :class:`StudyResult`, the
content-addressed JSONL artifact format and its resumable reader/writer —
while the **execution machinery** (seed × grid expansion into world-key
groups, ``ProcessPoolExecutor`` fan-out, shared-memory transport,
per-trial deadlines, retry and quarantine) lives in
:mod:`repro.experiments.scheduler`, where the same code also powers the
``repro serve`` job queue.  :func:`run_study` remains the one-call
blocking front end: it delegates to
:func:`repro.experiments.scheduler.execute_study` with no hooks attached.

Artifacts are **content-addressed**: every run's trial rows land in
``<out_dir>/<study>_<fingerprint>_trials.jsonl``, where the fingerprint
hashes the study name plus every resolved trial spec.  Two different
configurations of the same study therefore coexist in one directory, and
a repeated identical configuration is answered from the artifact without
recomputation — the property the ``repro serve`` result store is built
on.  Pre-fingerprint artifacts (``<study>_trials.jsonl``) are still read
and appended when their header fingerprint matches the current
configuration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable, Protocol, Sequence, TextIO

from repro.errors import ConfigurationError
from repro.experiments.aggregate import MeanCI

#: Schema tag written to every artifact header line.  Success rows are
#: ``{"trial_id", "variant", "seed", "result"}``; quarantined trials add
#: a failure row instead: ``{"trial_id", "variant", "seed",
#: "status": "failed", "error", "attempts"}`` — same schema tag, same
#: fingerprint, so resumes skip failed trials rather than re-running them.
ARTIFACT_SCHEMA = "study_trials/v1"


class Study(Protocol):
    """The build → run → measure contract one trial family implements.

    Implementations are small frozen dataclasses (they are pickled to the
    worker processes together with each trial group).  ``resolve`` turns a
    (variant, seed) cell of the grid into a fully-specified picklable trial
    spec; ``world_key`` names the world that spec needs, and trials whose
    keys compare equal share one build; ``measure`` runs the study on the
    built world and returns the typed per-trial result.
    """

    @property
    def name(self) -> str:
        """Short identifier: artifact file names and report labels."""
        ...

    def variant_names(self) -> tuple[str, ...]:
        """The grid's variant names, in configuration order."""
        ...

    def resolve(self, variant: str, seed: int, trial_id: int) -> Any:
        """Fully-resolved picklable spec for one (variant, seed) trial."""
        ...

    def world_key(self, spec: Any) -> Hashable:
        """Cache key of the world ``spec`` needs (equal keys share builds)."""
        ...

    def build(self, spec: Any) -> Any:
        """Build the world for one trial group (cached across the group)."""
        ...

    def measure(self, spec: Any, world: Any, build_s: float) -> Any:
        """Run one trial against a built world; returns the trial result."""
        ...

    def metrics(self, result: Any) -> dict[str, float]:
        """Headline scalars for streaming aggregation (may be empty)."""
        ...

    def encode(self, result: Any) -> dict[str, Any]:
        """JSON-serializable payload of one trial result (for artifacts)."""
        ...

    def decode(self, payload: dict[str, Any]) -> Any:
        """Inverse of :meth:`encode` (must reproduce the result exactly)."""
        ...


@dataclass(frozen=True, slots=True)
class StudyConfig:
    """Seed list, parallelism and (optional) artifact directory.

    ``workers=1`` runs trials inline in this process (what tests use);
    ``workers=0`` uses one process per core, capped at the group count.
    With ``out_dir`` set the run is resumable: completed trials are
    appended to ``<out_dir>/<study>_<fingerprint>_trials.jsonl`` as they
    finish, and a rerun with an identical study configuration skips them.
    Different configurations hash to different fingerprints, so many
    studies — or many variants of one study — share a single directory
    without colliding: that directory *is* the content-addressed result
    store ``repro serve`` answers repeated submissions from.
    """

    seeds: tuple[int, ...]
    workers: int = 0
    out_dir: str | None = None
    #: Wall-clock budget per trial (None: unlimited).  On a main thread
    #: the deadline is a SIGALRM itimer; on any other thread (the
    #: ``repro serve`` scheduler) the trial body runs on a reaped helper
    #: thread instead, so the budget is enforced everywhere.  A trial
    #: that blows the budget is retried and then quarantined like any
    #: other failure.
    trial_timeout_s: float | None = None
    #: Extra measure attempts before a trial is declared poison.
    trial_retries: int = 0
    #: With quarantine on (default), a poison trial becomes a ``failed``
    #: artifact row and the study completes over the survivors; off, the
    #: first trial exception propagates and tears the run down.
    quarantine: bool = True
    #: Seed-batch width for studies exposing a ``run_batch`` hook: pending
    #: trials of one variant are realized in chunks of up to this many
    #: seeds by a single batched call (one array program over the whole
    #: chunk).  ``1`` (default) keeps the per-trial path; studies without
    #: the hook ignore the setting.  A chunk that fails for any reason
    #: falls back to per-trial execution, so timeout / retry / quarantine
    #: semantics are identical to an unbatched run.
    trial_batch: int = 1
    #: How built worlds reach the worker processes.  ``"pickle"``
    #: (default) ships each trial group's study+specs and rebuilds the
    #: world inside the worker.  ``"shm"`` builds each world-key group's
    #: world once in the parent and publishes its array columns through
    #: a refcounted shared-memory segment; workers attach zero-copy
    #: views.  Requires ``export_world``/``attach_world`` hooks on the
    #: study (studies without them silently keep the pickle path) and is
    #: mutually exclusive with ``trial_batch`` batching, whose per-seed
    #: lightweight worlds have nothing to share.
    transport: str = "pickle"

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("a study needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("study seeds must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ConfigurationError("trial_timeout_s must be positive")
        if self.trial_retries < 0:
            raise ConfigurationError("trial_retries cannot be negative")
        if self.trial_batch < 1:
            raise ConfigurationError("trial_batch must be at least 1")
        if self.transport not in ("pickle", "shm"):
            raise ConfigurationError(
                f"unknown transport {self.transport!r} "
                "(expected 'pickle' or 'shm')"
            )


@dataclass(frozen=True, slots=True)
class TrialFailure:
    """A quarantined trial: identity, the error, and attempts consumed.

    Stands in a result's slot so resumes and trial-order bookkeeping keep
    working; carries no metrics, so streaming aggregates cover survivors
    only (the degraded-coverage note says how many are missing).
    """

    trial_id: int
    variant: str
    seed: int
    error: str
    attempts: int = 1


@dataclass
class StudyResult:
    """All trial results (trial-id order) plus execution accounting."""

    study: str
    config: StudyConfig
    trials: list[Any]
    wall_s: float = 0.0
    world_builds: int = 0   # worlds actually built this run
    world_reuses: int = 0   # trials served from a shared build
    resumed: int = 0        # trials loaded from artifacts instead of run
    streaming: dict[str, dict[str, MeanCI]] = field(default_factory=dict)
    #: Quarantined trials (trial-id order); ``trials`` holds survivors only.
    failures: list[TrialFailure] = field(default_factory=list)
    pool_restarts: int = 0  # broken process pools survived this run
    #: Trials that fell back from a failed seed batch to the per-trial
    #: path.  Distinct from ``trial_retries`` bookkeeping: a fallback trial
    #: may still succeed on its first per-trial attempt, so it is not a
    #: retry and not (necessarily) a failure — just a slower route to the
    #: same bit-identical result.
    batch_fallbacks: int = 0
    #: Trials whose world could not cross the shared-memory transport
    #: (export failed / non-array columns) and were dispatched through
    #: the pickle path instead.  Like ``batch_fallbacks``, a fallback is
    #: a performance detour, not lost coverage.
    transport_fallbacks: int = 0

    def by_variant(self) -> dict[str, list[Any]]:
        """Trials grouped by variant name, in trial order."""
        grouped: dict[str, list[Any]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.variant, []).append(trial)
        return grouped

    def coverage_note(self) -> str | None:
        """Human-readable degraded-coverage warning, or None when clean.

        Batch fallbacks are reported separately from quarantined trials:
        a fallback re-executes the same trials per-trial (identical
        results, no lost coverage), while a quarantined trial is missing
        from the aggregates.
        """
        parts: list[str] = []
        if self.failures:
            ids = ", ".join(str(f.trial_id) for f in self.failures[:8])
            suffix = ", ..." if len(self.failures) > 8 else ""
            parts.append(
                f"degraded coverage: {len(self.failures)} of "
                f"{len(self.trials) + len(self.failures)} trials failed and "
                f"were quarantined (trial ids {ids}{suffix}); aggregates "
                "cover the surviving trials only"
            )
        if self.batch_fallbacks:
            parts.append(
                f"{self.batch_fallbacks} trial(s) fell back from batched "
                "to per-trial execution (results are unaffected; batching "
                "is a performance path only)"
            )
        if self.transport_fallbacks:
            parts.append(
                f"{self.transport_fallbacks} trial(s) fell back from "
                "shared-memory to pickle world transport (results are "
                "unaffected; the transport is a performance path only)"
            )
        return "; ".join(parts) if parts else None


def expand_trials(study: Study, seeds: Sequence[int]) -> list[Any]:
    """The fully-resolved trial list: variant-major, stable trial ids."""
    specs: list[Any] = []
    for variant in study.variant_names():
        for seed in seeds:
            specs.append(study.resolve(variant, seed, trial_id=len(specs)))
    return specs


def _fingerprint(study: Study, specs: Sequence[Any]) -> str:
    """Configuration fingerprint addressing the run's artifact.

    Dataclass reprs are deterministic and cover every resolved field, so
    any change to seeds, variants or study knobs hashes to a *different*
    artifact path instead of silently mixing two configurations in one
    file — and an identical configuration always hashes to the same one,
    which is what lets the result store answer repeats without running a
    single trial.
    """
    payload = json.dumps([study.name, [repr(s) for s in specs]])
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def study_fingerprint(study: Study, seeds: Sequence[int]) -> str:
    """Public fingerprint of ``study`` run over ``seeds``.

    The content address of the run's artifact: equal configurations map
    to equal fingerprints.  ``repro serve`` keys its result store and
    ``GET /results/{fingerprint}`` lookups on this value.
    """
    return _fingerprint(study, expand_trials(study, seeds))


def _legacy_artifact_path(study: Study, out_dir: str) -> Path:
    """Pre-fingerprint artifact name (one configuration per directory)."""
    return Path(out_dir) / f"{study.name}_trials.jsonl"


def _artifact_path(
    study: Study, out_dir: str, fingerprint: str | None = None
) -> Path:
    """The artifact path of one study run under ``out_dir``.

    With ``fingerprint`` given, the exact content-addressed path.
    Without it — the form tests and tools use to locate an artifact
    after a run — the single existing fingerprint-named artifact of
    this study in the directory, falling back to the legacy
    (un-fingerprinted) name when there is not exactly one candidate.
    """
    if fingerprint is not None:
        return Path(out_dir) / f"{study.name}_{fingerprint}_trials.jsonl"
    candidates = sorted(Path(out_dir).glob(f"{study.name}_*_trials.jsonl"))
    if len(candidates) == 1:
        return candidates[0]
    return _legacy_artifact_path(study, out_dir)


def _artifact_header(path: Path) -> dict[str, Any]:
    """Parse and validate an artifact's header line.

    Raises :class:`ConfigurationError` for files that are not study
    artifacts at all (unparseable first line, wrong schema tag) — a
    foreign file squatting on an artifact name should fail loudly, not
    be silently shadowed.
    """
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        raise ConfigurationError(f"{path} is not a study artifact file")
    if not isinstance(header, dict) or header.get("schema") != ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"{path} has schema "
            f"{header.get('schema') if isinstance(header, dict) else None!r}, "
            f"expected {ARTIFACT_SCHEMA!r}"
        )
    return header


def _resolve_artifact_path(
    study: Study, out_dir: str, fingerprint: str
) -> Path:
    """The path this run reads *and* appends: content-addressed, with a
    legacy fallback.

    Preference order: an existing fingerprint-named artifact; else a
    legacy ``<study>_trials.jsonl`` whose header fingerprint matches the
    current configuration (pre-content-addressing runs stay resumable in
    place); else the fingerprint-named path, created fresh.  A legacy
    file written by a *different* configuration is left untouched — the
    two configurations coexist, which is the point of content
    addressing.
    """
    path = _artifact_path(study, out_dir, fingerprint)
    if path.exists():
        return path
    legacy = _legacy_artifact_path(study, out_dir)
    if legacy.exists() and legacy.stat().st_size > 0:
        if _artifact_header(legacy).get("fingerprint") == fingerprint:
            return legacy
    return path


def _load_artifacts(
    study: Study, path: Path, fingerprint: str, trial_count: int
) -> dict[int, Any]:
    """Completed trials from a previous run (empty when none are usable).

    The file is streamed line-by-line — service-scale artifacts
    (hundreds of seeds × many variants) must not be slurped into one
    list — with the original healing semantics intact: a truncated
    final line (a killed run) is skipped; a header whose fingerprint
    disagrees with the current configuration raises instead of silently
    merging results from two different studies.
    """
    if not path.exists():
        return {}
    completed: dict[int, Any] = {}
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            return {}
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise ConfigurationError(f"{path} is not a study artifact file")
        if header.get("schema") != ARTIFACT_SCHEMA:
            raise ConfigurationError(
                f"{path} has schema {header.get('schema')!r}, "
                f"expected {ARTIFACT_SCHEMA!r}"
            )
        if header.get("fingerprint") != fingerprint:
            raise ConfigurationError(
                f"{path} was written by a different study configuration "
                "(seeds/variants changed?); use a fresh --out directory"
            )
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # partial write from a killed run
            trial_id = record.get("trial_id")
            if not (isinstance(trial_id, int) and 0 <= trial_id < trial_count):
                continue
            if record.get("status") == "failed":
                completed[trial_id] = TrialFailure(
                    trial_id=trial_id,
                    variant=record.get("variant", ""),
                    seed=record.get("seed", 0),
                    error=record.get("error", ""),
                    attempts=record.get("attempts", 1),
                )
            else:
                completed[trial_id] = study.decode(record["result"])
    return completed


class _ArtifactWriter:
    """Append-only JSONL sink; a no-op when the study runs without out_dir."""

    def __init__(
        self, study: Study, out_dir: str | None, fingerprint: str
    ) -> None:
        self._handle: TextIO | None = None
        self._study = study
        if out_dir is None:
            return
        path = _resolve_artifact_path(study, out_dir, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists() or path.stat().st_size == 0
        needs_newline = False
        if not fresh:
            # A killed run can leave a partial trailing line with no
            # newline; terminate it so the next append starts clean (the
            # loader already skips the unparseable fragment).
            with path.open("rb") as existing:
                existing.seek(-1, 2)
                needs_newline = existing.read(1) != b"\n"
        self._handle = path.open("a", encoding="utf-8")
        if needs_newline:
            self._handle.write("\n")
        if fresh:
            self._write({
                "schema": ARTIFACT_SCHEMA,
                "study": study.name,
                "fingerprint": fingerprint,
            })

    def _write(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def append(self, result: Any) -> None:
        if self._handle is None:
            return
        if isinstance(result, TrialFailure):
            self._write({
                "trial_id": result.trial_id,
                "variant": result.variant,
                "seed": result.seed,
                "status": "failed",
                "error": result.error,
                "attempts": result.attempts,
            })
            return
        self._write({
            "trial_id": result.trial_id,
            "variant": result.variant,
            "seed": result.seed,
            "result": self._study.encode(result),
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def run_study(study: Study, config: StudyConfig) -> StudyResult:
    """Run every not-yet-completed trial of ``study`` under ``config``.

    The blocking front end over
    :func:`repro.experiments.scheduler.execute_study` (no progress hook,
    no cancellation).  Results come back in trial order regardless of
    completion order, so studies are reproducible artifacts: same
    configuration, same report.
    """
    from repro.experiments.scheduler import execute_study

    return execute_study(study, config)
