"""The generic study engine: one pluggable trial scheduler for every study.

A *study* is anything that follows the ``build → run → measure`` trial
contract of the :class:`Study` protocol: detection (Section 3), offload
(Section 4) and the end-to-end economics pipeline (Sections 3+4+5) are all
instances.  The engine owns everything the per-study runners used to
duplicate:

* **seed × grid expansion** — a stable, variant-major trial order, so
  adding variants never perturbs existing trials;
* **scheduling** — trials fan out over a ``ProcessPoolExecutor``
  (``workers=1`` runs inline, which tests use);
* **per-variant world caching** — trials that share a world configuration
  are dispatched as one group and reuse a single world build (a detection
  grid over filter thresholds builds each seed's world once, not once per
  variant);
* **resumable sharded execution** — with ``out_dir`` set, every finished
  trial is appended to a JSONL artifact; a rerun with the same
  configuration loads the completed trials and only executes the rest;
* **zero-copy world transport** — with ``transport="shm"`` on a study
  exposing ``export_world``/``attach_world`` hooks, the parent builds
  each world once, packs its array columns into a shared-memory segment
  (:mod:`repro.experiments.transport`), and dispatches trials carrying
  only a tiny segment descriptor; workers attach views instead of
  unpickling the world.  Export failures fall back to the pickle path
  (counted in ``StudyResult.transport_fallbacks``), and every exit path
  — success, quarantine, pool restart — releases the segments;
* **streaming aggregation** — per-variant Welford accumulators over the
  study's headline metrics, updated as trials finish, so mean ± 95% CI
  summaries are available without a second pass over the results.

Studies stay thin: they resolve variant names into picklable trial specs,
build worlds, measure, and (for resume) encode/decode their typed
``TrialResult`` payloads to and from JSON dictionaries.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable, Iterator, Protocol, Sequence, TextIO

from repro.errors import ConfigurationError
from repro.experiments import transport
from repro.experiments.aggregate import MeanCI, StreamingMeanCI

#: Schema tag written to every artifact header line.  Success rows are
#: ``{"trial_id", "variant", "seed", "result"}``; quarantined trials add
#: a failure row instead: ``{"trial_id", "variant", "seed",
#: "status": "failed", "error", "attempts"}`` — same schema tag, same
#: fingerprint, so resumes skip failed trials rather than re-running them.
ARTIFACT_SCHEMA = "study_trials/v1"


class Study(Protocol):
    """The build → run → measure contract one trial family implements.

    Implementations are small frozen dataclasses (they are pickled to the
    worker processes together with each trial group).  ``resolve`` turns a
    (variant, seed) cell of the grid into a fully-specified picklable trial
    spec; ``world_key`` names the world that spec needs, and trials whose
    keys compare equal share one build; ``measure`` runs the study on the
    built world and returns the typed per-trial result.
    """

    @property
    def name(self) -> str:
        """Short identifier: artifact file names and report labels."""
        ...

    def variant_names(self) -> tuple[str, ...]:
        """The grid's variant names, in configuration order."""
        ...

    def resolve(self, variant: str, seed: int, trial_id: int) -> Any:
        """Fully-resolved picklable spec for one (variant, seed) trial."""
        ...

    def world_key(self, spec: Any) -> Hashable:
        """Cache key of the world ``spec`` needs (equal keys share builds)."""
        ...

    def build(self, spec: Any) -> Any:
        """Build the world for one trial group (cached across the group)."""
        ...

    def measure(self, spec: Any, world: Any, build_s: float) -> Any:
        """Run one trial against a built world; returns the trial result."""
        ...

    def metrics(self, result: Any) -> dict[str, float]:
        """Headline scalars for streaming aggregation (may be empty)."""
        ...

    def encode(self, result: Any) -> dict[str, Any]:
        """JSON-serializable payload of one trial result (for artifacts)."""
        ...

    def decode(self, payload: dict[str, Any]) -> Any:
        """Inverse of :meth:`encode` (must reproduce the result exactly)."""
        ...


@dataclass(frozen=True, slots=True)
class StudyConfig:
    """Seed list, parallelism and (optional) artifact directory.

    ``workers=1`` runs trials inline in this process (what tests use);
    ``workers=0`` uses one process per core, capped at the group count.
    With ``out_dir`` set the run is resumable: completed trials are
    appended to ``<out_dir>/<study>_trials.jsonl`` as they finish, and a
    rerun with an identical study configuration skips them.
    """

    seeds: tuple[int, ...]
    workers: int = 0
    out_dir: str | None = None
    #: Wall-clock budget per trial (None: unlimited).  Enforced with a
    #: SIGALRM deadline where the platform supports it; a trial that blows
    #: the budget is retried and then quarantined like any other failure.
    trial_timeout_s: float | None = None
    #: Extra measure attempts before a trial is declared poison.
    trial_retries: int = 0
    #: With quarantine on (default), a poison trial becomes a ``failed``
    #: artifact row and the study completes over the survivors; off, the
    #: first trial exception propagates and tears the run down.
    quarantine: bool = True
    #: Seed-batch width for studies exposing a ``run_batch`` hook: pending
    #: trials of one variant are realized in chunks of up to this many
    #: seeds by a single batched call (one array program over the whole
    #: chunk).  ``1`` (default) keeps the per-trial path; studies without
    #: the hook ignore the setting.  A chunk that fails for any reason
    #: falls back to per-trial execution, so timeout / retry / quarantine
    #: semantics are identical to an unbatched run.
    trial_batch: int = 1
    #: How built worlds reach the worker processes.  ``"pickle"``
    #: (default) ships each trial group's study+specs and rebuilds the
    #: world inside the worker.  ``"shm"`` builds each world-key group's
    #: world once in the parent and publishes its array columns through
    #: a refcounted shared-memory segment; workers attach zero-copy
    #: views.  Requires ``export_world``/``attach_world`` hooks on the
    #: study (studies without them silently keep the pickle path) and is
    #: mutually exclusive with ``trial_batch`` batching, whose per-seed
    #: lightweight worlds have nothing to share.
    transport: str = "pickle"

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("a study needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("study seeds must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ConfigurationError("trial_timeout_s must be positive")
        if self.trial_retries < 0:
            raise ConfigurationError("trial_retries cannot be negative")
        if self.trial_batch < 1:
            raise ConfigurationError("trial_batch must be at least 1")
        if self.transport not in ("pickle", "shm"):
            raise ConfigurationError(
                f"unknown transport {self.transport!r} "
                "(expected 'pickle' or 'shm')"
            )


@dataclass(frozen=True, slots=True)
class TrialFailure:
    """A quarantined trial: identity, the error, and attempts consumed.

    Stands in a result's slot so resumes and trial-order bookkeeping keep
    working; carries no metrics, so streaming aggregates cover survivors
    only (the degraded-coverage note says how many are missing).
    """

    trial_id: int
    variant: str
    seed: int
    error: str
    attempts: int = 1


@dataclass
class StudyResult:
    """All trial results (trial-id order) plus execution accounting."""

    study: str
    config: StudyConfig
    trials: list[Any]
    wall_s: float = 0.0
    world_builds: int = 0   # worlds actually built this run
    world_reuses: int = 0   # trials served from a shared build
    resumed: int = 0        # trials loaded from artifacts instead of run
    streaming: dict[str, dict[str, MeanCI]] = field(default_factory=dict)
    #: Quarantined trials (trial-id order); ``trials`` holds survivors only.
    failures: list[TrialFailure] = field(default_factory=list)
    pool_restarts: int = 0  # broken process pools survived this run
    #: Trials that fell back from a failed seed batch to the per-trial
    #: path.  Distinct from ``trial_retries`` bookkeeping: a fallback trial
    #: may still succeed on its first per-trial attempt, so it is not a
    #: retry and not (necessarily) a failure — just a slower route to the
    #: same bit-identical result.
    batch_fallbacks: int = 0
    #: Trials whose world could not cross the shared-memory transport
    #: (export failed / non-array columns) and were dispatched through
    #: the pickle path instead.  Like ``batch_fallbacks``, a fallback is
    #: a performance detour, not lost coverage.
    transport_fallbacks: int = 0

    def by_variant(self) -> dict[str, list[Any]]:
        """Trials grouped by variant name, in trial order."""
        grouped: dict[str, list[Any]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.variant, []).append(trial)
        return grouped

    def coverage_note(self) -> str | None:
        """Human-readable degraded-coverage warning, or None when clean.

        Batch fallbacks are reported separately from quarantined trials:
        a fallback re-executes the same trials per-trial (identical
        results, no lost coverage), while a quarantined trial is missing
        from the aggregates.
        """
        parts: list[str] = []
        if self.failures:
            ids = ", ".join(str(f.trial_id) for f in self.failures[:8])
            suffix = ", ..." if len(self.failures) > 8 else ""
            parts.append(
                f"degraded coverage: {len(self.failures)} of "
                f"{len(self.trials) + len(self.failures)} trials failed and "
                f"were quarantined (trial ids {ids}{suffix}); aggregates "
                "cover the surviving trials only"
            )
        if self.batch_fallbacks:
            parts.append(
                f"{self.batch_fallbacks} trial(s) fell back from batched "
                "to per-trial execution (results are unaffected; batching "
                "is a performance path only)"
            )
        if self.transport_fallbacks:
            parts.append(
                f"{self.transport_fallbacks} trial(s) fell back from "
                "shared-memory to pickle world transport (results are "
                "unaffected; the transport is a performance path only)"
            )
        return "; ".join(parts) if parts else None


def expand_trials(study: Study, seeds: Sequence[int]) -> list[Any]:
    """The fully-resolved trial list: variant-major, stable trial ids."""
    specs: list[Any] = []
    for variant in study.variant_names():
        for seed in seeds:
            specs.append(study.resolve(variant, seed, trial_id=len(specs)))
    return specs


def _fingerprint(study: Study, specs: Sequence[Any]) -> str:
    """Configuration fingerprint guarding artifact reuse.

    Dataclass reprs are deterministic and cover every resolved field, so
    any change to seeds, variants or study knobs invalidates old artifacts
    instead of silently mixing two configurations in one file.
    """
    payload = json.dumps([study.name, [repr(s) for s in specs]])
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _artifact_path(study: Study, out_dir: str) -> Path:
    return Path(out_dir) / f"{study.name}_trials.jsonl"


def _load_artifacts(
    study: Study, path: Path, fingerprint: str, trial_count: int
) -> dict[int, Any]:
    """Completed trials from a previous run (empty when none are usable).

    A truncated final line (a killed run) is skipped; a header whose
    fingerprint disagrees with the current configuration raises instead of
    silently merging results from two different studies.
    """
    if not path.exists():
        return {}
    completed: dict[int, Any] = {}
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise ConfigurationError(f"{path} is not a study artifact file")
    if header.get("schema") != ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"{path} has schema {header.get('schema')!r}, "
            f"expected {ARTIFACT_SCHEMA!r}"
        )
    if header.get("fingerprint") != fingerprint:
        raise ConfigurationError(
            f"{path} was written by a different study configuration "
            "(seeds/variants changed?); use a fresh --out directory"
        )
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # partial write from a killed run
        trial_id = record.get("trial_id")
        if not (isinstance(trial_id, int) and 0 <= trial_id < trial_count):
            continue
        if record.get("status") == "failed":
            completed[trial_id] = TrialFailure(
                trial_id=trial_id,
                variant=record.get("variant", ""),
                seed=record.get("seed", 0),
                error=record.get("error", ""),
                attempts=record.get("attempts", 1),
            )
        else:
            completed[trial_id] = study.decode(record["result"])
    return completed


class _ArtifactWriter:
    """Append-only JSONL sink; a no-op when the study runs without out_dir."""

    def __init__(
        self, study: Study, out_dir: str | None, fingerprint: str
    ) -> None:
        self._handle: TextIO | None = None
        self._study = study
        if out_dir is None:
            return
        path = _artifact_path(study, out_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists() or path.stat().st_size == 0
        needs_newline = False
        if not fresh:
            # A killed run can leave a partial trailing line with no
            # newline; terminate it so the next append starts clean (the
            # loader already skips the unparseable fragment).
            with path.open("rb") as existing:
                existing.seek(-1, 2)
                needs_newline = existing.read(1) != b"\n"
        self._handle = path.open("a", encoding="utf-8")
        if needs_newline:
            self._handle.write("\n")
        if fresh:
            self._write({
                "schema": ARTIFACT_SCHEMA,
                "study": study.name,
                "fingerprint": fingerprint,
            })

    def _write(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def append(self, result: Any) -> None:
        if self._handle is None:
            return
        if isinstance(result, TrialFailure):
            self._write({
                "trial_id": result.trial_id,
                "variant": result.variant,
                "seed": result.seed,
                "status": "failed",
                "error": result.error,
                "attempts": result.attempts,
            })
            return
        self._write({
            "trial_id": result.trial_id,
            "variant": result.variant,
            "seed": result.seed,
            "result": self._study.encode(result),
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _TrialTimeout(Exception):
    """A trial blew its wall-clock budget (internal control flow)."""


@contextmanager
def _trial_deadline(timeout_s: float | None) -> Iterator[None]:
    """Raise :class:`_TrialTimeout` if the body runs past ``timeout_s``.

    Uses a real-time SIGALRM itimer, which only works in a main thread on
    a platform that has it — exactly where trials run (inline, or the
    main thread of a worker process).  Elsewhere the deadline is a no-op
    rather than an error, so studies stay portable.
    """
    if (
        timeout_s is None
        or timeout_s <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise _TrialTimeout(f"trial exceeded its {timeout_s:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failure(spec: Any, error: BaseException, attempts: int) -> TrialFailure:
    return TrialFailure(
        trial_id=spec.trial_id,
        variant=spec.variant,
        seed=spec.seed,
        error=f"{type(error).__name__}: {error}",
        attempts=attempts,
    )


def _run_group(
    study: Study,
    specs: list[Any],
    timeout_s: float | None = None,
    retries: int = 0,
    quarantine: bool = True,
) -> list[Any]:
    """Build the group's shared world once, then measure every trial.

    One poison trial must not lose the group: each trial is retried up
    to ``retries`` times under the per-trial deadline and then, with
    quarantine on, recorded as a :class:`TrialFailure` while the rest of
    the group keeps running.  :class:`ConfigurationError` always
    propagates — a misconfigured study is a programmer error, not chaos
    to absorb.  A failed world build fails every trial of the group (there
    is nothing to measure against).
    """
    start = time.perf_counter()
    try:
        with _trial_deadline(timeout_s):
            world = study.build(specs[0])
    except ConfigurationError:
        raise
    except (_TrialTimeout, Exception) as error:
        if not quarantine:
            raise
        return [_failure(spec, error, attempts=1) for spec in specs]
    build_s = time.perf_counter() - start
    return _measure_specs(study, specs, world, build_s,
                          timeout_s, retries, quarantine)


def _measure_specs(
    study: Study,
    specs: list[Any],
    world: Any,
    build_s: float,
    timeout_s: float | None,
    retries: int,
    quarantine: bool,
) -> list[Any]:
    """The per-trial measure loop shared by every dispatch path."""
    results: list[Any] = []
    for spec in specs:
        last_error: BaseException | None = None
        for attempt in range(1 + retries):
            try:
                with _trial_deadline(timeout_s):
                    results.append(study.measure(spec, world, build_s))
                last_error = None
                break
            except ConfigurationError:
                raise
            except (_TrialTimeout, Exception) as error:
                if not quarantine:
                    raise
                last_error = error
        if last_error is not None:
            results.append(_failure(spec, last_error, attempts=1 + retries))
    return results


def _run_group_attached(
    study: Study,
    specs: list[Any],
    descriptor: "transport.SegmentDescriptor",
    meta: Any,
    build_s: float,
    timeout_s: float | None = None,
    retries: int = 0,
    quarantine: bool = True,
) -> list[Any]:
    """Worker half of the shared-memory transport.

    The parent already built the world and published its array columns;
    this attaches zero-copy views, rebuilds the world around them
    (``study.attach_world``), and runs the standard measure loop.  The
    attachment is closed on the way out — segment *ownership* stays with
    the parent, which releases its reference when the group's future
    completes.
    """
    attached = None
    try:
        with _trial_deadline(timeout_s):
            attached = transport.attach_columns(descriptor)
            world = study.attach_world(meta, attached.arrays)  # type: ignore[attr-defined]
    except ConfigurationError:
        raise
    except (_TrialTimeout, Exception) as error:
        if attached is not None:
            attached.close()
        if not quarantine:
            raise
        return [_failure(spec, error, attempts=1) for spec in specs]
    try:
        return _measure_specs(study, specs, world, build_s,
                              timeout_s, retries, quarantine)
    finally:
        world = None
        attached.close()


def _run_batch_group(
    study: Study,
    specs: list[Any],
    timeout_s: float | None = None,
    retries: int = 0,
    quarantine: bool = True,
) -> tuple[list[Any], int]:
    """Realize one same-variant seed chunk via the study's batched engine.

    Returns ``(results, fallback_count)``.  The batched call covers the
    whole chunk under a single deadline; any failure (or a result-count
    mismatch, which would mis-assign trials) abandons the batch and
    re-runs every trial through :func:`_run_group`, whose timeout / retry
    / quarantine semantics are then applied per trial exactly as in an
    unbatched study.  :class:`ConfigurationError` propagates immediately —
    a misconfigured study must not be retried into quarantine.
    """
    if len(specs) > 1:
        try:
            with _trial_deadline(timeout_s):
                results = list(study.run_batch(specs))  # type: ignore[attr-defined]
            if len(results) == len(specs):
                return results, 0
        except ConfigurationError:
            raise
        except (_TrialTimeout, Exception):
            pass
    fallbacks = len(specs) if len(specs) > 1 else 0
    results = []
    for spec in specs:
        results.extend(_run_group(study, [spec], timeout_s, retries, quarantine))
    return results, fallbacks


def run_study(study: Study, config: StudyConfig) -> StudyResult:
    """Run every not-yet-completed trial of ``study`` under ``config``.

    Results come back in trial order regardless of completion order, so
    studies are reproducible artifacts: same configuration, same report.
    """
    t0 = time.perf_counter()
    specs = expand_trials(study, config.seeds)
    fingerprint = _fingerprint(study, specs)

    completed: dict[int, Any] = {}
    if config.out_dir is not None:
        completed = _load_artifacts(
            study, _artifact_path(study, config.out_dir), fingerprint,
            trial_count=len(specs),
        )
    resumed = len(completed)

    # Group the remaining trials for execution.  Default: by world key,
    # preserving trial order within and across groups, so every trial in
    # a group reuses one build.  Batched mode (``trial_batch > 1`` on a
    # study with a ``run_batch`` hook): same-variant trials are chunked
    # into seed batches instead — each chunk is realized as one array
    # program with a leading trial axis, and every seed builds its own
    # (lightweight) world, so the world cache does not apply.
    use_batches = (
        config.trial_batch > 1
        and getattr(study, "run_batch", None) is not None
    )
    # Shared-memory transport: world-key groups are built once in the
    # parent and fan out per trial; studies without the export/attach
    # hooks keep the pickle path.  Mutually exclusive with seed batching
    # (batched seeds each realize their own lightweight world).
    use_shm = (
        config.transport == "shm"
        and not use_batches
        and getattr(study, "export_world", None) is not None
        and getattr(study, "attach_world", None) is not None
    )
    if use_batches:
        by_variant: dict[str, list[Any]] = {}
        for spec in specs:
            if spec.trial_id in completed:
                continue
            by_variant.setdefault(spec.variant, []).append(spec)
        group_list = [
            chunk[i:i + config.trial_batch]
            for chunk in by_variant.values()
            for i in range(0, len(chunk), config.trial_batch)
        ]
    else:
        groups: dict[Hashable, list[Any]] = {}
        for spec in specs:
            if spec.trial_id in completed:
                continue
            groups.setdefault(study.world_key(spec), []).append(spec)
        group_list = list(groups.values())

    streams: dict[str, dict[str, StreamingMeanCI]] = {}

    def absorb(result: Any) -> None:
        if isinstance(result, TrialFailure):
            return  # survivors only: failures carry no metrics
        per_variant = streams.setdefault(result.variant, {})
        for metric, value in study.metrics(result).items():
            per_variant.setdefault(metric, StreamingMeanCI()).add(value)

    def record(result: Any) -> None:
        completed[result.trial_id] = result
        writer.append(result)
        absorb(result)

    for result in completed.values():
        absorb(result)

    group_args = (config.trial_timeout_s, config.trial_retries,
                  config.quarantine)
    run_one = _run_batch_group if use_batches else _run_group
    pool_restarts = 0
    batch_fallbacks = 0
    transport_fallbacks = 0

    def consume(payload: Any) -> None:
        nonlocal batch_fallbacks
        if use_batches:
            results, fell_back = payload
            batch_fallbacks += fell_back
        else:
            results = payload
        for result in results:
            record(result)

    writer = _ArtifactWriter(study, config.out_dir, fingerprint)
    manager: transport.SegmentManager | None = None
    try:
        workers = config.workers or min(
            os.cpu_count() or 1, max(len(group_list), 1)
        )
        if use_shm:
            # Parent-side builds: one world per world-key group, columns
            # published through a refcounted segment, one dispatch item
            # per trial so the pool stays saturated.  ``None`` attach
            # info marks a pickle fallback for that whole group.
            manager = transport.SegmentManager()
            shm_items: list[tuple[list[Any], tuple[Any, ...] | None]] = []
            for group in group_list:
                start = time.perf_counter()
                try:
                    with _trial_deadline(config.trial_timeout_s):
                        world = study.build(group[0])
                except ConfigurationError:
                    raise
                except (_TrialTimeout, Exception) as error:
                    if not config.quarantine:
                        raise
                    for spec in group:
                        record(_failure(spec, error, attempts=1))
                    continue
                build_s = time.perf_counter() - start
                try:
                    meta, columns = study.export_world(world)  # type: ignore[attr-defined]
                    descriptor = manager.create(columns, refs=len(group))
                except ConfigurationError:
                    raise
                except Exception:
                    transport_fallbacks += len(group)
                    shm_items.append((group, None))
                    continue
                for spec in group:
                    shm_items.append(([spec], (descriptor, meta, build_s)))
            pending_items = shm_items
            if workers <= 1 or len(pending_items) <= 1:
                for item_specs, attach in pending_items:
                    if attach is None:
                        consume(_run_group(study, item_specs, *group_args))
                        continue
                    descriptor, meta, build_s = attach
                    consume(_run_group_attached(
                        study, item_specs, descriptor, meta, build_s,
                        *group_args,
                    ))
                    manager.release(descriptor.segment)
            else:
                for attempt in (0, 1):
                    try:
                        with ProcessPoolExecutor(
                            max_workers=min(workers, len(pending_items))
                        ) as pool:
                            future_segment: dict[Any, str | None] = {}
                            for item_specs, attach in pending_items:
                                if attach is None:
                                    future = pool.submit(
                                        _run_group, study, item_specs,
                                        *group_args)
                                    future_segment[future] = None
                                    continue
                                descriptor, meta, build_s = attach
                                future = pool.submit(
                                    _run_group_attached, study, item_specs,
                                    descriptor, meta, build_s, *group_args)
                                future_segment[future] = descriptor.segment
                            for future in as_completed(future_segment):
                                consume(future.result())
                                segment = future_segment[future]
                                if segment is not None:
                                    manager.release(segment)
                        break
                    except BrokenProcessPool:
                        pending_items = [
                            ([s for s in item_specs
                              if s.trial_id not in completed], attach)
                            for item_specs, attach in pending_items
                        ]
                        pending_items = [
                            (item_specs, attach)
                            for item_specs, attach in pending_items
                            if item_specs
                        ]
                        if attempt == 1 or not pending_items:
                            raise
                        pool_restarts += 1
        elif workers <= 1 or len(group_list) <= 1:
            for group in group_list:
                consume(run_one(study, group, *group_args))
        else:
            # A crashed worker (OOM kill, segfault, os._exit) breaks the
            # whole pool; one restart resubmits the not-yet-completed
            # groups before the failure is allowed to surface.
            pending = group_list
            for attempt in (0, 1):
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(workers, len(pending))
                    ) as pool:
                        # Distinct submit sites (not one via an alias) so
                        # the pool-submit-module-fn lint can statically
                        # see a module-level worker at each.
                        if use_batches:
                            futures = [
                                pool.submit(_run_batch_group, study,
                                            group, *group_args)
                                for group in pending
                            ]
                        else:
                            futures = [
                                pool.submit(_run_group, study,
                                            group, *group_args)
                                for group in pending
                            ]
                        # Drain in completion order so finished groups land
                        # in the resume artifact immediately — a slow
                        # head-of-line group must not hold every other
                        # group's trials hostage to a mid-run kill.  Trial
                        # order is restored at the end.
                        for future in as_completed(futures):
                            consume(future.result())
                    break
                except BrokenProcessPool:
                    pending = [
                        [s for s in group if s.trial_id not in completed]
                        for group in pending
                    ]
                    pending = [group for group in pending if group]
                    if attempt == 1 or not pending:
                        raise
                    pool_restarts += 1
    finally:
        writer.close()
        if manager is not None:
            # Belt and braces: every exit path (success, quarantine,
            # BrokenProcessPool, KeyboardInterrupt) unlinks whatever
            # segments the refcounts have not already released.
            manager.close_all()

    executed = sum(len(group) for group in group_list)
    # In batched mode every seed realizes its own (lightweight) world, so
    # there is no cross-trial build sharing to account for.
    world_builds = executed if use_batches else len(group_list)
    ordered = [completed[i] for i in range(len(specs))]
    return StudyResult(
        study=study.name,
        config=config,
        trials=[r for r in ordered if not isinstance(r, TrialFailure)],
        wall_s=time.perf_counter() - t0,
        world_builds=world_builds,
        world_reuses=executed - world_builds,
        resumed=resumed,
        streaming={
            variant: {m: s.snapshot() for m, s in metrics.items()}
            for variant, metrics in streams.items()
        },
        failures=[r for r in ordered if isinstance(r, TrialFailure)],
        pool_restarts=pool_restarts,
        batch_fallbacks=batch_fallbacks,
        transport_fallbacks=transport_fallbacks,
    )
