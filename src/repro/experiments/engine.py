"""The generic study engine: one pluggable trial scheduler for every study.

A *study* is anything that follows the ``build → run → measure`` trial
contract of the :class:`Study` protocol: detection (Section 3), offload
(Section 4) and the end-to-end economics pipeline (Sections 3+4+5) are all
instances.  The engine owns everything the per-study runners used to
duplicate:

* **seed × grid expansion** — a stable, variant-major trial order, so
  adding variants never perturbs existing trials;
* **scheduling** — trials fan out over a ``ProcessPoolExecutor``
  (``workers=1`` runs inline, which tests use);
* **per-variant world caching** — trials that share a world configuration
  are dispatched as one group and reuse a single world build (a detection
  grid over filter thresholds builds each seed's world once, not once per
  variant);
* **resumable sharded execution** — with ``out_dir`` set, every finished
  trial is appended to a JSONL artifact; a rerun with the same
  configuration loads the completed trials and only executes the rest;
* **streaming aggregation** — per-variant Welford accumulators over the
  study's headline metrics, updated as trials finish, so mean ± 95% CI
  summaries are available without a second pass over the results.

Studies stay thin: they resolve variant names into picklable trial specs,
build worlds, measure, and (for resume) encode/decode their typed
``TrialResult`` payloads to and from JSON dictionaries.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Hashable, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.experiments.aggregate import MeanCI, StreamingMeanCI

#: Schema tag written to every artifact header line.
ARTIFACT_SCHEMA = "study_trials/v1"


class Study(Protocol):
    """The build → run → measure contract one trial family implements.

    Implementations are small frozen dataclasses (they are pickled to the
    worker processes together with each trial group).  ``resolve`` turns a
    (variant, seed) cell of the grid into a fully-specified picklable trial
    spec; ``world_key`` names the world that spec needs, and trials whose
    keys compare equal share one build; ``measure`` runs the study on the
    built world and returns the typed per-trial result.
    """

    @property
    def name(self) -> str:
        """Short identifier: artifact file names and report labels."""
        ...

    def variant_names(self) -> tuple[str, ...]:
        """The grid's variant names, in configuration order."""
        ...

    def resolve(self, variant: str, seed: int, trial_id: int) -> Any:
        """Fully-resolved picklable spec for one (variant, seed) trial."""
        ...

    def world_key(self, spec: Any) -> Hashable:
        """Cache key of the world ``spec`` needs (equal keys share builds)."""
        ...

    def build(self, spec: Any) -> Any:
        """Build the world for one trial group (cached across the group)."""
        ...

    def measure(self, spec: Any, world: Any, build_s: float) -> Any:
        """Run one trial against a built world; returns the trial result."""
        ...

    def metrics(self, result: Any) -> dict[str, float]:
        """Headline scalars for streaming aggregation (may be empty)."""
        ...

    def encode(self, result: Any) -> dict:
        """JSON-serializable payload of one trial result (for artifacts)."""
        ...

    def decode(self, payload: dict) -> Any:
        """Inverse of :meth:`encode` (must reproduce the result exactly)."""
        ...


@dataclass(frozen=True, slots=True)
class StudyConfig:
    """Seed list, parallelism and (optional) artifact directory.

    ``workers=1`` runs trials inline in this process (what tests use);
    ``workers=0`` uses one process per core, capped at the group count.
    With ``out_dir`` set the run is resumable: completed trials are
    appended to ``<out_dir>/<study>_trials.jsonl`` as they finish, and a
    rerun with an identical study configuration skips them.
    """

    seeds: tuple[int, ...]
    workers: int = 0
    out_dir: str | None = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("a study needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("study seeds must be distinct")
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")


@dataclass
class StudyResult:
    """All trial results (trial-id order) plus execution accounting."""

    study: str
    config: StudyConfig
    trials: list[Any]
    wall_s: float = 0.0
    world_builds: int = 0   # worlds actually built this run
    world_reuses: int = 0   # trials served from a shared build
    resumed: int = 0        # trials loaded from artifacts instead of run
    streaming: dict[str, dict[str, MeanCI]] = field(default_factory=dict)

    def by_variant(self) -> dict[str, list[Any]]:
        """Trials grouped by variant name, in trial order."""
        grouped: dict[str, list[Any]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.variant, []).append(trial)
        return grouped


def expand_trials(study: Study, seeds: Sequence[int]) -> list[Any]:
    """The fully-resolved trial list: variant-major, stable trial ids."""
    specs: list[Any] = []
    for variant in study.variant_names():
        for seed in seeds:
            specs.append(study.resolve(variant, seed, trial_id=len(specs)))
    return specs


def _fingerprint(study: Study, specs: Sequence[Any]) -> str:
    """Configuration fingerprint guarding artifact reuse.

    Dataclass reprs are deterministic and cover every resolved field, so
    any change to seeds, variants or study knobs invalidates old artifacts
    instead of silently mixing two configurations in one file.
    """
    payload = json.dumps([study.name, [repr(s) for s in specs]])
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _artifact_path(study: Study, out_dir: str) -> Path:
    return Path(out_dir) / f"{study.name}_trials.jsonl"


def _load_artifacts(
    study: Study, path: Path, fingerprint: str, trial_count: int
) -> dict[int, Any]:
    """Completed trials from a previous run (empty when none are usable).

    A truncated final line (a killed run) is skipped; a header whose
    fingerprint disagrees with the current configuration raises instead of
    silently merging results from two different studies.
    """
    if not path.exists():
        return {}
    completed: dict[int, Any] = {}
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise ConfigurationError(f"{path} is not a study artifact file")
    if header.get("schema") != ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"{path} has schema {header.get('schema')!r}, "
            f"expected {ARTIFACT_SCHEMA!r}"
        )
    if header.get("fingerprint") != fingerprint:
        raise ConfigurationError(
            f"{path} was written by a different study configuration "
            "(seeds/variants changed?); use a fresh --out directory"
        )
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # partial write from a killed run
        trial_id = record.get("trial_id")
        if isinstance(trial_id, int) and 0 <= trial_id < trial_count:
            completed[trial_id] = study.decode(record["result"])
    return completed


class _ArtifactWriter:
    """Append-only JSONL sink; a no-op when the study runs without out_dir."""

    def __init__(
        self, study: Study, out_dir: str | None, fingerprint: str
    ) -> None:
        self._handle = None
        if out_dir is None:
            return
        path = _artifact_path(study, out_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists() or path.stat().st_size == 0
        if not fresh:
            # A killed run can leave a partial trailing line with no
            # newline; terminate it so the next append starts clean (the
            # loader already skips the unparseable fragment).
            with path.open("rb") as existing:
                existing.seek(-1, 2)
                needs_newline = existing.read(1) != b"\n"
        self._handle = path.open("a", encoding="utf-8")
        if not fresh and needs_newline:
            self._handle.write("\n")
        if fresh:
            self._write({
                "schema": ARTIFACT_SCHEMA,
                "study": study.name,
                "fingerprint": fingerprint,
            })
        self._study = study

    def _write(self, record: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def append(self, result: Any) -> None:
        if self._handle is None:
            return
        self._write({
            "trial_id": result.trial_id,
            "variant": result.variant,
            "seed": result.seed,
            "result": self._study.encode(result),
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _run_group(study: Study, specs: list[Any]) -> list[Any]:
    """Build the group's shared world once, then measure every trial."""
    start = time.perf_counter()
    world = study.build(specs[0])
    build_s = time.perf_counter() - start
    return [study.measure(spec, world, build_s) for spec in specs]


def run_study(study: Study, config: StudyConfig) -> StudyResult:
    """Run every not-yet-completed trial of ``study`` under ``config``.

    Results come back in trial order regardless of completion order, so
    studies are reproducible artifacts: same configuration, same report.
    """
    t0 = time.perf_counter()
    specs = expand_trials(study, config.seeds)
    fingerprint = _fingerprint(study, specs)

    completed: dict[int, Any] = {}
    if config.out_dir is not None:
        completed = _load_artifacts(
            study, _artifact_path(study, config.out_dir), fingerprint,
            trial_count=len(specs),
        )
    resumed = len(completed)

    # Group the remaining trials by world key, preserving trial order
    # within and across groups: every trial in a group reuses one build.
    groups: dict[Hashable, list[Any]] = {}
    for spec in specs:
        if spec.trial_id in completed:
            continue
        groups.setdefault(study.world_key(spec), []).append(spec)
    group_list = list(groups.values())

    streams: dict[str, dict[str, StreamingMeanCI]] = {}

    def absorb(result: Any) -> None:
        per_variant = streams.setdefault(result.variant, {})
        for metric, value in study.metrics(result).items():
            per_variant.setdefault(metric, StreamingMeanCI()).add(value)

    for result in completed.values():
        absorb(result)

    writer = _ArtifactWriter(study, config.out_dir, fingerprint)
    try:
        workers = config.workers or min(
            os.cpu_count() or 1, max(len(group_list), 1)
        )
        if workers <= 1 or len(group_list) <= 1:
            for group in group_list:
                for result in _run_group(study, group):
                    completed[result.trial_id] = result
                    writer.append(result)
                    absorb(result)
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(group_list))
            ) as pool:
                futures = [
                    pool.submit(_run_group, study, group)
                    for group in group_list
                ]
                # Drain in completion order so finished groups land in the
                # resume artifact immediately — a slow head-of-line group
                # must not hold every other group's trials hostage to a
                # mid-run kill.  Trial order is restored at the end.
                for future in as_completed(futures):
                    for result in future.result():
                        completed[result.trial_id] = result
                        writer.append(result)
                        absorb(result)
    finally:
        writer.close()

    executed = sum(len(group) for group in group_list)
    return StudyResult(
        study=study.name,
        config=config,
        trials=[completed[i] for i in range(len(specs))],
        wall_s=time.perf_counter() - t0,
        world_builds=len(group_list),
        world_reuses=executed - len(group_list),
        resumed=resumed,
        streaming={
            variant: {m: s.snapshot() for m, s in metrics.items()}
            for variant, metrics in streams.items()
        },
    )
