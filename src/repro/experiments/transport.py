"""Zero-copy world transport over POSIX shared memory.

At mega scale (10⁵–10⁶-network worlds) the dominant cost of a study is
no longer computing trials but *moving the world*: pickling a built
world into every ``ProcessPoolExecutor`` worker copies hundreds of
megabytes per dispatch.  This module moves the arrays exactly once:

1. the study parent builds the world, asks it for its array columns
   (``export_columns``) and packs them into one
   :class:`multiprocessing.shared_memory.SharedMemory` segment;
2. each worker receives only a tiny :class:`SegmentDescriptor` (segment
   name + per-column dtype/shape/offset) through the normal pickle
   channel, attaches, and rebuilds numpy views directly over the shared
   pages — no copy, no deserialization proportional to world size;
3. the parent refcounts the segment (one reference per dispatched trial
   group) and unlinks it when the last reference is released;
   :meth:`SegmentManager.close_all` is the belt-and-braces sweep the
   study engine runs on *every* exit path (success, quarantine, pool
   restart, KeyboardInterrupt), so a killed run never leaks segments.

Raw ``SharedMemory`` construction anywhere else in the tree is a lint
error (``pool-raw-shm`` in :mod:`repro.devtools.lint.poolpurity`):
segments that bypass the refcounted lifecycle are exactly the ones that
survive crashes as orphans in ``/dev/shm``.

Workers must *attach*, never own: :func:`attach_columns` unregisters the
mapping from :mod:`multiprocessing.resource_tracker`, because the
tracker would otherwise unlink the parent's segment when the first
worker exits (the well-known CPython 3.11 over-tracking behaviour).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ConfigurationError

#: Column starts are aligned so every dtype's natural alignment holds.
_ALIGN = 64

#: Segment names created by *this* process.  Attaching from the creating
#: process (the inline ``workers=1`` path, tests) must keep the resource
#: tracker registration — it is the only one — while worker-side attaches
#: drop their duplicate registration (see :func:`attach_columns`).
_OWNED: set[str] = set()


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Layout of one array inside a segment (enough to rebuild a view)."""

    name: str
    dtype: str   # numpy dtype string, e.g. "<i8"
    shape: tuple[int, ...]
    offset: int  # byte offset of the column inside the segment


@dataclass(frozen=True, slots=True)
class SegmentDescriptor:
    """Everything a worker needs to attach: tiny, picklable, arrays-free."""

    segment: str
    columns: tuple[ColumnSpec, ...]
    nbytes: int


class AttachedColumns:
    """A worker-side attachment: named views plus the mapping they pin."""

    def __init__(
        self,
        descriptor: SegmentDescriptor,
        shm: shared_memory.SharedMemory,
    ) -> None:
        self.descriptor = descriptor
        self._shm = shm
        self.arrays: dict[str, np.ndarray] = {}
        for spec in descriptor.columns:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            view.flags.writeable = False
            self.arrays[spec.name] = view

    def close(self) -> None:
        """Drop the views and unmap.

        Numpy views exported from the buffer keep the mmap pinned; if a
        measured result (or the world object) still holds one, closing
        would raise ``BufferError`` — treat that as "the OS unmaps at
        process exit" rather than an error, since workers never own the
        segment.
        """
        self.arrays.clear()
        try:
            self._shm.close()
        except BufferError:  # views still alive; freed at process exit
            pass


def _layout(
    columns: dict[str, np.ndarray],
) -> tuple[tuple[ColumnSpec, ...], int]:
    """Aligned packing order of ``columns`` and the total byte size."""
    specs: list[ColumnSpec] = []
    offset = 0
    for name, array in columns.items():
        if array.dtype.hasobject:
            raise ConfigurationError(
                f"column {name!r} holds Python objects; only plain "
                "numeric arrays can cross the shared-memory transport"
            )
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(
            ColumnSpec(
                name=name,
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
            )
        )
        offset += array.nbytes
    return tuple(specs), max(offset, 1)


class SegmentManager:
    """Parent-side owner of every world segment of one study run.

    ``create`` packs columns into a fresh segment with an initial
    reference count; ``add_refs``/``release`` track outstanding trial
    groups; the segment is unlinked when the count reaches zero.
    ``close_all`` force-releases everything — the study engine calls it
    in a ``finally`` so quarantined groups, pool restarts and hard kills
    of the run all converge on the same cleanup path.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._refs: dict[str, int] = {}

    def create(
        self, columns: dict[str, np.ndarray], refs: int = 1
    ) -> SegmentDescriptor:
        """Pack ``columns`` into a new segment holding ``refs`` references."""
        if refs < 1:
            raise ConfigurationError("a new segment needs >= 1 reference")
        specs, nbytes = _layout(columns)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        for spec in specs:
            array = np.ascontiguousarray(columns[spec.name])
            dest = np.ndarray(
                spec.shape,
                dtype=array.dtype,
                buffer=shm.buf,
                offset=spec.offset,
            )
            dest[...] = array
        self._segments[shm.name] = shm
        self._refs[shm.name] = refs
        _OWNED.add(shm.name)
        return SegmentDescriptor(
            segment=shm.name, columns=specs, nbytes=nbytes
        )

    def add_refs(self, segment: str, count: int) -> None:
        """Register ``count`` more outstanding references on ``segment``."""
        if segment not in self._refs:
            raise ConfigurationError(f"unknown segment {segment!r}")
        self._refs[segment] += count

    def release(self, segment: str) -> None:
        """Drop one reference; unlink the segment at zero.

        Releasing an already-destroyed segment is a no-op: the engine
        releases per completed future, and ``close_all`` may already
        have swept the table on an error path.
        """
        if segment not in self._refs:
            return
        self._refs[segment] -= 1
        if self._refs[segment] <= 0:
            self._destroy(segment)

    def live_segments(self) -> tuple[str, ...]:
        """Names of segments not yet unlinked (test/diagnostic hook)."""
        return tuple(sorted(self._segments))

    def close_all(self) -> None:
        """Unlink every remaining segment regardless of reference count."""
        for name in sorted(self._segments):
            self._destroy(name)

    def _destroy(self, segment: str) -> None:
        shm = self._segments.pop(segment, None)
        self._refs.pop(segment, None)
        _OWNED.discard(segment)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # parent-side views still alive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # already gone (external cleanup)
            pass


def attach_columns(descriptor: SegmentDescriptor) -> AttachedColumns:
    """Attach to a parent-owned segment and rebuild the column views.

    The resource tracker registration is dropped immediately: the
    *parent* owns the segment's lifetime, and leaving the registration
    in place makes the first exiting worker's tracker unlink the
    segment under every other worker still using it.
    """
    shm = shared_memory.SharedMemory(name=descriptor.segment)
    if shm.name not in _OWNED:
        try:
            resource_tracker.unregister(f"/{shm.name}", "shared_memory")
        except (KeyError, ValueError):  # pragma: no cover - tracker internals
            pass
    return AttachedColumns(descriptor, shm)


def segment_exists(name: str) -> bool:
    """Whether the named segment is still linked (test/diagnostic hook)."""
    return os.path.exists(f"/dev/shm/{name.lstrip('/')}")
