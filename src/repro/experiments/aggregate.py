"""Aggregation of ensemble trials into mean ± confidence-interval summaries.

Confidence intervals use the Student-t critical value for the trial count
(the ensembles this repo runs are 8-32 trials, squarely where the normal
approximation is too tight); beyond 30 degrees of freedom the normal 1.96
is used.  Only the 95% level is supported — it is the one every report
prints, and silently accepting arbitrary levels with the wrong critical
value would be worse than refusing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError

#: Two-sided 95% Student-t critical values, indexed by degrees of freedom.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)
_Z_95 = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95% critical value for ``df`` degrees of freedom."""
    if df <= 0:
        raise AnalysisError("need at least 2 samples for a confidence interval")
    if df <= len(_T_95):
        return _T_95[df - 1]
    return _Z_95


@dataclass(frozen=True, slots=True)
class MeanCI:
    """A sample mean with its 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        """Lower CI bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper CI bound."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci(values: list[float] | tuple[float, ...]) -> MeanCI:
    """Mean and 95% CI half-width of a sample (t-based; see module doc).

    A single observation yields a zero-width interval — the honest
    rendering of "we only ran one trial" — rather than an error, so
    reports degrade gracefully when most trials of a variant failed a
    guard (e.g. precision undefined because nothing was called remote).
    """
    values = [float(v) for v in values]
    if not values:
        raise AnalysisError("cannot aggregate an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeanCI(mean=mean, half_width=0.0, n=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical_95(n - 1) * math.sqrt(variance / n)
    return MeanCI(mean=mean, half_width=half, n=n)


def optional_mean_ci(values: list[float | None]) -> MeanCI | None:
    """:func:`mean_ci` over the defined values; None when all are None.

    Precision/recall-style metrics are undefined in some trials (nothing
    called remote, no true remotes); summaries aggregate the defined
    subset and render ``n/a`` only when *every* trial lacked the metric.
    """
    defined = [v for v in values if v is not None]
    return mean_ci(defined) if defined else None


class StreamingMeanCI:
    """Welford accumulator producing :class:`MeanCI` snapshots.

    The study engine aggregates headline metrics as trials finish; this
    keeps the running mean and variance in O(1) memory (no per-trial
    lists) while matching :func:`mean_ci` up to floating-point noise.
    """

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)

    def snapshot(self) -> MeanCI:
        """The current mean ± 95% CI (zero width for a single sample)."""
        if self.n == 0:
            raise AnalysisError("cannot aggregate an empty sample")
        if self.n == 1:
            return MeanCI(mean=self._mean, half_width=0.0, n=1)
        variance = self._m2 / (self.n - 1)
        half = t_critical_95(self.n - 1) * math.sqrt(variance / self.n)
        return MeanCI(mean=self._mean, half_width=half, n=self.n)


@dataclass(frozen=True, slots=True)
class VariantSummary:
    """Aggregated metrics for one configuration variant."""

    variant: str
    trials: int
    precision: MeanCI | None  # None when undefined in every trial
    recall: MeanCI | None
    analyzed: MeanCI
    candidates: MeanCI
    discards: dict[str, MeanCI]
    remote_fraction_by_ixp: dict[str, MeanCI]
    shortfall: MeanCI
